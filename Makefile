# Convenience targets (everything works offline).

.PHONY: install test bench perf report examples all clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Hot-path guardrails: the log read/write microbenchmark plus the
# Table 7 recovery benchmark that exercises replay end to end.
perf:
	pytest benchmarks/bench_log_hotpath.py benchmarks/bench_table7_recovery.py \
		--benchmark-only -s

report:
	python -m repro.bench EXPERIMENTS.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
	done

all: test bench report

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
