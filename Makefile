# Convenience targets (everything works offline).

.PHONY: install test bench perf report examples all clean lint infer \
	check sweep sweep-smoke concurrency sharded explore-smoke \
	explore-nightly plan plan-write

install:
	python setup.py develop

test:
	pytest tests/

# Protocol-conformance lint (PHX rules) plus ruff/mypy when available.
# ruff and mypy are optional (pip install -e .[lint]); the AST lint is
# stdlib-only and always runs.
lint:
	PYTHONPATH=src python -m repro.analysis lint src/repro/apps src/repro/core
	PYTHONPATH=src python -m repro.analysis sites
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi

# Whole-program type-inference gate: every component declaration in the
# deployed apps must match the inferred cheapest safe type (PHX010-012),
# modulo explicit pragmas.  Runs in well under ten seconds.
infer:
	PYTHONPATH=src python -m repro.analysis infer --check src/repro/apps

# Shard-placement & logging-strategy plan gate (docs/internals.md
# section 15): rebuilds the plan from the deploy wiring and fails on
# PHX014-016 findings or a byte-stale plans/apps.logplan.json.
# `plan-write` regenerates the committed artifact after wiring changes.
plan:
	PYTHONPATH=src python -m repro.analysis plan --check

plan-write:
	PYTHONPATH=src python -m repro.analysis plan --write

check: lint infer plan concurrency sharded explore-smoke
	PYTHONPATH=src python -m pytest -x -q

# Same-seed determinism gate (docs/internals.md section 11): the
# concurrent bookstore workload runs twice under the deterministic
# scheduler; stable logs, traces, clock and replies must be
# byte-identical across the runs.
concurrency:
	PYTHONPATH=src python -m repro.concurrency

# Sharded-logging gate (docs/internals.md section 16): the committed
# LogPlan executed — the sharded concurrent bookstore run twice must be
# byte-identical per stream, fan out to real per-shard streams, and
# return the same replies/state as the flag-off single-log run.
sharded:
	PYTHONPATH=src python -m repro.concurrency sharded

# Schedule-space model checker (docs/internals.md section 13).
# `explore-smoke` is the per-push gate: full DPOR enumeration of the
# ledger workload at N=2 (must complete with zero TRC violations,
# strictly fewer schedules than naive enumeration, and a byte-identical
# SCHEDULE_ID replay) — a few seconds.  `explore-nightly` adds a
# budgeted N=3 exploration and the exploration x crash-point composite.
explore-smoke:
	PYTHONPATH=src python -m repro.concurrency.cli smoke

explore-nightly:
	PYTHONPATH=src python -m repro.concurrency.cli explore --sessions 3 \
		--budget 8000 --keep-going
	PYTHONPATH=src python -m repro.concurrency.cli crash-sweep \
		--budget 800 --specs 3
	PYTHONPATH=src python -m repro.concurrency.cli explore \
		--workload ledger-pipelined --sessions 3 --budget 8000 \
		--keep-going
	PYTHONPATH=src python -m repro.concurrency.cli crash-sweep \
		--workload ledger-pipelined --budget 800 --specs 3

# Deterministic crash-point sweep (docs/internals.md section 9): every
# durability boundary of every workload, crash -> recover -> compare
# against the fault-free golden run.  `sweep` is the full nightly pass;
# `sweep-smoke` is the sampled per-push subset (~100 points, seconds).
sweep:
	PYTHONPATH=src python -m repro.faults sweep

sweep-smoke:
	PYTHONPATH=src python -m repro.faults sweep --torn-stride 8 --stride 4

bench:
	pytest benchmarks/ --benchmark-only

# Hot-path guardrails: the log read/write microbenchmark, the Table 7
# recovery benchmark that exercises replay end to end, and the smoke
# sizes of the on-demand recovery latency benchmark (run the latter
# with REPRO_BENCH_FULL=1 to regenerate BENCH_recovery.json).
perf:
	pytest benchmarks/bench_log_hotpath.py benchmarks/bench_table7_recovery.py \
		benchmarks/bench_recovery_latency.py --benchmark-only -s

report:
	python -m repro.bench EXPERIMENTS.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
	done

all: test bench report

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
