"""Paper Table 4: log optimizations for persistent components.

Regenerates all eight rows (four native .NET baselines, External ->
Persistent and Persistent -> Persistent under the baseline and optimized
logging algorithms), local and remote, and asserts the paper's claims:

* native calls are sub-millisecond; persistence costs two orders more;
* the optimization does not change the external-client case;
* optimized Persistent -> Persistent is at least ~2x faster than the
  baseline (4 forced writes down to 2).
"""

import pytest

from repro.bench import table4

from conftest import run_experiment


def bench_table4(benchmark, measured):
    table = run_experiment(benchmark, table4, calls=300)

    native_local = measured(table, "External -> MarshalByRefObject")[0]
    assert native_local == pytest.approx(0.593, abs=0.05)

    cb = measured(table, "ContextBound -> ContextBound")[0]
    cb_int = measured(
        table, "ContextBound -> ContextBound (interception)"
    )[0]
    assert 0.05 < cb_int - cb < 0.2  # interceptor install overhead

    ext_base = measured(table, "External -> Persistent (baseline)")
    ext_opt = measured(table, "External -> Persistent (optimized)")
    for base, opt in zip(ext_base, ext_opt):
        assert opt == pytest.approx(base, rel=0.05)  # same algorithm
        assert base == pytest.approx(17.0, abs=1.5)  # two unbuffered writes

    p2p_base = measured(table, "Persistent -> Persistent (baseline)")
    p2p_opt = measured(table, "Persistent -> Persistent (optimized)")
    for base, opt in zip(p2p_base, p2p_opt):
        assert base / opt > 1.8  # "about a two fold speedup"
    assert p2p_base[0] == pytest.approx(34.7, rel=0.1)  # 4 missed rotations
