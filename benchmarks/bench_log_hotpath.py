"""Log hot-path microbenchmark (not a paper table).

The paper's simulated results (Tables 4–8) count disk I/Os and message
rounds; this benchmark guards the *Python-level* cost of the log
implementation that produces them.  It appends 10k–100k records, then
point-reads and tail-scans, asserting that the read path is indexed:
``bytes_read`` must grow with the number of records actually read, not
with the size of the log — i.e. a point read fetches one frame, a tail
scan fetches one suffix, regardless of history length.

Run via ``make perf`` (with the Table 7 recovery benchmark) or::

    pytest benchmarks/bench_log_hotpath.py --benchmark-only -s
"""

from repro.common.messages import MessageKind, MethodCallMessage
from repro.log import LogManager, MessageRecord
from repro.sim import Cluster

from conftest import run_experiment

SIZES = (10_000, 100_000)
POINT_READS = 1_000
TAIL_RECORDS = 1_000


def _record(n: int) -> MessageRecord:
    return MessageRecord(
        context_id=1,
        kind=MessageKind.INCOMING_CALL,
        message=MethodCallMessage(
            target_uri="phoenix://alpha/p/1", method="m", args=(n,)
        ),
    )


def _build_log(n_records: int) -> tuple[LogManager, list[int]]:
    machine = Cluster().machine("alpha")
    log = LogManager("p1", machine.disk, machine.stable_store)
    lsns = [log.append(_record(i)) for i in range(n_records)]
    log.force()
    return log, lsns


def _hotpath_experiment() -> dict[int, dict[str, float]]:
    results: dict[int, dict[str, float]] = {}
    for n in SIZES:
        log, lsns = _build_log(n)
        frame_len = lsns[1] - lsns[0]

        before = log.stats.bytes_read
        step = max(1, n // POINT_READS)
        targets = lsns[::step][:POINT_READS]
        for lsn in targets:
            log.read_record(lsn)
        point_bytes = log.stats.bytes_read - before

        before = log.stats.bytes_read
        tail_from = lsns[-TAIL_RECORDS]
        tail_count = sum(1 for __ in log.scan(tail_from))
        tail_bytes = log.stats.bytes_read - before
        tail_suffix = log.stable_lsn - tail_from

        results[n] = {
            "tail_suffix": tail_suffix,
            "frame_len": frame_len,
            "point_reads": len(targets),
            "point_bytes": point_bytes,
            "point_bytes_per_read": point_bytes / len(targets),
            "tail_count": tail_count,
            "tail_bytes": tail_bytes,
            "log_bytes": log.stable_lsn,
            "index_hits": log.stats.index_hits,
        }
    return results


def bench_log_hotpath(benchmark):
    results = benchmark.pedantic(_hotpath_experiment, iterations=1, rounds=1)

    print()
    for n, r in sorted(results.items()):
        print(
            f"{n:>7} records ({r['log_bytes']:>8.0f} log bytes): "
            f"{r['point_bytes_per_read']:.0f} bytes/point-read, "
            f"tail scan {r['tail_bytes']:.0f} bytes"
        )

    for n, r in results.items():
        # a point read fetches one frame (frame sizes vary by a few
        # bytes with the integer payload width), independent of log size
        assert r["point_bytes_per_read"] <= r["frame_len"] + 8
        # ... which is a vanishing fraction of the log (acceptance
        # criterion: <= 1% of the seed's whole-log read per lookup)
        assert r["point_bytes_per_read"] <= 0.01 * r["log_bytes"]
        # a tail scan fetches exactly the tail suffix, nothing before it
        assert r["tail_count"] == TAIL_RECORDS
        assert r["tail_bytes"] == r["tail_suffix"]
        # every point read and the scan start resolved via the index
        assert r["index_hits"] >= r["point_reads"]

    # bytes_read is O(records read): the same point-read workload costs
    # (almost) the same bytes on a 10x larger log
    small, large = results[SIZES[0]], results[SIZES[-1]]
    assert large["point_bytes"] <= 1.1 * small["point_bytes"]
    assert large["tail_bytes"] <= 1.1 * small["tail_bytes"]
