"""Shared benchmark plumbing.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (Section 5) through pytest-benchmark.  The experiment runs
inside the ``benchmark`` fixture (so pytest-benchmark reports the real
wall time of driving the simulation), the resulting paper-vs-measured
table is printed (run with ``-s`` to see it), and the paper's shape
claims are asserted.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

# Benchmarks produce the largest logs in the repo; run the protocol-
# conformance oracle over them too (see repro.analysis.pytest_oracle).
from repro.analysis.pytest_oracle import (  # noqa: F401
    protocol_conformance_oracle,
)


def run_experiment(benchmark, experiment, **kwargs):
    """Run an experiment function under pytest-benchmark and print the
    paper-style table it produced."""
    table = benchmark.pedantic(
        lambda: experiment(**kwargs), iterations=1, rounds=1
    )
    print()
    print(table.format())
    return table


@pytest.fixture
def measured():
    """Extract a row's measured values as a list of floats."""

    def extract(table, row_label):
        for label, cells in table.rows:
            if label == row_label:
                return [cell.measured for cell in cells]
        raise KeyError(row_label)

    return extract
