"""Paper Figure 9: unbuffered disk write performance.

The staircase: 1 KB unbuffered writes in a loop cost ~8.5 ms each (a
full missed rotation), and inserting a delay after each write raises the
per-iteration time in discrete steps of one rotation (8.33 ms at
7200 RPM) as whole rotations are missed.
"""

import pytest

from repro.bench import figure9
from repro.sim import DiskGeometry

from conftest import run_experiment

ROTATION = DiskGeometry().rotation_ms


def bench_figure9(benchmark):
    table = run_experiment(
        benchmark, figure9,
        delays_ms=tuple(range(0, 37, 2)), writes_per_point=100,
    )
    values = {
        int(label.split("=")[1][:-2]): cells[0].measured
        for label, cells in table.rows
    }

    # base of the staircase: a little more than one rotation
    assert values[0] == pytest.approx(8.5, abs=0.2)

    # tread flatness and one-rotation risers
    for delay, value in values.items():
        expected_step = int(delay // ROTATION) + 1
        assert value == pytest.approx(
            expected_step * ROTATION + 0.17, abs=0.45
        ), f"delay={delay}"

    # monotone non-decreasing overall
    ordered = [values[d] for d in sorted(values)]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))

    # exactly four risers within 0..36 ms
    risers = sum(
        1 for a, b in zip(ordered, ordered[1:]) if b - a > ROTATION / 2
    )
    assert risers == 4
