"""Plan conformance: observed forces vs per-strategy budgets.

The static planner (``repro-analyze plan``) prices every component's
logging strategy; TRC109 replays recorded traces against the resulting
budgets.  This benchmark drives the bookstore and orderflow workloads
and checks the accounting both ways:

* the observed forces of every process stay within the committed
  (message-strategy) plan's span budgets, and
* re-budgeting the same spans under whole-app state/command
  assignments never loosens a budget — the planner's predicted saving
  is real headroom, not a different bound.

Runs 2 sessions per workload by default; ``REPRO_BENCH_FULL=1`` scales
to 8 (the EXPERIMENTS.md configuration).
"""

import pytest

from repro.bench import plan_forces_comparison

from conftest import run_experiment


def bench_plan_forces(benchmark):
    table = run_experiment(benchmark, plan_forces_comparison)

    assert table.rows, "no planned spans were exercised"
    for label, cells in table.rows:
        observed, message, state, command = (
            cell.measured for cell in cells
        )
        # TRC109: the live (message-logging) run respects its budget
        assert observed <= message + 1e-9, label
        # server-durable strategies only tighten the same spans
        assert state <= message + 1e-9, label
        assert command <= message + 1e-9, label
    # somewhere the planner must predict a strict saving, or the whole
    # strategy analysis is vacuous on these apps
    assert any(
        cells[3].measured < cells[1].measured - 1e-9
        for __, cells in table.rows
    )
