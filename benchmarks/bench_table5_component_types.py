"""Paper Table 5: new component types and read-only methods.

All seven rows.  The paper's claims asserted here:

* every row is force-free and therefore 10x+ faster than the persistent
  rows of Table 4;
* Persistent -> Subordinate is a direct call (~3.4e-5 ms);
* type attachments cost ~0.5 ms (Persistent vs External clients);
* read-only replies add a 0.15~0.2 ms unforced log write over
  functional servers;
* read-only *methods* behave like read-only components.
"""

import pytest

from repro.bench import table5

from conftest import run_experiment


def bench_table5(benchmark, measured):
    table = run_experiment(benchmark, table5, calls=300)

    for label, cells in table.rows:
        assert cells[0].measured < 2.0, label  # all force-free rows

    subordinate = measured(table, "Persistent -> Subordinate")[0]
    assert subordinate == pytest.approx(3.44e-5, rel=0.05)

    ext_f = measured(table, "External -> Functional")[0]
    per_f = measured(table, "Persistent -> Functional")[0]
    assert per_f - ext_f == pytest.approx(0.5, abs=0.15)  # attachment

    per_ro = measured(table, "Persistent -> Read-only")[0]
    assert 0.1 < per_ro - per_f < 0.3  # unforced reply log write

    ro_methods = measured(
        table, "Persistent -> Persistent (read-only methods)"
    )[0]
    assert ro_methods == pytest.approx(per_ro, rel=0.1)

    ro_client = measured(table, "Read-only -> Persistent")[0]
    assert ro_client < per_ro  # no reply logging at a read-only caller

    # remote adds ~0.2 ms across the board
    for label, cells in table.rows:
        if label == "Persistent -> Subordinate":
            continue
        local, remote = cells[0].measured, cells[1].measured
        assert 0.1 < remote - local < 0.4, label
