"""Paper Sections 3.5 / 5.5.2: the multi-call optimization (extension).

The paper describes but does not implement this optimization; this
reproduction does.  A persistent fan-out component (the PriceGrabber
shape) calls k persistent servers per incoming request:

* without the optimization it forces its log on every outgoing call
  (k forces) plus once at its own reply;
* with it, only the first outgoing call and the reply force — constant
  2 forces "regardless of the number of Bookstores it queries".
"""

import pytest

from repro.bench import multicall_ablation

from conftest import run_experiment


def bench_multicall(benchmark):
    table = run_experiment(
        benchmark, multicall_ablation,
        server_counts=(1, 2, 4, 8, 16), calls=20,
    )

    without = [cells[0].measured for __, cells in table.rows]
    with_opt = [cells[1].measured for __, cells in table.rows]

    # without: k + 1 forces, growing linearly with fan-out
    assert without == [2.0, 3.0, 5.0, 9.0, 17.0]
    # with: constant, independent of fan-out
    assert with_opt == [2.0] * 5
