"""Paper Table 7: recovery performance.

Kills a server process after a controlled call history and measures the
simulated recovery time, in three cases: an empty log, replay from the
creation record, and replay from a saved context state record.  Claims:

* empty-log recovery is ~492 ms of runtime initialization;
* replay adds ~0.15 ms per call, linearly;
* restoring a state record costs ~60 ms more up front — so a checkpoint
  pays for itself once it saves about 400 calls of replay (the paper's
  checkpoint-frequency rule).
"""

import pytest

from repro.bench import table7

from conftest import run_experiment

CALL_COUNTS = (0, 1000, 2000, 3000, 4000, 5000)


def bench_table7(benchmark, measured):
    table = run_experiment(benchmark, table7, call_counts=CALL_COUNTS)

    empty = measured(table, "Empty log")[0]
    creation = measured(table, "From creation")
    state = measured(table, "From state")

    assert empty == pytest.approx(492, abs=15)
    assert creation[0] == pytest.approx(575, abs=15)
    assert state[0] - creation[0] == pytest.approx(60, abs=8)

    # linear replay at ~0.15 ms/call for both cases
    for series in (creation, state):
        slopes = [
            (series[i + 1] - series[i]) / 1000
            for i in range(len(series) - 1)
        ]
        for slope in slopes:
            assert slope == pytest.approx(0.15, abs=0.02)

    # the crossover: with >= ~400 calls of replay saved, the state
    # record wins
    assert state[0] < creation[1]  # 0 replayed beats 1000 replayed
    breakeven_calls = (state[0] - creation[0]) / 0.15
    assert breakeven_calls == pytest.approx(400, abs=60)
