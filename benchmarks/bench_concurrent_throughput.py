"""Group commit and pipelined commit under concurrent sessions
(Section 5.2.2 on two shared logs, plus the TRC107 relaxation).

N deterministic client sessions hammer a two-tier server: each session
owns a persistent front desk (Algorithm 3 toward the external client)
that calls its back-tier ledger (Algorithm 2 at the
persistent→persistent hop).  Without group commit every call performs
the same number of stable writes at any N.  With group commit, forces
that arrive within one disk-rotation window share a single write, so
writes per call fall as sessions are added.  With ``pipelined_commit``
on top, the Algorithm-2 committing sends are *causally* gated — a send
whose own happens-before prefix is already stable skips the force even
while other sessions' unforced appends sit above it — so writes per
call fall further and throughput rises.

``make perf`` runs the smoke session counts.  ``REPRO_BENCH_FULL=1``
runs the full N=1..64 series and rewrites the committed
``BENCH_concurrent.json`` (simulated clocks make the numbers
deterministic, so the file is byte-stable across machines).
"""

import json
import os
from pathlib import Path

from repro.concurrency.bench import _run
from repro.concurrency.bench import bench_concurrent_throughput as experiment

from conftest import run_experiment

SMOKE_COUNTS = (1, 2, 4, 8)
FULL_COUNTS = (1, 2, 4, 8, 16, 32, 64)
CALLS_PER_SESSION = 6

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_concurrent.json"


def _column(table, index):
    return {
        int(label.split("=")[1]): cells[index].measured
        for label, cells in table.rows
    }


def bench_concurrent_throughput(benchmark):
    full = bool(os.environ.get("REPRO_BENCH_FULL"))
    counts = FULL_COUNTS if full else SMOKE_COUNTS
    table = run_experiment(
        benchmark, experiment,
        session_counts=counts, calls_per_session=CALLS_PER_SESSION,
    )
    off = _column(table, 0)
    on = _column(table, 1)
    pipe = _column(table, 2)
    shard = _column(table, 3)
    batches = _column(table, 4)
    gated = _column(table, 6)
    off_cps = _column(table, 7)
    on_cps = _column(table, 8)
    pipe_cps = _column(table, 9)
    shard_cps = _column(table, 10)

    # Without group commit each call performs its three committing
    # writes (front message 1, back reply-send, front message 2) at
    # every N; interleaving can only add the occasional extra write
    # when an Algorithm-2 force catches another session's unforced
    # bytes, so the series is pinned to a tight band above 3.
    assert off[1] == 3.0
    assert all(3.0 <= off[n] <= 3.35 for n in counts), off

    # With group commit, writes per call strictly decrease over the
    # smoke range and stay well below the no-group baseline everywhere.
    ordered = [on[n] for n in SMOKE_COUNTS]
    assert all(b < a for a, b in zip(ordered, ordered[1:])), ordered
    assert all(on[n] < off[n] for n in counts if n > 1)

    # A single session has nobody to share a window with: same number
    # of writes as with the flag off (it only waits out the window).
    assert on[1] == off[1]
    assert batches[1] > 0

    # Pipelined commit never forces more than plain group commit, and
    # once enough sessions interleave the causal gate actually fires:
    # strictly fewer writes per call and strictly higher throughput.
    assert all(pipe[n] <= on[n] for n in counts), (pipe, on)
    assert all(pipe_cps[n] >= on_cps[n] for n in counts)
    big = max(counts)
    assert gated[big] > 0
    assert pipe[big] < on[big], (pipe[big], on[big])
    assert pipe_cps[big] > on_cps[big]

    # The pipelined schedule stays conformant (TRC101–TRC108) at the
    # largest N — the throughput win is not bought with a lost causal
    # prefix.
    check = _run(
        big, group_commit=True, calls_per_session=CALLS_PER_SESSION,
        pipelined=True,
    )
    assert check.violations == (), check.violations

    # Sharded logging splits the sessions across two streams per
    # process, so each group-commit window sees only its own shard's
    # forces: writes per call track plain group commit at roughly half
    # the session count — never better than the shared log, identical
    # at N=1, and still strictly improving as sessions are added.  The
    # throughput cost is the price of the per-shard recovery
    # parallelism that ``bench_recovery_latency.py`` measures.
    assert shard[1] == on[1]
    assert all(shard[n] >= on[n] for n in counts), (shard, on)
    assert shard[big] < shard[2], shard
    check_sharded = _run(
        big, group_commit=True, calls_per_session=CALLS_PER_SESSION,
        sharded=True,
    )
    assert check_sharded.violations == (), check_sharded.violations

    if full:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "session_counts": list(counts),
                    "calls_per_session": CALLS_PER_SESSION,
                    "unit": {
                        "forces_per_call": "stable writes per call",
                        "calls_per_second": "calls per simulated second",
                    },
                    "no_group_commit": {
                        "forces_per_call": [off[n] for n in counts],
                        "calls_per_second": [off_cps[n] for n in counts],
                    },
                    "group_commit": {
                        "forces_per_call": [on[n] for n in counts],
                        "calls_per_second": [on_cps[n] for n in counts],
                    },
                    "pipelined_commit": {
                        "forces_per_call": [pipe[n] for n in counts],
                        "calls_per_second": [pipe_cps[n] for n in counts],
                        "gated_sends": [gated[n] for n in counts],
                    },
                    "sharded_logging": {
                        "forces_per_call": [shard[n] for n in counts],
                        "calls_per_second": [shard_cps[n] for n in counts],
                    },
                },
                indent=2,
            )
            + "\n"
        )


if __name__ == "__main__":
    os.environ["REPRO_BENCH_FULL"] = "1"

    class _Inline:
        def pedantic(self, fn, iterations=1, rounds=1):
            return fn()

    bench_concurrent_throughput(_Inline())
    print(f"wrote {BENCH_JSON}")
