"""Group commit under concurrent sessions (Section 5.2.2 on a shared log).

N deterministic client sessions hammer one server process.  Without
group commit every Algorithm-3 call performs exactly two stable writes,
flat in N.  With group commit, forces that arrive within one
disk-rotation window share a single write, so writes per call strictly
decreases as sessions are added.
"""

from repro.concurrency.bench import bench_concurrent_throughput as experiment

from conftest import run_experiment

SESSION_COUNTS = (1, 2, 4, 8)
CALLS_PER_SESSION = 6


def bench_concurrent_throughput(benchmark):
    table = run_experiment(
        benchmark, experiment,
        session_counts=SESSION_COUNTS, calls_per_session=CALLS_PER_SESSION,
    )
    off = {
        int(label.split("=")[1]): cells[0].measured
        for label, cells in table.rows
    }
    on = {
        int(label.split("=")[1]): cells[1].measured
        for label, cells in table.rows
    }
    batches = {
        int(label.split("=")[1]): cells[2].measured
        for label, cells in table.rows
    }

    # Without group commit the write count is exactly flat: two stable
    # writes (forced message 1 + forced message 2) per call at every N.
    assert all(off[n] == off[SESSION_COUNTS[0]] for n in SESSION_COUNTS)
    assert off[SESSION_COUNTS[0]] == 2.0

    # With group commit, writes per call strictly decreases with N.
    ordered = [on[n] for n in SESSION_COUNTS]
    assert all(b < a for a, b in zip(ordered, ordered[1:])), ordered

    # A single session has nobody to share a window with: same number
    # of writes as with the flag off (it only waits out the window).
    assert on[1] == off[1]
    assert batches[1] > 0
