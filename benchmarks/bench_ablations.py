"""Design-choice ablations (DESIGN.md Section 8).

Each ablation isolates one mechanism the paper motivates with a cost
argument, and asserts that the measured saving matches the argument.
"""

import pytest

from repro.bench.ablations import (
    attachment_omission_ablation,
    force_combining_ablation,
    log_gc_ablation,
    short_record_ablation,
    static_type_seeding_ablation,
)

from conftest import run_experiment


def bench_attachment_omission(benchmark, measured):
    table = run_experiment(benchmark, attachment_omission_ablation, calls=300)
    on = measured(table, "omission on")[0]
    off = measured(table, "omission off")[0]
    # the omitted reply attachment is the 0.5 ms type_attachment_cost
    assert off - on == pytest.approx(0.5, abs=0.1)


def bench_short_records(benchmark, measured):
    table = run_experiment(benchmark, short_record_ablation, calls=80)
    short = measured(table, "short records (Algorithm 3)")[0]
    long_ = measured(table, "long records (Algorithm 1)")[0]
    # the fat reply payload dominates the long-record bytes
    assert long_ > 10 * short


def bench_force_combining(benchmark):
    table = run_experiment(
        benchmark, force_combining_ablation, depths=(1, 2, 4, 8), calls=30
    )
    for label, cells in table.rows:
        baseline, optimized = cells[0].measured, cells[1].measured
        assert baseline == cells[0].paper, label  # exact analytic counts
        assert optimized == cells[1].paper, label
    # at depth 8 the saving approaches the asymptotic 2x
    deep = dict(table.rows)["depth 8"]
    assert deep[0].measured / deep[1].measured == pytest.approx(2.0, abs=0.1)


def bench_log_gc(benchmark, measured):
    table = run_experiment(benchmark, log_gc_ablation, calls=300)
    off_size = measured(table, "gc off")[0]
    on_size = measured(table, "gc on")[0]
    on_reclaimed = measured(table, "gc on")[1]
    assert on_size < off_size / 10  # the log stays bounded
    assert on_reclaimed > 0


def bench_static_type_seeding(benchmark, measured):
    table = run_experiment(benchmark, static_type_seeding_ablation)
    off = measured(table, "seeding off")
    on = measured(table, "seeding on")
    assert on[0] < off[0]  # fewer cold-start force requests
    assert on[1] == 0 and off[1] > 0  # no unknown-peer calls when seeded
    assert on[2] < off[2]  # omitted attachments shrink the log
