"""Paper Table 8: the online bookstore application.

Runs the Section 5.5 operation mix (search "recovery", buy a book from
each store into the basket, show + total with tax, clear) at the three
optimization levels and reports per-iteration elapsed time and server
log forces.  Claims:

* elapsed time and force counts drop monotonically from baseline to
  optimized-persistent to specialized;
* overall response time is cut at least in half;
* elapsed time is explained by forces x roughly one disk rotation.
"""

import pytest

from repro.bench import table8

from conftest import run_experiment


def bench_table8(benchmark):
    table = run_experiment(benchmark, table8, iterations=10)

    elapsed = [cells[0].measured for __, cells in table.rows]
    forces = [cells[1].measured for __, cells in table.rows]

    assert elapsed[0] > elapsed[1] > elapsed[2]
    assert forces[0] > forces[1] > forces[2]

    # "Overall, we cut response time approximately in half"
    assert elapsed[2] <= elapsed[0] / 2

    # elapsed ~ forces x rotational latency (paper Section 5.5.1)
    for time_ms, force_count in zip(elapsed, forces):
        assert 6.0 < time_ms / force_count < 11.0

    # baseline anchors near the paper's scale
    assert elapsed[0] == pytest.approx(589, rel=0.15)
    assert forces[0] == pytest.approx(64, rel=0.15)
