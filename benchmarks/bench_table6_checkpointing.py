"""Paper Table 6: runtime checkpointing overhead.

Remote Persistent -> Persistent with and without saving the server's
context state on every call, with the disk write cache disabled and
enabled.  The claims:

* saving context state costs ~1 ms of computation per call (visible
  directly in the cache-enabled column);
* enabling the write cache removes the disk media cost (the dominant
  term of the cache-disabled column).
"""

import pytest

from repro.bench import table6

from conftest import run_experiment

PLAIN = "Persistent -> Persistent"
SAVING = "Persistent -> Persistent (save state on call)"


def bench_table6(benchmark, measured):
    table = run_experiment(benchmark, table6, calls=300)

    plain_off, plain_on = measured(table, PLAIN)
    saving_off, saving_on = measured(table, SAVING)

    # ~1 ms computational overhead for the state save (paper: "saving
    # context state incurs an additional ~1ms overhead")
    assert saving_on - plain_on == pytest.approx(1.34, abs=0.4)

    # the cache removes media costs
    assert plain_on < plain_off / 3
    assert saving_on < saving_off / 2

    # absolute anchors near the paper's cells
    assert plain_off == pytest.approx(10.8, abs=2.0)
    assert plain_on == pytest.approx(2.62, abs=0.6)
