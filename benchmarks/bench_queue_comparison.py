"""Paper Section 1.1: stateful components vs the queued stateless model.

The paper's motivation, quantified: the same counter-update workload
served by (a) an optimized Phoenix/App persistent component, (b) the
baseline Phoenix/App system, and (c) a stateless worker behind
recoverable queues with a durable state store and one distributed
commit per interaction.  Claims asserted:

* force counts per operation: 2 (optimized) vs 4 (baseline) vs 6
  (queued);
* the optimized stateful model beats the queued model by at least 2x
  in elapsed time per operation;
* even the unoptimized baseline beats or matches the queued model.
"""

import pytest

from repro.bench import queue_comparison

from conftest import run_experiment

OPTIMIZED = "Phoenix/App persistent (optimized)"
BASELINE = "Phoenix/App persistent (baseline)"
QUEUED = "Queued stateless (2PC per interaction)"


def bench_queue_comparison(benchmark, measured):
    table = run_experiment(benchmark, queue_comparison, calls=200)

    opt_ms, opt_forces = measured(table, OPTIMIZED)
    base_ms, base_forces = measured(table, BASELINE)
    queued_ms, queued_forces = measured(table, QUEUED)

    # per-op force counts (the batch wrapper's own two external-call
    # forces amortize to ~0.01/op at 200 calls)
    assert opt_forces == pytest.approx(2.0, abs=0.05)
    assert base_forces == pytest.approx(4.0, abs=0.05)
    assert queued_forces == pytest.approx(6.0, abs=0.05)
    assert opt_ms * 2 <= queued_ms
    assert base_ms <= queued_ms * 1.1
    # elapsed tracks forces on the same spindle
    assert opt_ms < base_ms < queued_ms * 1.1
