"""Time-to-first-reply vs log size: eager vs on-demand recovery.

The paper's recovery (Section 4.4, Table 7) replays the whole log before
admitting a call, so time-to-first-reply (TTFR) grows linearly with log
size.  ``config.on_demand_recovery`` admits calls after analysis and
replays per component on first touch, so TTFR depends only on the
*touched* component's chain (here a hot component with a constant
``HOT_CALLS``-call history), not on the total log.

One server process hosts the hot component plus ``BULK_COMPONENTS``
bulk components that absorb the rest of the call history, with
checkpointing off so eager recovery replays everything.  After a crash:

* **TTFR** — simulated ms from the crash to the first reply of a call
  to the hot component (eager: full-log replay + the call; on-demand:
  analysis + the hot chain's replay + the call);
* **drain** — simulated ms until the process is fully recovered
  (``ensure_recovered`` barrier; both modes replay the same records, so
  totals converge).

Claims asserted: on-demand TTFR is flat (within 10%) across log sizes
while eager TTFR grows at ~``replay_per_call`` (0.15 ms/call); full
drain stays within 25% between the modes (no hidden extra replay).

``make perf`` runs the smoke sizes.  ``REPRO_BENCH_FULL=1`` runs the
full 1k/10k/50k series and rewrites the committed ``BENCH_recovery.json``
(simulated clocks make the numbers deterministic, so the file is
byte-stable across machines).
"""

import json
import os
from pathlib import Path

import pytest

from repro.bench.harness import PingServer
from repro.bench.reporting import Cell, ExperimentTable
from repro.core import PhoenixRuntime, RuntimeConfig

from conftest import run_experiment

SMOKE_SIZES = (1000, 5000)
FULL_SIZES = (1000, 10000, 50000)
HOT_CALLS = 100
BULK_COMPONENTS = 8

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"


# Shard routing is by component *class*, so the sharded leg needs a
# distinct class per bulk shard; each behaves exactly like PingServer.
class _BulkA(PingServer):
    pass


class _BulkB(PingServer):
    pass


class _BulkC(PingServer):
    pass


class _BulkD(PingServer):
    pass


BULK_CLASSES = (_BulkA, _BulkB, _BulkC, _BulkD)

#: Synthetic plan for the sharded leg: the hot component on its own
#: stream, the bulk history spread over four streams.  Eager recovery
#: then drains the five streams as parallel lanes, so TTFR tracks the
#: largest shard (~a quarter of the bulk) instead of the whole log.
RECOVERY_SHARDS = (
    {
        "id": "hot",
        "processes": ["recovery-bench"],
        "components": ["PingServer"],
    },
    *(
        {
            "id": f"bulk-{cls.__name__[-1].lower()}",
            "processes": ["recovery-bench"],
            "components": [cls.__name__],
        }
        for cls in BULK_CLASSES
    ),
)


def _measure(
    total_calls: int, on_demand: bool, sharded: bool = False
) -> tuple[float, float]:
    """Crash after ``total_calls`` and return (TTFR, full drain) in
    simulated ms."""
    runtime = PhoenixRuntime(
        config=RuntimeConfig.optimized(
            on_demand_recovery=on_demand, sharded_logging=sharded
        )
    )
    if sharded:
        runtime.install_log_plan(RECOVERY_SHARDS)
    runtime.external_client_machine = "alpha"
    process = runtime.spawn_process("recovery-bench", machine="beta")
    hot = process.create_component(PingServer)
    bulk_classes = BULK_CLASSES if sharded else (PingServer,)
    bulk = [
        process.create_component(bulk_classes[i % len(bulk_classes)])
        for i in range(BULK_COMPONENTS)
    ]
    for i in range(HOT_CALLS):
        hot.ping(i)
    for i in range(total_calls - HOT_CALLS):
        bulk[i % BULK_COMPONENTS].ping(i)
    runtime.crash_process(process)
    started = runtime.now
    assert hot.ping(-1) == -1
    ttfr = runtime.now - started
    runtime.ensure_recovered(process)
    assert process.pending_recovery is None
    return ttfr, runtime.now - started


def recovery_latency(sizes: tuple = SMOKE_SIZES) -> ExperimentTable:
    table = ExperimentTable(
        key="recovery_latency",
        title="Recovery latency (ms) vs log size: eager vs on-demand",
        columns=[str(n) for n in sizes],
        precision=0,
    )
    series = {
        (label, metric): []
        for label in ("eager", "on-demand", "sharded")
        for metric in ("TTFR", "drain")
    }
    modes = (
        ("eager", False, False),
        ("on-demand", True, False),
        ("sharded", False, True),
    )
    for n in sizes:
        for label, on_demand, sharded in modes:
            ttfr, drain = _measure(n, on_demand, sharded=sharded)
            series[(label, "TTFR")].append(ttfr)
            series[(label, "drain")].append(drain)
    for (label, metric), values in series.items():
        table.add_row(
            f"{label} {metric}", *[Cell(value) for value in values]
        )
    table.notes.append(
        "TTFR = crash to first reply of a 100-call hot component; the "
        "bulk of the log belongs to other components.  Eager TTFR grows "
        "at ~0.15 ms per logged call (Table 7's replay constant); "
        "on-demand TTFR replays only the hot chain and stays flat."
    )
    table.notes.append(
        "sharded = eager recovery with sharded_logging on and a "
        f"{1 + len(BULK_CLASSES)}-shard plan: the streams drain as "
        "parallel lanes, so TTFR and drain track the largest shard "
        "(~a quarter of the bulk) instead of the whole log — still "
        "linear, but divided by the shard fan-out."
    )
    return table


def _series(table: ExperimentTable, label: str) -> list[float]:
    for row_label, cells in table.rows:
        if row_label == label:
            return [cell.measured for cell in cells]
    raise KeyError(label)


def bench_recovery_latency(benchmark):
    full = bool(os.environ.get("REPRO_BENCH_FULL"))
    sizes = FULL_SIZES if full else SMOKE_SIZES
    table = run_experiment(benchmark, recovery_latency, sizes=sizes)

    eager_ttfr = _series(table, "eager TTFR")
    ondemand_ttfr = _series(table, "on-demand TTFR")
    eager_drain = _series(table, "eager drain")
    ondemand_drain = _series(table, "on-demand drain")
    sharded_ttfr = _series(table, "sharded TTFR")
    sharded_drain = _series(table, "sharded drain")

    # On-demand TTFR is flat: within 10% across a 5x (or 50x) log-size
    # spread, and always below the eager TTFR for the same log.
    assert max(ondemand_ttfr) <= min(ondemand_ttfr) * 1.10
    for eager, ondemand in zip(eager_ttfr, ondemand_ttfr):
        assert ondemand < eager

    # Eager TTFR grows at the replay constant (~0.15 ms per call).
    for i in range(len(sizes) - 1):
        slope = (eager_ttfr[i + 1] - eager_ttfr[i]) / (
            sizes[i + 1] - sizes[i]
        )
        assert slope == pytest.approx(0.15, rel=0.25)

    # Both modes replay the same records overall.
    for eager, ondemand in zip(eager_drain, ondemand_drain):
        assert ondemand == pytest.approx(eager, rel=0.25)

    # Parallel shard recovery: the same records replayed as concurrent
    # per-shard lanes.  TTFR and full drain both beat single-log eager
    # recovery at every size — the largest shard holds about a quarter
    # of the bulk, so the win approaches the 4x shard fan-out.
    for eager, shard in zip(eager_ttfr, sharded_ttfr):
        assert shard < eager
    for eager, shard in zip(eager_drain, sharded_drain):
        assert shard < eager
    assert sharded_ttfr[-1] < eager_ttfr[-1] / 2

    if full:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "sizes": list(sizes),
                    "hot_calls": HOT_CALLS,
                    "bulk_components": BULK_COMPONENTS,
                    "unit": "simulated ms",
                    "eager": {
                        "ttfr": eager_ttfr,
                        "drain": eager_drain,
                    },
                    "on_demand": {
                        "ttfr": ondemand_ttfr,
                        "drain": ondemand_drain,
                    },
                    "sharded": {
                        "shards": 1 + len(BULK_CLASSES),
                        "ttfr": sharded_ttfr,
                        "drain": sharded_drain,
                    },
                },
                indent=2,
            )
            + "\n"
        )


if __name__ == "__main__":
    os.environ["REPRO_BENCH_FULL"] = "1"

    class _Inline:
        def pedantic(self, fn, iterations=1, rounds=1):
            return fn()

    bench_recovery_latency(_Inline())
    print(f"wrote {BENCH_JSON}")
