"""Paper Section 4.3: how frequently should context states be saved?

The sweep behind the paper's ~400-call rule: runtime overhead and
worst-case recovery time across checkpoint intervals.  Claims:

* worst-case recovery grows linearly with the interval (0.15 ms per
  unsaved call);
* with a long enough history, an over-wide interval is *worse* than not
  checkpointing at all (you pay the 60 ms restore without saving enough
  replay) — the reason the rule says "every 400 calls or more";
* runtime overhead per call shrinks as the interval grows.
"""

import pytest

from repro.bench import checkpoint_interval_sweep

from conftest import run_experiment


def bench_checkpoint_sweep(benchmark, measured):
    table = run_experiment(
        benchmark, checkpoint_interval_sweep,
        intervals=(25, 100, 400, 1600), base_calls=1600,
    )

    recovery = {
        label: cells[1].measured for label, cells in table.rows
    }
    runtime_cost = {
        label: cells[0].measured for label, cells in table.rows
    }

    # linear growth with the interval
    assert (
        recovery["every 25 calls"]
        < recovery["every 100 calls"]
        < recovery["every 400 calls"]
        < recovery["every 1600 calls"]
    )
    slope = (
        recovery["every 1600 calls"] - recovery["every 400 calls"]
    ) / 1200
    assert slope == pytest.approx(0.15, abs=0.02)

    # an over-wide interval loses to no checkpoints at this history size
    assert recovery["every 1600 calls"] > recovery["no checkpoints"]
    # a sane interval wins comfortably
    assert recovery["every 400 calls"] < recovery["no checkpoints"]

    # runtime overhead decreases (or stays flat) as saving gets rarer
    assert (
        runtime_cost["every 25 calls"]
        >= runtime_cost["every 400 calls"] - 0.01
    )
