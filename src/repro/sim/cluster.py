"""The simulated cluster: machines, a shared clock, and the network.

This is the bottom of the stack.  The Phoenix/App runtime
(:mod:`repro.core.runtime`) is built on top of a cluster: it places
processes on machines, routes calls through the network, and charges the
cost model against the shared clock.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import ConfigurationError
from .clock import SimClock
from .costs import DEFAULT_COSTS, DEFAULT_NETWORK_SPEC, CostModel, NetworkSpec
from .disk import DEFAULT_GEOMETRY, DiskGeometry
from .machine import Machine
from .network import Network


class Cluster:
    """A set of machines sharing one simulated clock and network."""

    def __init__(
        self,
        machine_names: Iterable[str] = ("alpha", "beta"),
        costs: CostModel = DEFAULT_COSTS,
        geometry: DiskGeometry = DEFAULT_GEOMETRY,
        network_spec: NetworkSpec = DEFAULT_NETWORK_SPEC,
        write_cache_enabled: bool = False,
    ):
        names = list(machine_names)
        if not names:
            raise ConfigurationError("a cluster needs at least one machine")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate machine names: {names}")
        self.clock = SimClock()
        self.costs = costs
        self.network = Network(self.clock, network_spec)
        self._machines = {
            name: Machine(
                name,
                self.clock,
                geometry=geometry,
                write_cache_enabled=write_cache_enabled,
            )
            for name in names
        }

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now

    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise ConfigurationError(
                f"no machine {name!r}; cluster has {sorted(self._machines)}"
            ) from None

    def machines(self) -> list[Machine]:
        return list(self._machines.values())

    def machine_names(self) -> list[str]:
        return sorted(self._machines)

    def __repr__(self) -> str:
        return f"Cluster({self.machine_names()}, now={self.now:.3f}ms)"
