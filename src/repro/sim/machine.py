"""A simulated machine: disks, stable storage, and hosted processes.

Machines are the unit of locality in the simulation.  A process's log
lives on its machine's disk; calls between processes on the same machine
pay no network cost; each machine runs one Phoenix/App recovery service
(paper Section 2.4), which the runtime layer attaches after construction
so this module stays free of upward dependencies.
"""

from __future__ import annotations

from typing import Any

from ..errors import InvariantViolationError
from .clock import SimClock
from .costs import DEFAULT_COSTS, CostModel
from .disk import DEFAULT_GEOMETRY, DiskGeometry, RotationalDisk
from .stable_store import StableStore


class Machine:
    """One machine of the simulated cluster."""

    def __init__(
        self,
        name: str,
        clock: SimClock,
        geometry: DiskGeometry = DEFAULT_GEOMETRY,
        write_cache_enabled: bool = False,
    ):
        self.name = name
        self.clock = clock
        self.stable_store = StableStore(name)
        self.disk = RotationalDisk(
            clock,
            geometry,
            write_cache_enabled=write_cache_enabled,
            name=f"{name}:disk0",
        )
        # Attached by the runtime layer (repro.recovery.recovery_service).
        self.recovery_service: Any = None
        self._processes: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # process registry (entries are repro.core.process.AppProcess)
    # ------------------------------------------------------------------
    def register_process(self, process: Any) -> None:
        if process.name in self._processes:
            raise InvariantViolationError(
                f"process {process.name!r} already registered on {self.name}"
            )
        self._processes[process.name] = process

    def process(self, name: str) -> Any:
        return self._processes[name]

    def has_process(self, name: str) -> bool:
        return name in self._processes

    def processes(self) -> list[Any]:
        return list(self._processes.values())

    def set_write_cache(self, enabled: bool) -> None:
        """Toggle the disk write cache (paper Table 6 compares both)."""
        self.disk.write_cache_enabled = enabled

    def __repr__(self) -> str:
        return f"Machine({self.name}, processes={sorted(self._processes)})"
