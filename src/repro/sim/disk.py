"""Mechanistic rotational disk model.

The paper's performance numbers are dominated by *forced* log writes to a
MAXTOR 6L040J2 disk (Table 3) with the write cache disabled.  Section
5.2.2 and Figure 9 establish the key mechanism:

    unbuffered writes indeed miss a full rotation

i.e. a log append issued immediately after the previous one finds that the
next sequential sector has just passed under the head and must wait almost
a full rotation (8.33 ms at 7200 RPM).  When an artificial delay is
inserted between writes, the per-iteration elapsed time follows a
staircase whose treads are one rotation wide.

This module reproduces that behaviour from first principles rather than a
lookup table:

* the spindle phase is a pure function of simulated time;
* each file owns a region of tracks and is written at sequentially
  increasing angular sector addresses;
* an unbuffered write seeks (if the head is on another track), waits for
  its target sector to rotate under the head, then transfers.

With the write cache *enabled* a write costs a fixed controller/bus time
and no media wait (Table 6's right column).  Durability in this simulation
is against **process** crashes (the paper kills processes, not power), so
bytes handed to the disk survive in either mode; the cache mode only
changes timing, exactly as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvariantViolationError
from .clock import SimClock

# File start sectors are allocation-aligned: every file's first sector
# sits at spindle angle 0.  This is what makes two logs on one disk
# (e.g. the local micro-benchmark's client and server processes) settle
# into the paper's "each write just misses a full rotation" pattern
# rather than an arbitrary-phase lock.
_START_ANGLE = 0.0


@dataclass(frozen=True)
class DiskGeometry:
    """Timing-relevant geometry, calibrated from paper Table 3.

    ``track_capacity_bytes`` is an *effective* capacity: it is chosen so
    that a 1 KB unbuffered write back-to-back with its predecessor costs
    ~8.5 ms (one rotation plus transfer), which is what the paper
    measures.  The nominal media rate of the MAXTOR drive is higher; the
    difference absorbs per-sector and controller overheads.
    """

    rpm: float = 7200.0
    track_capacity_bytes: int = 50_000
    track_to_track_seek_ms: float = 0.8
    average_seek_ms: float = 10.5
    cached_write_ms: float = 0.38
    issue_overhead_ms: float = 0.02

    @property
    def rotation_ms(self) -> float:
        """One full rotation in milliseconds (8.333 ms at 7200 RPM)."""
        return 60_000.0 / self.rpm

    def transfer_ms(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` on one track."""
        return (nbytes / self.track_capacity_bytes) * self.rotation_ms

    def seek_ms(self, from_track: int, to_track: int) -> float:
        """Seek time between two tracks.

        Zero for the same track; short seeks start at the track-to-track
        time and grow with a shallow slope (a modern actuator crosses
        hundreds of tracks in little more than a settle time), capped at
        the drive's average seek time.  The paper's experiments only
        ever seek between adjacently allocated log files — "close enough
        to incur only small disk seek times" (Section 5.2.2 footnote) —
        so the short-seek region is what matters.
        """
        distance = abs(to_track - from_track)
        if distance == 0:
            return 0.0
        seek = self.track_to_track_seek_ms + 0.002 * (distance - 1)
        return min(seek, self.average_seek_ms)


DEFAULT_GEOMETRY = DiskGeometry()


@dataclass
class DiskFile:
    """A sequentially written file (a log) occupying a track region."""

    name: str
    start_track: int
    start_angle: float  # fraction of a rotation, in [0, 1)
    track: int = 0
    next_angle: float = 0.0
    bytes_on_track: int = 0
    total_bytes: int = 0
    write_count: int = 0

    def __post_init__(self) -> None:
        self.track = self.start_track
        self.next_angle = self.start_angle


@dataclass
class DiskStats:
    """Counters the tests and experiment reports read."""

    writes: int = 0
    cached_writes: int = 0
    media_writes: int = 0
    busy_ms: float = 0.0
    seeks: int = 0
    full_rotation_waits: int = 0  # waits longer than 90% of a rotation


class RotationalDisk:
    """A single spindle with a movable head and sequential log files."""

    # A file region is sized so the micro-benchmarks never run a log off
    # the end of its region; regions are allocated contiguously so
    # adjacent files incur only short seeks (paper Section 5.2.2 footnote).
    TRACKS_PER_REGION = 64

    def __init__(
        self,
        clock: SimClock,
        geometry: DiskGeometry = DEFAULT_GEOMETRY,
        write_cache_enabled: bool = False,
        name: str = "disk0",
    ):
        self.name = name
        self.clock = clock
        self.geometry = geometry
        self.write_cache_enabled = write_cache_enabled
        self.stats = DiskStats()
        self._files: dict[str, DiskFile] = {}
        self._head_track = 0
        self._next_region = 0
        # The head is only consistent while the spindle turns; completion
        # times below never move the shared clock backwards.
        self._busy_until = 0.0

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def create_file(self, name: str) -> DiskFile:
        """Allocate a new sequential file in the next free track region."""
        if name in self._files:
            raise InvariantViolationError(f"disk file {name!r} already exists")
        region = self._next_region
        self._next_region += 1
        start_angle = _START_ANGLE
        file = DiskFile(
            name=name,
            start_track=region * self.TRACKS_PER_REGION,
            start_angle=start_angle,
        )
        self._files[name] = file
        return file

    def file(self, name: str) -> DiskFile:
        return self._files[name]

    def has_file(self, name: str) -> bool:
        return name in self._files

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    @property
    def group_commit_window_ms(self) -> float:
        """The natural group-commit window for logs on this spindle: one
        full rotation.  A force issued right after a previous write has
        just missed its sector and waits ~one rotation anyway (Section
        5.2.2 / Figure 9), so forces arriving within that window can ride
        the same write without delaying it further.
        """
        return self.geometry.rotation_ms

    def _spindle_angle(self, at_ms: float) -> float:
        """Spindle phase (fraction of a rotation) at absolute time."""
        rotation = self.geometry.rotation_ms
        return (at_ms % rotation) / rotation

    def write(self, file: DiskFile, nbytes: int) -> float:
        """Synchronously write ``nbytes`` at the file's next sector.

        Advances the shared clock to the completion time and returns the
        service time in milliseconds.  The caller (the log manager) is
        responsible for what the bytes *are*; durability of content is
        modelled by :class:`repro.sim.stable_store.StableStore`.
        """
        if nbytes <= 0:
            raise InvariantViolationError("disk write of <= 0 bytes")
        start = self.clock.now
        self.stats.writes += 1
        file.write_count += 1
        file.total_bytes += nbytes

        if self.write_cache_enabled:
            self.stats.cached_writes += 1
            service = self.geometry.cached_write_ms
            self.clock.advance(service)
            self.stats.busy_ms += service
            return service

        geometry = self.geometry
        t = start + geometry.issue_overhead_ms

        # Seek if the head is parked on another track.
        if self._head_track != file.track:
            seek = geometry.seek_ms(self._head_track, file.track)
            t += seek
            self._head_track = file.track
            self.stats.seeks += 1

        # Rotational wait for the file's next sequential sector.
        rotation = geometry.rotation_ms
        head_angle = self._spindle_angle(t)
        wait_fraction = (file.next_angle - head_angle) % 1.0
        wait = wait_fraction * rotation
        if wait >= 0.9 * rotation:
            self.stats.full_rotation_waits += 1
        t += wait

        # Transfer; advance the file's sector cursor.
        transfer = geometry.transfer_ms(nbytes)
        t += transfer
        file.next_angle = (file.next_angle + transfer / rotation) % 1.0
        file.bytes_on_track += nbytes
        if file.bytes_on_track >= geometry.track_capacity_bytes:
            file.bytes_on_track = 0
            file.track += 1  # the next write will pay a short seek

        self.stats.media_writes += 1
        self.clock.advance_to(t)
        service = t - start
        self.stats.busy_ms += service
        return service

    def __repr__(self) -> str:
        cache = "on" if self.write_cache_enabled else "off"
        return (
            f"RotationalDisk({self.name}, cache={cache}, "
            f"files={len(self._files)}, writes={self.stats.writes})"
        )
