"""Simulation substrate: clock, disks, stable storage, network, machines.

The paper measured a real two-machine testbed (Tables 2 and 3).  This
package replaces that testbed with a deterministic simulation whose one
mechanistic component — the rotational disk — reproduces the behaviour
the paper's Section 5.2.2 identifies as dominating every measurement:
unbuffered log forces that miss a full disk rotation.
"""

from .clock import SimClock, Stopwatch
from .cluster import Cluster
from .costs import (
    DEFAULT_COSTS,
    DEFAULT_MACHINE_SPEC,
    DEFAULT_NETWORK_SPEC,
    CostModel,
    MachineSpec,
    NetworkSpec,
)
from .disk import DEFAULT_GEOMETRY, DiskFile, DiskGeometry, DiskStats, RotationalDisk
from .machine import Machine
from .network import Network, NetworkStats
from .stable_store import StableFile, StableStore

__all__ = [
    "SimClock",
    "Stopwatch",
    "Cluster",
    "CostModel",
    "MachineSpec",
    "NetworkSpec",
    "DEFAULT_COSTS",
    "DEFAULT_MACHINE_SPEC",
    "DEFAULT_NETWORK_SPEC",
    "DEFAULT_GEOMETRY",
    "DiskFile",
    "DiskGeometry",
    "DiskStats",
    "RotationalDisk",
    "Machine",
    "Network",
    "NetworkStats",
    "StableFile",
    "StableStore",
]
