"""Network model between simulated machines.

The paper's two test machines are connected by 100 Mb Ethernet; Table 4
shows remote calls cost ~0.2 ms more than local ones round trip.  We model
a message hop as half the measured round trip plus wire time for the
payload.  Calls between components on the *same* machine pay no network
cost (the marshalling cost of crossing a context is part of the fixed call
cost in :class:`repro.sim.costs.CostModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import SimClock
from .costs import DEFAULT_NETWORK_SPEC, NetworkSpec


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    busy_ms: float = 0.0


class Network:
    """Latency/bandwidth model connecting the machines of a cluster."""

    def __init__(
        self,
        clock: SimClock,
        spec: NetworkSpec = DEFAULT_NETWORK_SPEC,
    ):
        self.clock = clock
        self.spec = spec
        self.stats = NetworkStats()
        self._partitioned: set[frozenset[str]] = set()

    def hop_ms(self, source: str, target: str, nbytes: int = 256) -> float:
        """One-way latency for a message of ``nbytes`` between machines."""
        if source == target:
            return 0.0
        return self.spec.round_trip_ms / 2.0 + self.spec.transfer_ms(nbytes)

    def transmit(self, source: str, target: str, nbytes: int = 256) -> float:
        """Advance the clock by one message hop; return its latency.

        Raises ``ConnectionError`` if the pair is partitioned (used by
        failure-injection tests; the interceptor treats it as a
        recognized failure and retries).
        """
        if self.is_partitioned(source, target):
            raise ConnectionError(
                f"network partition between {source} and {target}"
            )
        latency = self.hop_ms(source, target, nbytes)
        if latency:
            self.clock.advance(latency)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.busy_ms += latency
        return latency

    # ------------------------------------------------------------------
    # partitions (failure injection)
    # ------------------------------------------------------------------
    def partition(self, machine_a: str, machine_b: str) -> None:
        self._partitioned.add(frozenset((machine_a, machine_b)))

    def heal(self, machine_a: str, machine_b: str) -> None:
        self._partitioned.discard(frozenset((machine_a, machine_b)))

    def is_partitioned(self, machine_a: str, machine_b: str) -> bool:
        if machine_a == machine_b:
            return False
        return frozenset((machine_a, machine_b)) in self._partitioned
