"""Simulated clock.

All elapsed times reported by this library are *simulated milliseconds*.
The paper's evaluation ran on real hardware with a coarse (~15 ms) OS
timer and reported means over 30 runs with up to 12% deviation; the
simulation replaces that with a deterministic clock that every cost in the
system (disk service times, network latency, fixed per-call overheads)
advances explicitly.  This makes every benchmark in ``benchmarks/``
exactly reproducible.
"""

from __future__ import annotations

from ..errors import InvariantViolationError


class SimClock:
    """A monotonically advancing simulated clock, in milliseconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time.

        Negative advances are invariant violations: simulated time never
        runs backwards.
        """
        if delta_ms < 0:
            raise InvariantViolationError(
                f"clock cannot go backwards (delta={delta_ms})"
            )
        self._now += delta_ms
        return self._now

    def advance_to(self, when_ms: float) -> float:
        """Advance the clock to the absolute time ``when_ms``.

        ``when_ms`` in the past is a no-op: the clock stays where it is.
        This is the common idiom for waiting on a device whose completion
        time may already have passed.
        """
        if when_ms > self._now:
            self._now = when_ms
        return self._now

    def rewind_to(self, when_ms: float) -> float:
        """Reset the clock to an earlier absolute time.

        Reserved for measurement harnesses that replay alternative
        timelines from a common base — sharded recovery runs each
        shard's replay as its own *lane* from the recovery start time
        and then advances to the longest lane, so serial recovery time
        models the shards draining in parallel.  Runtime code must
        never call this; time as observed by the runtime only moves
        forward.
        """
        if when_ms > self._now:
            raise InvariantViolationError(
                f"rewind_to({when_ms}) is in the future (now={self._now})"
            )
        self._now = float(when_ms)
        return self._now

    def sleep_until(self, when_ms: float) -> float:
        """Park until the absolute time ``when_ms`` (a past wakeup is a
        no-op, like :meth:`advance_to`).

        The deterministic scheduler uses this when every session is
        blocked on an open group-commit window: the only event left is
        the window's deadline, so simulated time jumps straight to it.
        """
        return self.advance_to(when_ms)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}ms)"


class Stopwatch:
    """Measures elapsed simulated time between ``start`` and ``stop``.

    Used by the benchmark harness to time batches of method calls the way
    the paper does (total elapsed / number of calls).
    """

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._started_at: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> None:
        self._started_at = self._clock.now

    def stop(self) -> float:
        if self._started_at is None:
            raise InvariantViolationError("stopwatch stopped before started")
        self.elapsed = self._clock.now - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started_at is not None:
            self.stop()
