"""Durable byte storage that survives simulated process crashes.

The timing of writes is modelled by :class:`repro.sim.disk.RotationalDisk`;
*content* durability is modelled here.  A :class:`StableStore` belongs to a
machine and holds named byte files.  Simulated crashes wipe process memory
(including any log-manager buffer) but never touch the stable store —
matching the paper's failure model, where processes are killed but the
operating system and disks keep running.

The store also supports an injectable *torn tail*: tests can chop bytes
off the end of a file to emulate a write that was in flight at the moment
of a crash, which exercises the log's CRC framing.
"""

from __future__ import annotations

from ..errors import InvariantViolationError, PartialWriteError


class StableFile:
    """An append-mostly durable byte file."""

    def __init__(self, name: str):
        self.name = name
        self._data = bytearray()
        self._partial_cut: int | None = None

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size(self) -> int:
        return len(self._data)

    def arm_partial_write(self, cut: int) -> None:
        """Make the *next* :meth:`append` persist only ``cut`` bytes and
        raise :class:`~repro.errors.PartialWriteError` (one-shot)."""
        if cut < 0:
            raise InvariantViolationError(
                f"negative partial-write cut {cut} on file {self.name!r}"
            )
        self._partial_cut = cut

    def append(self, data) -> int:
        """Append ``data`` (``bytes``, ``bytearray`` or ``memoryview``);
        return the offset it was written at."""
        offset = len(self._data)
        if self._partial_cut is not None:
            cut = min(self._partial_cut, len(data))
            self._partial_cut = None
            self._data.extend(bytes(data)[:cut])
            raise PartialWriteError(self.name, cut, len(data))
        self._data.extend(data)
        return offset

    def read(self, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes from ``offset`` (to EOF if ``None``)."""
        if offset < 0 or offset > len(self._data):
            raise InvariantViolationError(
                f"read offset {offset} outside file {self.name!r} "
                f"of size {len(self._data)}"
            )
        if length is None:
            return bytes(self._data[offset:])
        return bytes(self._data[offset:offset + length])

    def read_range(self, offset: int, length: int) -> bytes:
        """Read exactly ``length`` bytes starting at ``offset``.

        The incremental read API: unlike :meth:`read`, a range that runs
        past the end of the file is an error rather than a silent short
        read, so callers (the log manager's frame index) notice stale
        offsets instead of decoding garbage.
        """
        if length < 0:
            raise InvariantViolationError(
                f"negative read length {length} on file {self.name!r}"
            )
        end = offset + length
        if offset < 0 or end > len(self._data):
            raise InvariantViolationError(
                f"read range [{offset}, {end}) outside file {self.name!r} "
                f"of size {len(self._data)}"
            )
        return bytes(self._data[offset:end])

    def overwrite(self, data: bytes) -> None:
        """Atomically replace the whole file (used by well-known files)."""
        self._data = bytearray(data)

    def truncate(self, size: int) -> None:
        """Discard everything past ``size`` (torn-tail injection and
        recovery's removal of a corrupt tail)."""
        if size < 0 or size > len(self._data):
            raise InvariantViolationError(
                f"truncate to {size} outside file {self.name!r} "
                f"of size {len(self._data)}"
            )
        del self._data[size:]

    def trim_front(self, nbytes: int) -> None:
        """Discard the first ``nbytes`` (log garbage collection)."""
        if nbytes < 0 or nbytes > len(self._data):
            raise InvariantViolationError(
                f"trim of {nbytes} outside file {self.name!r} "
                f"of size {len(self._data)}"
            )
        del self._data[:nbytes]


class StableStore:
    """Named durable files for one machine."""

    def __init__(self, machine_name: str):
        self.machine_name = machine_name
        self._files: dict[str, StableFile] = {}

    def create(self, name: str) -> StableFile:
        if name in self._files:
            raise InvariantViolationError(
                f"stable file {name!r} already exists on {self.machine_name}"
            )
        file = StableFile(name)
        self._files[name] = file
        return file

    def open(self, name: str, create: bool = False) -> StableFile:
        """Return the file, optionally creating it if missing."""
        if name not in self._files:
            if not create:
                raise KeyError(
                    f"no stable file {name!r} on {self.machine_name}"
                )
            return self.create(name)
        return self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._files)
