"""Calibrated fixed-cost model.

The paper's micro-benchmarks (Tables 4 and 5) decompose elapsed time into
disk media costs (modelled mechanistically by :mod:`repro.sim.disk`) plus
a set of fixed per-operation CPU/marshalling costs.  This module holds
those fixed costs, calibrated from the native-.NET rows of Table 4 and
the no-force rows of Table 5:

==============================  ========  ==========================================
constant                        value     calibration source
==============================  ========  ==========================================
``marshal_by_ref_call``         0.593 ms  External -> MarshalByRefObject (local)
``context_bound_call``          0.585 ms  ContextBound -> ContextBound (local)
``interception_overhead``       0.089 ms  ...(interception) row minus plain row
``network_round_trip``          0.210 ms  remote column minus local column
``type_attachment_cost``        0.500 ms  Persistent -> Functional minus
                                          External -> Functional (Section 5.2.3)
``log_buffer_write``            0.170 ms  Persistent -> Read-only minus
                                          Persistent -> Functional (0.15~0.2 ms)
``last_call_update``            0.040 ms  residual of Persistent -> Persistent rows
``subordinate_call``            3.44e-5   Persistent -> Subordinate (direct call)
``replay_per_call``             0.150 ms  Section 5.4 ("roughly 0.15 ms")
``object_creation``             80.0 ms   Section 5.4
``state_record_restore``        60.0 ms   Section 5.4
``runtime_init``                492.0 ms  Table 7, empty log
``context_state_save``          1.000 ms  Table 6 ("additional ~1 ms overhead")
``retry_backoff``               100.0 ms  interceptor wait before retrying a call
==============================  ========  ==========================================

The model is intentionally a plain dataclass so experiments can perturb a
single cost (ablations) without touching the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Fixed simulated costs, all in milliseconds."""

    # --- call transport costs (Table 4 native rows) ---
    marshal_by_ref_call: float = 0.593
    context_bound_call: float = 0.585
    interception_overhead: float = 0.089
    network_round_trip: float = 0.210

    # --- runtime bookkeeping costs ---
    type_attachment_cost: float = 0.500
    log_buffer_write: float = 0.170
    last_call_update: float = 0.040
    subordinate_call: float = 3.44e-5
    dedup_check: float = 0.010

    # --- checkpoint / recovery costs (Sections 5.3, 5.4) ---
    context_state_save: float = 1.000
    # The paper measured a 468-byte state record and notes "for many
    # components, the states could be substantially larger.  Our small
    # state ... was responsible for the small computational overhead."
    # States beyond the paper's small-state regime pay a serialization
    # rate per additional KB (an extension; the paper gives no figure).
    state_save_small_state_bytes: int = 1024
    state_save_per_extra_kb: float = 0.35
    replay_per_call: float = 0.150
    state_restore_per_extra_kb: float = 0.35
    object_creation: float = 80.0
    state_record_restore: float = 60.0
    runtime_init: float = 492.0

    # --- failure handling ---
    retry_backoff: float = 100.0

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with some costs replaced (for ablations)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()


@dataclass(frozen=True)
class MachineSpec:
    """The test machine of paper Table 2 (Compaq Evo D500).

    Only documentary in the simulation — the CPU costs are folded into
    :class:`CostModel` — but kept so experiment reports can echo the
    paper's setup tables.
    """

    cpu: str = "2.20 GHz Pentium 4"
    l2_cache_kb: int = 512
    ram_mb: int = 512
    os: str = "simulated (paper: Windows XP Professional)"
    framework: str = "repro (paper: .NET 1.0.3705)"


DEFAULT_MACHINE_SPEC = MachineSpec()


@dataclass(frozen=True)
class NetworkSpec:
    """100 Mb Ethernet between the two test machines (Section 5.1)."""

    bandwidth_mbps: float = 100.0
    round_trip_ms: float = 0.210

    def transfer_ms(self, nbytes: int) -> float:
        """One-way wire time for a payload of ``nbytes``."""
        bits = nbytes * 8
        return bits / (self.bandwidth_mbps * 1000.0)  # Mbps -> bits/ms


DEFAULT_NETWORK_SPEC = NetworkSpec()
