"""The sweep: enumerate crash points, run each, compare to golden.

``discover_plan`` runs each workload fault-free with a recording plane
and derives the point list (:mod:`repro.faults.plan`), including
crash-during-recovery composites: for a couple of representative base
crashes per Phoenix workload, a secondary armed-and-recording run
journals which ``recovery.*`` pass boundaries the repair actually
crosses, and each of those becomes a two-spec point.

``run_point`` re-executes the point's workload armed and asserts the
full oracle:

1. every armed spec fired (the plan is not stale),
2. the workload completed (drivers retried through the crash),
3. the TRC101-105 trace/log invariants hold on every process,
4. replies are identical to the golden run (exactly-once delivery),
5. component state is byte-identical to the golden run,
6. crash-everything-and-recover-again yields that same state
   (recover-twice idempotency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import CrashPlan, CrashPoint, composite_points, points_from_journal
from .plane import CrashSpec
from .workloads import WORKLOADS, RunOutcome

#: Cap on crash-during-recovery points derived per base crash.
MAX_COMPOSITES_PER_BASE = 8


@dataclass
class PointResult:
    point_id: str
    ok: bool
    failures: list[str] = field(default_factory=list)
    retries: int = 0


@dataclass
class SweepResult:
    plan: CrashPlan
    golden: dict[str, RunOutcome]
    results: list[PointResult]

    @property
    def failed(self) -> list[PointResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failed


def _golden_runs(workloads: list[str]) -> dict[str, RunOutcome]:
    return {name: WORKLOADS[name](record=True) for name in workloads}


def _composite_bases(points: list[CrashPoint]) -> list[CrashSpec]:
    """Pick representative base crashes for crash-during-recovery
    composites: a mid-run force boundary and a mid-run torn write."""
    forces = [
        point.specs[0]
        for point in points
        if point.specs[0].cut is None
        and point.specs[0].site.startswith("log.force.before:")
    ]
    tears = [point.specs[0] for point in points if point.specs[0].cut is not None]
    bases: list[CrashSpec] = []
    if forces:
        bases.append(forces[len(forces) // 2])
    if tears:
        bases.append(tears[len(tears) // 2])
    return bases


def discover_plan(
    workloads: list[str] | None = None,
    torn_stride: int = 1,
    composites: bool = True,
    golden: dict[str, RunOutcome] | None = None,
) -> tuple[CrashPlan, dict[str, RunOutcome]]:
    """Golden-run the workloads and enumerate their crash points."""
    names = list(workloads or WORKLOADS)
    golden = golden or _golden_runs(names)
    points: list[CrashPoint] = []
    for name in names:
        base_points = points_from_journal(
            name, golden[name].journal, torn_stride=torn_stride
        )
        points.extend(base_points)
        if not composites:
            continue
        for base in _composite_bases(base_points):
            # Secondary discovery: run armed with the base crash and
            # record which recovery pass boundaries the repair crosses.
            armed = WORKLOADS[name](specs=(base,), record=True)
            extra = composite_points(name, base, armed.journal)
            points.extend(extra[:MAX_COMPOSITES_PER_BASE])
    return CrashPlan(points), golden


def run_point(point: CrashPoint, golden: RunOutcome) -> PointResult:
    failures: list[str] = []
    try:
        outcome = WORKLOADS[point.workload](specs=point.specs)
    except BaseException as exc:  # CrashSignal escapes are failures too
        return PointResult(
            point.point_id,
            ok=False,
            failures=[f"workload did not complete: {type(exc).__name__}: {exc}"],
        )
    expected = [spec.render() for spec in point.specs]
    if outcome.fired != expected:
        failures.append(
            f"specs fired {outcome.fired!r}, expected {expected!r} "
            "(stale plan or lost determinism)"
        )
    failures.extend(outcome.violations)
    if outcome.replies != golden.replies:
        failures.append(
            "replies diverged from golden run (exactly-once broken): "
            f"{_first_diff(outcome.replies, golden.replies)}"
        )
    if outcome.state != golden.state:
        failures.append(
            "state diverged from golden run: "
            f"{_dict_diff(outcome.state, golden.state)}"
        )
    if outcome.state_after_recover != golden.state:
        failures.append(
            "recover-twice state diverged: "
            f"{_dict_diff(outcome.state_after_recover, golden.state)}"
        )
    return PointResult(
        point.point_id,
        ok=not failures,
        failures=failures,
        retries=outcome.retries,
    )


def _first_diff(got: list, want: list) -> str:
    if len(got) != len(want):
        return f"{len(got)} replies vs {len(want)}"
    for index, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return f"step {index}: {g!r} != {w!r}"
    return "?"


def _dict_diff(got: dict, want: dict) -> str:
    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    changed = sorted(k for k in set(got) & set(want) if got[k] != want[k])
    parts = []
    if missing:
        parts.append(f"missing {missing}")
    if extra:
        parts.append(f"extra {extra}")
    if changed:
        parts.append(f"changed {changed}")
    return "; ".join(parts) or "?"


def run_sweep(
    workloads: list[str] | None = None,
    torn_stride: int = 1,
    composites: bool = True,
    stride: int = 1,
    progress=None,
) -> SweepResult:
    """Discover the plan and run every (stride-sampled) point."""
    plan, golden = discover_plan(
        workloads, torn_stride=torn_stride, composites=composites
    )
    sampled = plan.sample(stride)
    results: list[PointResult] = []
    for index, point in enumerate(sampled):
        result = run_point(point, golden[point.workload])
        results.append(result)
        if progress is not None:
            progress(index, len(sampled), result)
    return SweepResult(plan=sampled, golden=golden, results=results)
