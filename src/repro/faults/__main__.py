"""``python -m repro.faults`` == ``repro-faults``."""

import sys

from .cli import main

sys.exit(main())
