"""The three sweep workloads: bookstore, orderflow, queued substrate.

Each workload is a deterministic script that can be executed fault-free
(the *golden* run, with a recording plane that journals every crash
site) or armed with crash specs.  Either way it must run to completion:
the drivers retry through injected crashes exactly the way the paper's
external clients do, so after the sweep's one-shot crash has fired and
recovery has run, the workload finishes and its observable outcome can
be compared byte-for-byte against the golden run.

The two Phoenix workloads are driven through a :class:`ScriptRunner` —
a persistent, memoizing component in its own process on the client
machine.  The external client's retry is the paper's window of
vulnerability (external call IDs cannot be duplicate-detected), so the
runner memoizes each step's result under its step index: a re-delivered
step returns the cached result instead of re-executing, while crashes
of the *server* tier are masked by ordinary persistent-caller duplicate
detection.  With that one idempotency layer at the edge, every injected
crash must leave replies and component state byte-identical to the
golden run — anything else is a recovery bug.

The queued workload drives the TP-monitor substrate (recoverable queues
+ durable state store + 2PC) with a client that resolves in-doubt
transactions after every crash, checking queue contents to decide
whether an interrupted operation committed or must be resubmitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.trace_check import check_runtime
from ..apps.bookstore.deploy import deploy_bookstore
from ..apps.orderflow.deploy import deploy_orderflow
from ..checkpoint.fields import capture_fields
from ..core import PersistentComponent, PhoenixRuntime, persistent
from ..core.config import CheckpointConfig, RuntimeConfig
from ..errors import (
    ApplicationError,
    ComponentUnavailableError,
    CrashSignal,
    RecoveryError,
)
from ..log.serialization import encode_value
from ..queues import (
    DurableStateStore,
    QueuedClient,
    RecoverableQueue,
    StatelessWorker,
    TransactionCoordinator,
)
from ..sim.cluster import Cluster
from .plane import CrashSpec, FaultPlane, SiteHit, installed

#: Attempts before a driver declares a schedule unrecoverable.  Specs
#: are one-shot, so anything above a handful means recovery is looping.
MAX_ATTEMPTS = 30


@dataclass
class RunOutcome:
    """Everything the sweep compares between golden and crashed runs."""

    workload: str
    replies: list
    state: dict[str, bytes]
    state_after_recover: dict[str, bytes]
    journal: list[SiteHit] = field(default_factory=list)
    fired: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    retries: int = 0
    #: Byte fingerprint of the run's durable artifacts (stable logs,
    #: protocol traces, final clock).  Only the concurrent workload
    #: fills it; two same-seed runs must produce equal fingerprints.
    #: NOT compared between golden and crashed runs — a crash legally
    #: changes the schedule from the injection point on.
    determinism: dict[str, bytes] = field(default_factory=dict)
    #: Per-process, per-event trace reprs (concurrent workload only):
    #: what the determinism check diffs to report the *first divergent
    #: trace event* when two runs disagree.
    trace_reprs: dict[str, list[str]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# the Phoenix driver component
# ----------------------------------------------------------------------
@persistent
class ScriptRunner(PersistentComponent):
    """Memoizing step executor (see module docstring).

    Application errors are part of a step's *result* — they are caught
    and cached like values, so a re-delivered step cannot re-raise its
    way past the memo and double-execute the failing call.
    """

    def __init__(self, targets: dict):
        self.targets = dict(targets)
        self.done: dict = {}

    def step(self, index: int, target: str, method: str, args: tuple):
        key = f"s{index}"
        if key in self.done:
            return self.done[key]
        try:
            result = ["ok", getattr(self.targets[target], method)(*args)]
        except ApplicationError as exc:
            result = ["err", str(exc)]
        self.done[key] = result
        return result


def _capture_state(runtime: PhoenixRuntime) -> dict[str, bytes]:
    """Byte fingerprint of every persistent-family component's fields,
    via the same capture path checkpoints use."""
    state: dict[str, bytes] = {}
    for process in sorted(runtime.processes(), key=lambda p: p.name):
        for context_id in sorted(process.context_table):
            entry = process.context_table[context_id]
            context = entry.context_ref
            if context is None or not context.is_phoenix:
                continue
            if not context.component_type.is_persistent_family:
                continue
            for position, component in enumerate(context.components()):
                fields = capture_fields(component, context)
                blob = encode_value(
                    tuple(sorted(fields.items(), key=lambda kv: kv[0]))
                )
                key = (
                    f"{process.name}/{context_id}/{position}:"
                    f"{type(component).__name__}"
                )
                state[key] = blob
    return state


def _ensure_all_recovered(runtime: PhoenixRuntime) -> None:
    """Drive every process to fully recovered, retrying through injected
    crashes.

    Eagerly-recovering workloads finish their replay inside the step
    loop, so this barrier is a no-op for them.  With
    ``config.on_demand_recovery`` the post-step drain replays the
    remaining components *here* — one-shot specs armed at ``recovery.*``
    sites can fire mid-drain, and the barrier must absorb the crash and
    restart exactly the way the external client's retry absorbs mid-call
    crashes."""
    for __ in range(MAX_ATTEMPTS):
        try:
            for process in runtime.processes():
                runtime.ensure_recovered(process)
            return
        except CrashSignal as signal:
            target = getattr(signal, "process", None)
            if target is not None and not getattr(signal, "stale", False):
                target.crash()
        except (ComponentUnavailableError, ConnectionError):
            continue
    raise RecoveryError(
        f"processes did not reach a recovered state within {MAX_ATTEMPTS} "
        "attempts (a recovery-site crash spec is looping)"
    )


def _run_phoenix(
    name: str,
    deploy,
    steps: tuple,
    specs: tuple[CrashSpec, ...],
    record: bool,
) -> RunOutcome:
    runtime, targets, client_machine = deploy()
    driver_process = runtime.spawn_process("sweep-driver", machine=client_machine)
    runner = driver_process.create_component(ScriptRunner, args=(targets,))

    plane = FaultPlane(specs=tuple(specs), record=record)
    plane.bind(runtime)
    replies: list = []
    retries = 0
    with installed(plane):
        for index, (target, method, args) in enumerate(steps):
            for __ in range(MAX_ATTEMPTS):
                try:
                    replies.append(runner.step(index, target, method, args))
                    break
                except (ComponentUnavailableError, ConnectionError):
                    retries += 1
            else:
                raise RecoveryError(
                    f"{name} step {index} did not complete within "
                    f"{MAX_ATTEMPTS} attempts (specs={specs!r})"
                )
        # Still inside the plane: the on-demand drain happens here, so a
        # golden/armed run journals its ``recovery.*`` crossings and
        # composite specs can fire mid-drain.  No-op (and journal-silent)
        # when recovery already completed eagerly in the step loop.
        _ensure_all_recovered(runtime)
    state = _capture_state(runtime)
    violations = [
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    ]
    violations.extend(_plan_violations(runtime))
    # Recover-twice idempotency: crash every process and recover again —
    # replay must regenerate byte-identical state (and the second
    # recovery must tolerate whatever the first one left on the logs).
    for process in runtime.processes():
        process.crash()
    _ensure_all_recovered(runtime)
    state_after = _capture_state(runtime)
    violations.extend(
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    )
    return RunOutcome(
        workload=name,
        replies=replies,
        state=state,
        state_after_recover=state_after,
        journal=plane.journal,
        fired=[spec.render() for spec in plane.fired],
        violations=violations,
        retries=retries,
    )


# ----------------------------------------------------------------------
# bookstore
# ----------------------------------------------------------------------
_TITLE_A = "Principles of Recovery (vol. 1)"
_TITLE_B = "Principles of Logging (vol. 1)"

BOOKSTORE_STEPS = (
    ("grabber", "search", ("recovery",)),
    ("store0", "buy", (_TITLE_A,)),
    ("seller", "add_to_basket", ("buyer-1", 0, _TITLE_A, 19.99)),
    ("store1", "price", (_TITLE_B,)),
    ("store1", "buy", (_TITLE_B,)),
    ("seller", "add_to_basket", ("buyer-1", 1, _TITLE_B, 29.99)),
    ("seller", "basket_subtotal", ("buyer-1",)),
    ("tax", "total_with_tax", (49.98, "wa")),
    ("seller", "show_basket", ("buyer-1",)),
    ("seller", "clear_basket", ("buyer-1",)),
    ("store0", "buy", (_TITLE_A,)),
    ("seller", "add_to_basket", ("buyer-1", 0, _TITLE_A, 19.99)),
)


def _deploy_bookstore_workload():
    config = RuntimeConfig.optimized(
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=2,
            process_checkpoint_every_n_saves=2,
            truncate_log=True,
        )
    )
    runtime = PhoenixRuntime(config=config)
    app = deploy_bookstore(runtime=runtime)
    targets = {
        "store0": app.stores[0],
        "store1": app.stores[1],
        "grabber": app.price_grabber,
        "tax": app.tax_calculator,
        "seller": app.seller,
    }
    return runtime, targets, "alpha"


def run_bookstore(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    return _run_phoenix(
        "bookstore", _deploy_bookstore_workload, BOOKSTORE_STEPS, specs, record
    )


def _deploy_bookstore_ondemand_workload():
    config = RuntimeConfig.optimized(
        on_demand_recovery=True,
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=2,
            process_checkpoint_every_n_saves=2,
            truncate_log=True,
        ),
    )
    runtime = PhoenixRuntime(config=config)
    app = deploy_bookstore(runtime=runtime)
    targets = {
        "store0": app.stores[0],
        "store1": app.stores[1],
        "grabber": app.price_grabber,
        "tax": app.tax_calculator,
        "seller": app.seller,
    }
    return runtime, targets, "alpha"


def run_bookstore_ondemand(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    """The bookstore with incremental recovery on: a crashed server is
    re-admitted after analysis, the steps' own deliveries trigger lazy
    per-component replay, and the post-step barrier drains the rest —
    covering ``recovery.admit_early`` and ``recovery.lazy_replay.*``
    crash sites (the log-truncation interaction rides along)."""
    return _run_phoenix(
        "bookstore-ondemand",
        _deploy_bookstore_ondemand_workload,
        BOOKSTORE_STEPS,
        specs,
        record,
    )


# ----------------------------------------------------------------------
# concurrent bookstore (deterministic scheduler, N interleaved buyers)
# ----------------------------------------------------------------------
#: Sessions in the concurrent bookstore workload; buyer i shops only at
#: store i, so per-session replies and component state are independent
#: of the interleaving and byte-comparable against the golden run.
CONCURRENT_BUYERS = 4

#: The scheduler seed for both golden and armed runs.  Identical seeds
#: make the pre-crash schedule of an armed run identical to the golden
#: run, which is what lets one-shot specs fire at the recorded hit.
CONCURRENT_SEED = 5824

#: Synthetic shard split for the sharded sweep workload (the committed
#: plan hosts the whole bookstore on one shard, which would leave the
#: extra streams idle).  Accepted verbatim by
#: :func:`repro.log.sharding.plan_shards`; unlisted components (the
#: driver's runners, checkpoint control records) stay on stream 0.
SHARDED_SWEEP_SHARDS = (
    {
        "id": "store-tier",
        "processes": ["bookstore-app"],
        "components": ["Bookstore"],
    },
    {
        "id": "seller-tier",
        "processes": ["bookstore-app"],
        "components": [
            "BookSeller",
            "BookSellerRemoteBaskets",
            "BasketManager",
            "BasketManagerPersistent",
            "ShoppingBasket",
            "ShoppingBasketPersistent",
        ],
    },
    {
        "id": "pricing-tier",
        "processes": ["bookstore-app"],
        "components": [
            "PriceGrabber",
            "PriceGrabberPersistent",
            "TaxCalculator",
            "TaxCalculatorPersistent",
        ],
    },
)

_FORCE_BOUNDS = None


def _concurrent_force_bounds():
    """Lazily built static force bounds (TRC106) shared by every run in
    this process; building the whole-program model is the expensive
    part, so it happens once."""
    global _FORCE_BOUNDS
    if _FORCE_BOUNDS is None:
        from pathlib import Path

        from ..analysis.infer import build_cost_model
        from ..analysis.model import ProgramModel, iter_py_files

        apps = Path(__file__).resolve().parents[1] / "apps"
        model = ProgramModel.from_paths(list(iter_py_files([apps])))
        _FORCE_BOUNDS = build_cost_model(model).force_bounds()
    return _FORCE_BOUNDS


def _plan_violations(runtime) -> list[str]:
    """TRC109: replay this runtime's traces against every committed
    LogPlan's force budgets.  Silent when no plan file is present (or
    ``REPRO_LOG_PLANS`` is set empty)."""
    from ..analysis.plan import check_runtime_plan, committed_plans

    return [
        f"{process_name}: {violation.render()}"
        for plan in committed_plans()
        for process_name, violation in check_runtime_plan(runtime, plan)
    ]


def _concurrent_buyer_steps(index: int) -> tuple:
    buyer = f"buyer-{index}"
    store = f"store{index}"
    return (
        ("grabber", "search", ("recovery",)),
        (store, "price", (_TITLE_A,)),
        (store, "buy", (_TITLE_A,)),
        ("seller", "add_to_basket", (buyer, index, _TITLE_A, 19.99)),
        (store, "buy", (_TITLE_B,)),
        ("seller", "add_to_basket", (buyer, index, _TITLE_B, 29.99)),
        ("seller", "basket_subtotal", (buyer,)),
        ("tax", "total_with_tax", (49.98, "wa")),
        ("seller", "show_basket", (buyer,)),
        ("seller", "clear_basket", (buyer,)),
    )


def _determinism_fingerprint(runtime: PhoenixRuntime) -> dict[str, bytes]:
    fingerprint: dict[str, bytes] = {}
    for process in sorted(runtime.processes(), key=lambda p: p.name):
        # Stream 0 keeps the legacy keys so flag-off fingerprints stay
        # byte-identical; extra shard streams get their own entries.
        for index, stream in enumerate(process.streams):
            suffix = "" if index == 0 else f"@{stream.shard_id}"
            fingerprint[f"log:{process.name}{suffix}"] = (
                stream.log.stable_bytes()
            )
            fingerprint[f"trace:{process.name}{suffix}"] = repr(
                stream.trace.entries
            ).encode()
    fingerprint["clock"] = repr(runtime.clock.now).encode()
    return fingerprint


def run_bookstore_concurrent(
    specs: tuple[CrashSpec, ...] = (),
    record: bool = False,
    on_demand: bool = False,
    workload_name: str = "bookstore-concurrent",
    seed: int | None = None,
    pipelined: bool = False,
    sharded: bool = False,
) -> RunOutcome:
    """The bookstore driven by ``CONCURRENT_BUYERS`` interleaved
    sessions under the deterministic scheduler, with group commit on.

    Each buyer session drives its own memoizing :class:`ScriptRunner`
    (all runners share one driver process, so its log interleaves too)
    and retries through injected crashes like the serial workloads.
    The outcome carries the run's determinism fingerprint in addition
    to the usual sweep-comparable fields.

    With ``on_demand`` the server processes recover incrementally: a
    mid-run crash admits calls after analysis, buyer sessions trigger
    lazy per-component replay, and background drain workers join the
    seeded interleaving (``recovery.drain_worker`` coverage).
    """
    from ..concurrency import DeterministicScheduler

    config = RuntimeConfig.optimized(
        group_commit=True,
        pipelined_commit=pipelined,
        on_demand_recovery=on_demand,
        sharded_logging=sharded,
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=2,
            process_checkpoint_every_n_saves=2,
        ),
    )
    runtime = PhoenixRuntime(config=config)
    if sharded:
        # The committed plan keeps the whole bookstore in one shard, so
        # the sweep installs a synthetic three-way split instead: real
        # cross-stream traffic (seller spans force the pricing tier's
        # stream, never the store tier's) is what exercises per-stream
        # watermarks and parallel shard recovery.
        runtime.install_log_plan(SHARDED_SWEEP_SHARDS)
    buyer_ids = tuple(f"buyer-{i}" for i in range(CONCURRENT_BUYERS))
    app = deploy_bookstore(
        runtime=runtime, n_stores=CONCURRENT_BUYERS, buyer_ids=buyer_ids
    )
    targets = {"grabber": app.price_grabber, "tax": app.tax_calculator,
               "seller": app.seller}
    for index, store in enumerate(app.stores):
        targets[f"store{index}"] = store

    driver_process = runtime.spawn_process("sweep-driver", machine="alpha")
    runners = [
        driver_process.create_component(ScriptRunner, args=(targets,))
        for __ in range(CONCURRENT_BUYERS)
    ]

    # Serial warmup, before the fault plane arms: touching every basket
    # in fixed order pins the seller's lazy subordinate creation order,
    # so component positions in the state capture don't depend on which
    # buyer reaches the seller first in a (crash-perturbed) schedule.
    for buyer_id in buyer_ids:
        app.seller.show_basket(buyer_id)

    retry_counts = [0] * CONCURRENT_BUYERS

    def make_session(index: int):
        runner = runners[index]
        steps = _concurrent_buyer_steps(index)

        def session() -> list:
            replies: list = []
            for step_index, (target, method, args) in enumerate(steps):
                for __ in range(MAX_ATTEMPTS):
                    try:
                        replies.append(
                            runner.step(step_index, target, method, args)
                        )
                        break
                    except (ComponentUnavailableError, ConnectionError):
                        retry_counts[index] += 1
                else:
                    raise RecoveryError(
                        f"buyer {index} step {step_index} did not complete "
                        f"within {MAX_ATTEMPTS} attempts (specs={specs!r})"
                    )
            return replies

        return session

    plane = FaultPlane(specs=tuple(specs), record=record)
    plane.bind(runtime)
    scheduler = DeterministicScheduler(
        runtime, seed=CONCURRENT_SEED if seed is None else seed
    )
    with installed(plane):
        per_session = scheduler.run(
            [make_session(i) for i in range(CONCURRENT_BUYERS)]
        )
        # In-plane drain barrier, as in :func:`_run_phoenix` (with
        # on-demand recovery, components no session touched after the
        # crash are still pending here).
        _ensure_all_recovered(runtime)

    determinism = _determinism_fingerprint(runtime)
    trace_reprs = {
        f"{process.name}{'' if index == 0 else f'@{stream.shard_id}'}": [
            repr(entry) for entry in stream.trace.entries
        ]
        for process in sorted(runtime.processes(), key=lambda p: p.name)
        for index, stream in enumerate(process.streams)
    }
    state = _capture_state(runtime)
    violations = [
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    ]
    from ..analysis.trace_check import check_runtime_force_bounds

    violations.extend(
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime_force_bounds(
            runtime, _concurrent_force_bounds()
        )
    )
    violations.extend(_plan_violations(runtime))
    for process in runtime.processes():
        process.crash()
    _ensure_all_recovered(runtime)
    state_after = _capture_state(runtime)
    violations.extend(
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    )
    return RunOutcome(
        workload=workload_name,
        replies=per_session,
        state=state,
        state_after_recover=state_after,
        journal=plane.journal,
        fired=[spec.render() for spec in plane.fired],
        violations=violations,
        retries=sum(retry_counts),
        determinism=determinism,
        trace_reprs=trace_reprs,
    )


def run_bookstore_concurrent_ondemand(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    """The concurrent bookstore with incremental recovery on: background
    drain workers join the seeded interleaving, so this workload is what
    sweeps the ``recovery.drain_worker`` sites."""
    return run_bookstore_concurrent(
        specs,
        record,
        on_demand=True,
        workload_name="bookstore-concurrent-ondemand",
    )


def run_bookstore_concurrent_sharded(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    """The concurrent bookstore with ``sharded_logging`` on: the server
    process hosts one log stream per shard of a synthetic three-way
    split, commits force only the stream a decision's causal target
    lives on, and recovery replays the shards as independent drains —
    sweeping the per-stream torn-tail sites and the
    ``recovery.shard.drained`` boundaries."""
    return run_bookstore_concurrent(
        specs,
        record,
        workload_name="bookstore-sharded",
        sharded=True,
    )


def run_bookstore_concurrent_pipelined(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    """The concurrent bookstore with ``pipelined_commit`` on: committing
    sends gate on per-session causal watermarks instead of the global
    end of log, so this workload is what sweeps crash recovery around
    the relaxed force ordering (watermarks must die with the process —
    recovery rebuilds them from fresh appends)."""
    return run_bookstore_concurrent(
        specs,
        record,
        workload_name="bookstore-concurrent-pipelined",
        pipelined=True,
    )


# ----------------------------------------------------------------------
# orderflow
# ----------------------------------------------------------------------
ORDERFLOW_STEPS = (
    ("desk", "place_order", ("alice", "widget", 5)),
    ("desk", "place_order", ("bob", "gadget", 12)),
    ("desk", "place_order", ("alice", "gizmo", 2)),
    ("desk", "order_history", ("alice",)),
    ("desk", "place_order", ("carol", "gizmo", 100)),  # fraud reject
    ("desk", "cancel_order", ("alice", 1)),
    ("desk", "place_order", ("bob", "widget", 50)),
    ("desk", "rejected_count", ()),
    ("desk", "order_history", ("bob",)),
)


def _deploy_orderflow_workload():
    config = RuntimeConfig.optimized(
        multicall_optimization=True,
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=3,
            process_checkpoint_every_n_saves=2,
        ),
    )
    runtime = PhoenixRuntime(config=config)
    app = deploy_orderflow(runtime=runtime)
    targets = {"desk": app.desk}
    return runtime, targets, "alpha"


def run_orderflow(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    return _run_phoenix(
        "orderflow", _deploy_orderflow_workload, ORDERFLOW_STEPS, specs, record
    )


# ----------------------------------------------------------------------
# queued substrate
# ----------------------------------------------------------------------
QUEUED_OPS = (
    ("inc", ()),
    ("add", (5,)),
    ("inc", ()),
    ("add", (2,)),
    ("inc", ()),
)


def _queued_handler(state, request):
    state = dict(state or {})
    count = state.get("count", 0)
    if request.operation == "add":
        count += request.args[0]
    else:
        count += 1
    state["count"] = count
    ops = list(state.get("ops", ()))
    ops.append([request.operation, list(request.args)])
    state["ops"] = ops
    return state, count


class _QueuedDriver:
    """Crash-aware client for the queued substrate.

    After any injected crash it crashes-and-recovers every resource
    manager (repairing torn log tails), resolves in-doubt prepares with
    the coordinator, and then *inspects the queues* to decide whether
    the interrupted operation's transaction committed — re-submitting
    only when it provably did not.  That inspection is what makes the
    driver exactly-once, mirroring a TP monitor's recoverable requests.
    """

    def __init__(self):
        cluster = Cluster()
        machine = cluster.machine("beta")
        self.coordinator = TransactionCoordinator(machine)
        self.requests = RecoverableQueue(machine, "requests")
        self.replies = RecoverableQueue(machine, "replies")
        self.store = DurableStateStore(machine, "state")
        self.worker = StatelessWorker(
            "worker",
            self.coordinator,
            self.requests,
            self.replies,
            self.store,
            _queued_handler,
        )
        self.client = QueuedClient(
            self.coordinator, self.requests, self.replies
        )
        self.retries = 0

    def recover_all(self) -> None:
        self.coordinator.crash()
        for rm in (self.requests, self.replies, self.store):
            rm.crash()
        for rm in (self.requests, self.replies, self.store):
            rm.resolve_in_doubt(self.coordinator)

    def _request_pending(self, request_id: int) -> bool:
        return any(
            payload.get("request_id") == request_id
            for payload in self.requests.peek_payloads()
        )

    def _reply_payload(self, request_id: int):
        for payload in self.replies.peek_payloads():
            if payload.get("request_id") == request_id:
                return payload
        return None

    def call(self, operation: str, args: tuple):
        client = self.client
        request_id = client._next_request_id
        # 1. submit (one-phase commit on the request queue)
        for __ in range(MAX_ATTEMPTS):
            try:
                client.submit(operation, *args)
                break
            except CrashSignal:
                self.retries += 1
                self.recover_all()
                if self._request_pending(request_id):
                    # the commit record survived the crash
                    client._next_request_id = request_id + 1
                    break
                client._next_request_id = request_id
        else:
            raise RecoveryError(f"submit of request {request_id} looped")
        # 2. process (2PC across request queue, store, reply queue)
        for __ in range(MAX_ATTEMPTS):
            if self._reply_payload(request_id) is not None:
                break
            try:
                if not self.worker.process_one():
                    raise RecoveryError(
                        f"request {request_id} lost: queue empty with no "
                        "reply (a committed submit disappeared)"
                    )
                break
            except CrashSignal:
                self.retries += 1
                self.recover_all()
        else:
            raise RecoveryError(f"processing of request {request_id} looped")
        # 3. collect (one-phase commit on the reply queue); peek first so
        # a crash after the dequeue committed cannot lose the payload
        payload = self._reply_payload(request_id)
        if payload is None:
            raise RecoveryError(f"no reply for request {request_id}")
        for __ in range(MAX_ATTEMPTS):
            try:
                self.client.collect_reply()
                break
            except CrashSignal:
                self.retries += 1
                self.recover_all()
                if self._reply_payload(request_id) is None:
                    break  # the dequeue committed before the crash
        else:
            raise RecoveryError(f"collect of request {request_id} looped")
        return payload["reply"]

    def snapshot(self) -> dict[str, bytes]:
        return {
            "store": encode_value(
                tuple(sorted(self.store.snapshot().items()))
            ),
            "requests": encode_value(tuple(self.requests.peek_payloads())),
            "replies": encode_value(tuple(self.replies.peek_payloads())),
        }


def run_queued(
    specs: tuple[CrashSpec, ...] = (), record: bool = False
) -> RunOutcome:
    driver = _QueuedDriver()
    plane = FaultPlane(specs=tuple(specs), record=record)
    replies: list = []
    with installed(plane):
        for operation, args in QUEUED_OPS:
            replies.append(driver.call(operation, args))
    state = driver.snapshot()
    # Recover-twice idempotency for the substrate: a full crash of every
    # resource manager must rebuild identical contents from the logs.
    driver.recover_all()
    state_after = driver.snapshot()
    return RunOutcome(
        workload="queued",
        replies=replies,
        state=state,
        state_after_recover=state_after,
        journal=plane.journal,
        fired=[spec.render() for spec in plane.fired],
        violations=[],
        retries=driver.retries,
    )


#: name -> runner; the sweep's unit of work.
WORKLOADS = {
    "bookstore": run_bookstore,
    "bookstore-ondemand": run_bookstore_ondemand,
    "bookstore-concurrent": run_bookstore_concurrent,
    "bookstore-concurrent-ondemand": run_bookstore_concurrent_ondemand,
    "bookstore-concurrent-pipelined": run_bookstore_concurrent_pipelined,
    "bookstore-sharded": run_bookstore_concurrent_sharded,
    "orderflow": run_orderflow,
    "queued": run_queued,
}
