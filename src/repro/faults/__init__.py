"""Deterministic crash-point sweep harness.

Instruments the durability-relevant boundaries of the runtime with named
crash *sites* (:mod:`repro.faults.plane`), enumerates the crash *points*
a workload actually passes through on a fault-free golden run
(:mod:`repro.faults.plan`), and re-executes the workload once per point,
asserting recovery restores byte-identical state with exactly-once
semantics (:mod:`repro.faults.sweep`).

Only :mod:`.plane` is imported eagerly: the instrumented runtime modules
(log, core, checkpoint, recovery, queues) import it, so pulling in the
workloads here would be an import cycle.  Import ``repro.faults.plan``,
``.workloads`` and ``.sweep`` directly where needed.
"""

from .plane import (
    CrashSpec,
    FaultPlane,
    active_plane,
    install_plane,
    installed,
    uninstall_plane,
)

__all__ = [
    "CrashSpec",
    "FaultPlane",
    "active_plane",
    "install_plane",
    "installed",
    "uninstall_plane",
]
