"""Crash plans: the points a sweep will drive a workload through.

A *crash point* is a workload name plus an ordered sequence of
:class:`~repro.faults.plane.CrashSpec` triggers.  Most points have one
spec; crash-during-recovery points have two — the first crashes the
workload, the second fires at a recovery pass boundary while the first
crash is being repaired.

Points are *discovered*, not hand-listed: a fault-free golden run with a
recording :class:`~repro.faults.plane.FaultPlane` journals every site
crossing, and the plan derives

* one point per plain site hit (force boundaries, the Algorithm-3
  window, checkpoint boundaries), and
* several torn-write points per stable flush — cuts inside the 10-byte
  frame header (1, 3 and 9 bytes: a bare magic byte, a sliced length
  prefix, one byte short of a full header) plus mid-payload and
  one-byte-short cuts.

Because the simulation is deterministic, the occurrence counts recorded
on the golden run identify the same instants when the workload is
re-executed armed.

Point IDs render as ``workload:site@occurrence`` (torn points append
``+<cut>B``; composite points join specs with ``/``), e.g.::

    bookstore:log.force.before:bookstore-app@3
    bookstore:log.flush:bookstore-app@2+9B
    orderflow:log.force.before:orderflow-desk@4/recovery.pass1:orderflow-desk@1

and parse back via :meth:`CrashPoint.parse` — that round trip is how a
failing schedule is reproduced from a report.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plane import CrashSpec, SiteHit

#: Torn-write cuts that land *inside* the frame header (magic u16 +
#: length u32 + crc u32 = 10 bytes): fewer bytes than the length prefix
#: needs, and one byte short of a complete header.
HEADER_CUTS = (1, 3, 9)


@dataclass(frozen=True)
class CrashPoint:
    """One schedule of the sweep: crash here, recover, compare."""

    workload: str
    specs: tuple[CrashSpec, ...]

    @property
    def point_id(self) -> str:
        rendered = "/".join(spec.render() for spec in self.specs)
        return f"{self.workload}:{rendered}"

    @classmethod
    def parse(cls, point_id: str) -> "CrashPoint":
        workload, sep, rest = point_id.partition(":")
        if not sep or not rest:
            raise ValueError(f"bad crash point id {point_id!r}")
        specs = tuple(CrashSpec.parse(part) for part in rest.split("/"))
        return cls(workload, specs)


@dataclass
class CrashPlan:
    """An ordered list of crash points (one sweep's worth of work)."""

    points: list[CrashPoint]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def for_workload(self, workload: str) -> list[CrashPoint]:
        return [p for p in self.points if p.workload == workload]

    def sample(self, stride: int) -> "CrashPlan":
        """Every ``stride``-th point (the smoke subset), preserving
        workload interleaving by sampling per workload."""
        if stride <= 1:
            return CrashPlan(list(self.points))
        sampled: list[CrashPoint] = []
        by_workload: dict[str, int] = {}
        for point in self.points:
            index = by_workload.get(point.workload, 0)
            by_workload[point.workload] = index + 1
            if index % stride == 0:
                sampled.append(point)
        return CrashPlan(sampled)


def torn_cuts(nbytes: int, header_cuts: tuple[int, ...] = HEADER_CUTS) -> list[int]:
    """The cut buckets for one flush of ``nbytes``: header slices plus
    mid-payload and one-byte-short tears."""
    if nbytes <= 1:
        return []
    cuts = {cut for cut in header_cuts if cut < nbytes}
    cuts.add(nbytes // 2)
    cuts.add(nbytes - 1)
    return sorted(cut for cut in cuts if 1 <= cut <= nbytes - 1)


def points_from_journal(
    workload: str,
    journal: list[SiteHit],
    header_cuts: tuple[int, ...] = HEADER_CUTS,
    torn_stride: int = 1,
) -> list[CrashPoint]:
    """Derive single-spec crash points from a golden run's journal.

    ``torn_stride`` keeps every plain point but only tears every N-th
    flush (flushes dominate the point count; the stride trades coverage
    for sweep time without touching the force/checkpoint boundaries).
    """
    points: list[CrashPoint] = []
    flush_index = 0
    for hit in journal:
        if hit.nbytes is None:
            points.append(
                CrashPoint(workload, (CrashSpec(hit.site, hit.occurrence),))
            )
            continue
        flush_index += 1
        if (flush_index - 1) % torn_stride != 0:
            continue
        for cut in torn_cuts(hit.nbytes, header_cuts):
            points.append(
                CrashPoint(
                    workload,
                    (CrashSpec(hit.site, hit.occurrence, cut),),
                )
            )
    return points


def composite_points(
    workload: str,
    base: CrashSpec,
    armed_journal: list[SiteHit],
) -> list[CrashPoint]:
    """Crash-during-recovery points: ``base`` crashes the workload, and
    each ``recovery.*`` hit journaled while that crash was being
    repaired becomes a second trigger."""
    points: list[CrashPoint] = []
    for hit in armed_journal:
        if hit.site.startswith("recovery."):
            points.append(
                CrashPoint(
                    workload,
                    (base, CrashSpec(hit.site, hit.occurrence)),
                )
            )
    return points
