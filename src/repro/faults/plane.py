"""The fault plane: named crash sites and deterministic crash triggers.

Durability-relevant boundaries in the runtime call :func:`site_hit` (or
:func:`flush_cut` for torn stable-store writes) with a stable site name.
With no plane installed both are free no-ops, so instrumented production
code pays one module-global check per site.

An installed :class:`FaultPlane` counts every hit per site.  In *record*
mode it journals each hit, which is how a golden run discovers the crash
points a workload passes through.  In *armed* mode it carries an ordered
sequence of :class:`CrashSpec` triggers: when the next spec's (site,
occurrence) matches the current hit, the plane raises
:class:`~repro.errors.CrashSignal` (or, for a torn-write spec, returns
the byte cut for the stable file to tear at).  Occurrence counts are
global since the plane was installed, so the same workload driven twice
through the same plane state crashes at the same instant — the
simulation is deterministic end to end.

A spec sequence longer than one implements crash-during-recovery: the
first spec crashes the workload, and the next one fires at a recovery
pass boundary while the first crash is being repaired.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import CrashSignal


@dataclass(frozen=True)
class CrashSpec:
    """One trigger: crash at the ``occurrence``-th hit of ``site``.

    ``cut`` selects the torn-write flavour: instead of crashing *at* the
    site, the stable-store append underneath it persists only ``cut``
    bytes.  ``cut`` is clamped to the actual write size by the caller.
    """

    site: str
    occurrence: int
    cut: int | None = None

    def render(self) -> str:
        base = f"{self.site}@{self.occurrence}"
        return base if self.cut is None else f"{base}+{self.cut}B"

    @classmethod
    def parse(cls, text: str) -> "CrashSpec":
        cut: int | None = None
        if "+" in text:
            text, cut_text = text.rsplit("+", 1)
            if not cut_text.endswith("B"):
                raise ValueError(f"bad cut suffix in crash spec {text!r}")
            cut = int(cut_text[:-1])
        site, _, occurrence = text.rpartition("@")
        if not site:
            raise ValueError(f"crash spec {text!r} missing '@occurrence'")
        return cls(site, int(occurrence), cut)


@dataclass(frozen=True)
class SiteHit:
    """One journaled site crossing (record mode)."""

    site: str
    occurrence: int
    nbytes: int | None = None  # flush sites record the write size


@dataclass
class FaultPlane:
    """Deterministic crash-site counter / trigger (see module docs)."""

    specs: tuple[CrashSpec, ...] = ()
    record: bool = False
    _counts: dict[str, int] = field(default_factory=dict)
    _spec_index: int = 0
    journal: list[SiteHit] = field(default_factory=list)
    fired: list[CrashSpec] = field(default_factory=list)
    _runtime: object = None

    def bind(self, runtime) -> None:
        """Attach the runtime so crash signals can name their process."""
        self._runtime = runtime

    # ------------------------------------------------------------------
    def _bump(self, site: str, nbytes: int | None = None) -> int:
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        if self.record:
            self.journal.append(SiteHit(site, count, nbytes))
        return count

    def _next_spec(self) -> CrashSpec | None:
        if self._spec_index < len(self.specs):
            return self.specs[self._spec_index]
        return None

    def _resolve_process(self, process_name: str | None):
        """Find the live process behind a site's process name.  Sites
        inside the log manager use its machine-qualified name
        (``<machine>-<process>``); runtime-level sites use the bare
        process name — match either."""
        if process_name is None or self._runtime is None:
            return None
        for process in self._runtime.processes():
            if process.name == process_name:
                return process
            streams = getattr(process, "streams", None)
            if streams is None:
                if process.log.process_name == process_name:
                    return process
            elif any(
                stream.log.process_name == process_name
                for stream in streams
            ):
                # Sharded logging: each extra stream's machine-qualified
                # name (``…@shard``) is its own fault-site namespace.
                return process
        return None

    def _fire(self, spec: CrashSpec, process_name: str | None) -> CrashSignal:
        self._spec_index += 1
        self.fired.append(spec)
        signal = CrashSignal(process_name or "<queued>", spec.render())
        signal.process = self._resolve_process(process_name)
        return signal

    # ------------------------------------------------------------------
    def hit(self, site: str, process_name: str | None = None) -> None:
        """Cross a plain crash site; raises CrashSignal when armed."""
        count = self._bump(site)
        spec = self._next_spec()
        if (
            spec is not None
            and spec.cut is None
            and spec.site == site
            and spec.occurrence == count
        ):
            raise self._fire(spec, process_name)

    def flush_cut(
        self, site: str, nbytes: int, process_name: str | None = None
    ) -> int | None:
        """Cross a stable-store flush of ``nbytes``.

        Returns the byte cut to tear the write at when an armed
        torn-write spec matches, else ``None``.  The caller arms the
        stable file, performs the append, and converts the resulting
        :class:`~repro.errors.PartialWriteError` via
        :meth:`torn_signal`.
        """
        count = self._bump(site, nbytes)
        spec = self._next_spec()
        if (
            spec is not None
            and spec.cut is not None
            and spec.site == site
            and spec.occurrence == count
        ):
            self._spec_index += 1
            self.fired.append(spec)
            # A cut of nbytes or more would be a complete write; keep the
            # tear strictly inside the payload.
            return max(1, min(spec.cut, nbytes - 1)) if nbytes > 1 else 0

    def torn_signal(self, site: str, process_name: str | None = None):
        """Build the crash signal that follows a torn flush."""
        spec = self.fired[-1] if self.fired else CrashSpec(site, 0, 0)
        signal = CrashSignal(process_name or "<queued>", spec.render())
        signal.process = self._resolve_process(process_name)
        return signal

    @property
    def exhausted(self) -> bool:
        """True when every armed spec has fired."""
        return self._spec_index >= len(self.specs)


# ----------------------------------------------------------------------
# module-global installation
# ----------------------------------------------------------------------
_PLANE: FaultPlane | None = None


def install_plane(plane: FaultPlane) -> FaultPlane:
    global _PLANE
    _PLANE = plane
    return plane


def uninstall_plane() -> None:
    global _PLANE
    _PLANE = None


def active_plane() -> FaultPlane | None:
    return _PLANE


@contextmanager
def installed(plane: FaultPlane) -> Iterator[FaultPlane]:
    install_plane(plane)
    try:
        yield plane
    finally:
        uninstall_plane()


def site_hit(site: str, process_name: str | None = None) -> None:
    """Instrumentation hook: no-op unless a plane is installed."""
    if _PLANE is not None:
        _PLANE.hit(site, process_name)


def flush_cut(
    site: str, nbytes: int, process_name: str | None = None
) -> int | None:
    """Instrumentation hook for stable flush sites; see
    :meth:`FaultPlane.flush_cut`."""
    if _PLANE is not None:
        return _PLANE.flush_cut(site, nbytes, process_name)
    return None


def torn_signal(site: str, process_name: str | None = None):
    """The crash signal following a torn flush, or ``None`` when no
    plane is installed (direct use of ``arm_partial_write`` in tests)."""
    if _PLANE is None:
        return None
    return _PLANE.torn_signal(site, process_name)
