"""``repro-faults``: the crash-point sweep's command line.

Subcommands:

* ``sweep`` — discover every crash point and run the full sweep (or a
  sampled smoke subset with ``--stride``/``--torn-stride``); prints one
  line per failure and exits non-zero if any point fails.
* ``list`` — discover and print the crash plan without running it.
* ``run POINT_ID [...]`` — re-execute specific schedules by ID (the
  round trip for reproducing a failure from a sweep report line).
"""

from __future__ import annotations

import argparse
import sys
import time

from .plan import CrashPoint
from .sweep import discover_plan, run_point, run_sweep
from .workloads import WORKLOADS


def _print_failures(result) -> None:
    for point in result.failed:
        for failure in point.failures:
            print(f"FAIL {point.point_id}: {failure}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    started = time.monotonic()
    last_note = [started]

    def progress(index: int, total: int, point_result) -> None:
        now = time.monotonic()
        if not point_result.ok:
            print(f"FAIL {point_result.point_id}")
        elif args.verbose or now - last_note[0] >= 5.0:
            print(f"  [{index + 1}/{total}] {point_result.point_id}")
            last_note[0] = now

    result = run_sweep(
        workloads=args.workloads or None,
        torn_stride=args.torn_stride,
        composites=not args.no_composites,
        stride=args.stride,
        progress=progress,
    )
    elapsed = time.monotonic() - started
    _print_failures(result)
    verdict = "ok" if result.ok else f"{len(result.failed)} FAILED"
    print(
        f"{len(result.results)} points swept in {elapsed:.1f}s: {verdict}"
    )
    return 0 if result.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    plan, __ = discover_plan(
        workloads=args.workloads or None,
        torn_stride=args.torn_stride,
        composites=not args.no_composites,
    )
    sampled = plan.sample(args.stride)
    for point in sampled:
        print(point.point_id)
    print(f"{len(sampled)} points", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        points = [CrashPoint.parse(point_id) for point_id in args.points]
    except ValueError as exc:
        print(f"repro-faults: {exc}", file=sys.stderr)
        return 2
    unknown = {p.workload for p in points} - set(WORKLOADS)
    if unknown:
        print(
            f"repro-faults: unknown workload(s) {sorted(unknown)}; "
            f"known: {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    golden = {
        name: WORKLOADS[name]()
        for name in sorted({p.workload for p in points})
    }
    failed = 0
    for point in points:
        result = run_point(point, golden[point.workload])
        if result.ok:
            print(f"ok   {point.point_id} (retries={result.retries})")
        else:
            failed += 1
            for failure in result.failures:
                print(f"FAIL {point.point_id}: {failure}")
    return 0 if not failed else 1


def _add_plan_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        dest="workloads",
        action="append",
        choices=sorted(WORKLOADS),
        help="limit to this workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--torn-stride",
        type=int,
        default=1,
        metavar="N",
        help="tear only every N-th flush (default 1: every flush)",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1,
        metavar="N",
        help="run every N-th point per workload (default 1: all)",
    )
    parser.add_argument(
        "--no-composites",
        action="store_true",
        help="skip crash-during-recovery composite points",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic crash-point sweep over the Phoenix "
        "recovery protocols",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep_parser = sub.add_parser("sweep", help="run the sweep")
    _add_plan_options(sweep_parser)
    sweep_parser.add_argument(
        "-v", "--verbose", action="store_true", help="print every point"
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    list_parser = sub.add_parser("list", help="print the crash plan")
    _add_plan_options(list_parser)
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="re-execute specific crash points by ID"
    )
    run_parser.add_argument(
        "points",
        nargs="+",
        metavar="POINT_ID",
        help="e.g. 'bookstore:log.force.after:beta-bookstore-app@4'",
    )
    run_parser.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
