"""Deterministic concurrent-session scheduling and group commit.

See :mod:`repro.concurrency.scheduler` for the scheduling model and
:mod:`repro.concurrency.bench` for the concurrent-throughput experiment
(``benchmarks/bench_concurrent_throughput.py`` drives it).  Running the
package (``python -m repro.concurrency``) executes the same-seed
determinism check that ``make concurrency`` wires into CI.
"""

from .scheduler import DeterministicScheduler, GroupCommitBatch, SchedulerAbort

__all__ = [
    "DeterministicScheduler",
    "GroupCommitBatch",
    "SchedulerAbort",
]
