"""Deterministic concurrent-session scheduling and group commit.

See :mod:`repro.concurrency.scheduler` for the scheduling model and
:mod:`repro.concurrency.bench` for the concurrent-throughput experiment
(``benchmarks/bench_concurrent_throughput.py`` drives it).  Running the
package (``python -m repro.concurrency``) executes the same-seed
determinism check that ``make concurrency`` wires into CI.
"""

from .policies import (
    ControlledPolicy,
    ReplayPolicy,
    ScheduleDivergenceError,
    SchedulePolicy,
    ScheduleStep,
    SeededRandomPolicy,
)
from .scheduler import DeterministicScheduler, GroupCommitBatch, SchedulerAbort
from .tags import YIELD_TAGS, covered_site_families, validate_tag

__all__ = [
    "ControlledPolicy",
    "DeterministicScheduler",
    "GroupCommitBatch",
    "ReplayPolicy",
    "ScheduleDivergenceError",
    "SchedulePolicy",
    "ScheduleStep",
    "SchedulerAbort",
    "SeededRandomPolicy",
    "YIELD_TAGS",
    "covered_site_families",
    "validate_tag",
]
