"""Schedule-space model checking: stateless DPOR over yield points.

The deterministic scheduler makes exactly one nondeterministic decision
— which READY session resumes at each yield point — so the space of
behaviours a concurrent workload can exhibit *is* the space of choice
sequences.  This module explores that space exhaustively (up to
Mazurkiewicz equivalence) with stateless dynamic partial-order
reduction in the style of Flanagan & Godefroid:

1. Run the workload under a :class:`ControlledPolicy` — a forced choice
   prefix, then smallest-READY-first — recording every
   :class:`ScheduleStep` with its *footprint* (the process names whose
   log or state the step touched).
2. Two steps of different sessions are **dependent** iff their
   footprints intersect; dependent ∪ same-session edges generate the
   happens-before relation of the run.  For every *race* — a dependent
   pair with no intervening happens-before chain — add the later
   session to the **backtrack set** of the node where the earlier step
   was chosen (or every enabled session when it was not yet enabled
   there).
3. Depth-first: re-run from the deepest node with an untried backtrack
   choice, truncating the node stack below it.  **Sleep sets** prune
   re-exploration: a fully-explored sibling choice stays asleep down
   the new branch until a step's footprint intersects its own.

Every explored schedule runs the full conformance oracle
(TRC101–TRC108 via :func:`check_runtime`); a violating or crashing
schedule is reported as a replayable SCHEDULE_ID which
``repro-explore run <SCHEDULE_ID>`` reproduces byte-identically (same
stable logs, same traces, same clock).  Exploration composes with
armed crash points: the one-shot :class:`CrashSpec` re-fires at the
same step of every re-run, so the explorer enumerates *schedules
around the crash*.

The built-in workload (``ledger``) is deliberately small: N sessions,
each incrementing a private counter on its own process and posting to
one shared ledger process.  Private steps commute (disjoint
footprints); only the shared-ledger touches conflict, so DPOR
collapses the exponential interleaving space to the few orders of the
shared operations — the pruning ratio the smoke target asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core import PersistentComponent, PhoenixRuntime, persistent
from ..core.config import RuntimeConfig
from ..errors import ComponentUnavailableError, RecoveryError
from ..faults.plane import CrashSpec, FaultPlane, installed
from .policies import ControlledPolicy, ReplayPolicy, ScheduleStep
from .scheduler import DeterministicScheduler

#: Driver retry budget per step, mirroring the sweep workloads.
MAX_ATTEMPTS = 30

#: Base-36 digits used to encode choice sequences in SCHEDULE_IDs.
_B36 = "0123456789abcdefghijklmnopqrstuvwxyz"


# ----------------------------------------------------------------------
# the explore workload
# ----------------------------------------------------------------------
@persistent
class SharedLedger(PersistentComponent):
    """The one component every session touches: the conflict source."""

    def __init__(self):
        self.entries: list = []

    def post(self, who: str, amount: int) -> int:
        self.entries.append((who, amount))
        return len(self.entries)


@persistent
class PrivateCounter(PersistentComponent):
    """Per-session state on a per-session process: commutes with
    everything except its own process."""

    def __init__(self):
        self.count = 0

    def increment(self) -> int:
        self.count += 1
        return self.count


@dataclass
class RunResult:
    """One schedule's complete observable outcome."""

    choices: list[int]
    steps: list[ScheduleStep]
    replies: object
    violations: list[str]
    fingerprint: dict[str, bytes]
    fired: list[str]
    error: str | None = None
    #: Site-hit journal (record mode only) — crash-sweep composition
    #: derives its armed specs from this.
    journal: list = field(default_factory=list)


def _run_ledger(
    config: RuntimeConfig,
    n_sessions: int,
    policy,
    specs: tuple[CrashSpec, ...] = (),
    record: bool = False,
) -> RunResult:
    """The ledger script under an arbitrary runtime config (shared by
    the registered workload variants below)."""
    from ..analysis.trace_check import check_runtime
    from ..faults.workloads import (
        _determinism_fingerprint,
        _ensure_all_recovered,
    )

    runtime = PhoenixRuntime(config=config)
    runtime.external_client_machine = "alpha"
    shared_process = runtime.spawn_process("shared", machine="beta")
    ledger = shared_process.create_component(SharedLedger)
    counters = []
    for index in range(n_sessions):
        process = runtime.spawn_process(f"private-{index}", machine="beta")
        counters.append(process.create_component(PrivateCounter))

    def make_session(index: int):
        counter = counters[index]
        # Conflicting call first, commuting calls after: races stay
        # near the root of the schedule tree (cheap to reverse), while
        # the private suffix is where naive enumeration goes
        # exponential and DPOR prunes.
        calls = (
            lambda: ledger.post(f"s{index}", index),
            lambda: counter.increment(),
            lambda: counter.increment(),
        )

        def session() -> list:
            replies = []
            for call in calls:
                for __ in range(MAX_ATTEMPTS):
                    try:
                        replies.append(call())
                        break
                    except (ComponentUnavailableError, ConnectionError):
                        continue
                else:
                    raise RecoveryError(
                        f"ledger session {index} exhausted {MAX_ATTEMPTS} "
                        f"attempts (specs={specs!r})"
                    )
            return replies

        return session

    plane = FaultPlane(specs=tuple(specs), record=record)
    plane.bind(runtime)
    scheduler = DeterministicScheduler(runtime, policy=policy)
    error: str | None = None
    replies: object = None
    with installed(plane):
        try:
            replies = scheduler.run(
                [make_session(i) for i in range(n_sessions)]
            )
            _ensure_all_recovered(runtime)
        except Exception as exc:  # a counterexample, not an abort
            error = f"{type(exc).__name__}: {exc}"
    violations = [
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    ]
    # Non-recording policies (the seeded default) have no step log;
    # exploration and replay always use a recording policy.
    steps = list(getattr(policy, "steps", ()))
    return RunResult(
        choices=[step.chosen for step in steps],
        steps=steps,
        replies=replies,
        violations=violations,
        fingerprint=_determinism_fingerprint(runtime),
        fired=[spec.render() for spec in plane.fired],
        error=error,
        journal=list(plane.journal),
    )


def run_ledger(
    n_sessions: int,
    policy,
    specs: tuple[CrashSpec, ...] = (),
    record: bool = False,
) -> RunResult:
    """N external sessions, each: private increment, shared post,
    private increment.  Group commit stays off — the batch window
    couples otherwise-independent sessions through the simulated
    clock, which would make *every* pair of steps dependent and
    DPOR-pointless."""
    return _run_ledger(
        RuntimeConfig.optimized(group_commit=False),
        n_sessions, policy, specs=specs, record=record,
    )


def run_ledger_pipelined(
    n_sessions: int,
    policy,
    specs: tuple[CrashSpec, ...] = (),
    record: bool = False,
) -> RunResult:
    """The same script under ``pipelined_commit`` with a zero-width
    batch window: batches close the moment their leader blocks, so no
    simulated-clock sleep ever couples otherwise-independent sessions
    (footprint-based dependence stays sound), while the causal commit
    points, the gated sends, and the ``log.submit`` in-flight state all
    enter the explored space."""
    return _run_ledger(
        RuntimeConfig.optimized(
            group_commit=False,
            pipelined_commit=True,
            group_commit_window_ms=0.0,
        ),
        n_sessions, policy, specs=specs, record=record,
    )


#: Registry of explorable workloads (name -> callable with the
#: ``run_ledger`` signature).  SCHEDULE_IDs embed the registry key.
EXPLORE_WORKLOADS: dict[str, Callable[..., RunResult]] = {
    "ledger": run_ledger,
    "ledger-pipelined": run_ledger_pipelined,
}


def derive_crash_specs(
    workload: str = "ledger", n_sessions: int = 2, limit: int = 3
) -> list[CrashSpec]:
    """Golden-run the workload with a recording plane and pick a spread
    of durability-boundary crash points to compose with exploration."""
    run = EXPLORE_WORKLOADS[workload](
        n_sessions, ControlledPolicy([]), record=True
    )
    hits = [
        hit for hit in run.journal
        if hit.site.startswith("log.force.before:")
    ]
    if not hits or limit <= 0:
        return []
    stride = max(1, len(hits) // limit)
    picked = hits[::stride][:limit]
    return [CrashSpec(hit.site, hit.occurrence) for hit in picked]


# ----------------------------------------------------------------------
# SCHEDULE_IDs
# ----------------------------------------------------------------------
def encode_schedule_id(
    workload: str,
    n_sessions: int,
    choices: Sequence[int],
    specs: Sequence[CrashSpec] = (),
) -> str:
    """``phxsched|v1|<workload>|n<N>[|crash=spec,...]|<choices>`` with
    one base-36 digit per scheduling choice."""
    if any(c < 0 or c >= len(_B36) for c in choices):
        raise ValueError("session index out of base-36 digit range")
    payload = "".join(_B36[c] for c in choices) or "-"
    parts = ["phxsched", "v1", workload, f"n{n_sessions}"]
    if specs:
        parts.append("crash=" + ",".join(spec.render() for spec in specs))
    parts.append(payload)
    return "|".join(parts)


def decode_schedule_id(
    schedule_id: str,
) -> tuple[str, int, tuple[CrashSpec, ...], list[int]]:
    parts = schedule_id.split("|")
    if len(parts) < 5 or parts[0] != "phxsched" or parts[1] != "v1":
        raise ValueError(f"not a v1 SCHEDULE_ID: {schedule_id!r}")
    workload, n_text = parts[2], parts[3]
    if workload not in EXPLORE_WORKLOADS:
        raise ValueError(f"unknown explore workload {workload!r}")
    if not n_text.startswith("n"):
        raise ValueError(f"bad session-count field {n_text!r}")
    n_sessions = int(n_text[1:])
    specs: tuple[CrashSpec, ...] = ()
    rest = parts[4:]
    if rest[0].startswith("crash="):
        specs = tuple(
            CrashSpec.parse(text)
            for text in rest[0][len("crash="):].split(",")
        )
        rest = rest[1:]
    if len(rest) != 1:
        raise ValueError(f"malformed SCHEDULE_ID {schedule_id!r}")
    payload = rest[0]
    choices = [] if payload == "-" else [_B36.index(ch) for ch in payload]
    return workload, n_sessions, specs, choices


def run_schedule(schedule_id: str) -> RunResult:
    """Re-execute one explored schedule exactly (ReplayPolicy)."""
    workload, n_sessions, specs, choices = decode_schedule_id(schedule_id)
    policy = ReplayPolicy(choices)
    return EXPLORE_WORKLOADS[workload](n_sessions, policy, specs=specs)


def verify_schedule(schedule_id: str) -> tuple[RunResult, list[str]]:
    """Run a SCHEDULE_ID twice; return the first run and the keys of
    any fingerprint artifacts that differ (empty = byte-identical)."""
    first = run_schedule(schedule_id)
    second = run_schedule(schedule_id)
    keys = sorted(set(first.fingerprint) | set(second.fingerprint))
    diverged = [
        key
        for key in keys
        if first.fingerprint.get(key) != second.fingerprint.get(key)
    ]
    if first.choices != second.choices:
        diverged.append("choices")
    return first, diverged


# ----------------------------------------------------------------------
# the DPOR explorer
# ----------------------------------------------------------------------
@dataclass
class _Node:
    """One decision point on the current DFS path."""

    enabled: tuple[int, ...]
    #: choice -> footprint of the step it produced (explored subtrees).
    done: dict[int, frozenset] = field(default_factory=dict)
    #: sessions worth trying here (race analysis writes these).
    backtrack: set[int] = field(default_factory=set)
    #: fully-explored sibling choices still commuting with everything
    #: since their node: re-running them reproduces a seen schedule.
    sleep: dict[int, frozenset] = field(default_factory=dict)

    def candidates(self) -> list[int]:
        return sorted(
            c for c in self.backtrack
            if c not in self.done and c not in self.sleep
        )


@dataclass
class Counterexample:
    schedule_id: str
    violations: list[str]
    error: str | None


@dataclass
class ExploreResult:
    workload: str
    n_sessions: int
    specs: tuple[CrashSpec, ...]
    naive: bool
    #: schedules actually executed.
    schedules: int = 0
    #: True when the (reduced) space was exhausted within budget.
    complete: bool = False
    max_depth: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples


def _happens_before_masks(steps: list[ScheduleStep]) -> list[int]:
    """masks[i] = bitmask of steps happens-before step i (transitive
    closure of program order ∪ footprint dependence)."""
    masks = [0] * len(steps)
    for i, step in enumerate(steps):
        mask = 0
        for j in range(i):
            prior = steps[j]
            if prior.chosen == step.chosen or (prior.touched & step.touched):
                mask |= masks[j] | (1 << j)
        masks[i] = mask
    return masks


def _update_backtracks(steps: list[ScheduleStep], nodes: list[_Node]) -> None:
    """Flanagan–Godefroid race analysis over one recorded run: for
    every *immediate* racing pair (j, i) — dependent, different
    sessions, no happens-before chain through an intermediate step —
    schedule the later session for exploration at the earlier node."""
    masks = _happens_before_masks(steps)
    for i, step in enumerate(steps):
        for j in range(i):
            prior = steps[j]
            if prior.chosen == step.chosen:
                continue
            if not (prior.touched & step.touched):
                continue
            immediate = True
            for k in range(j + 1, i):
                if (masks[k] >> j) & 1 and (masks[i] >> k) & 1:
                    immediate = False
                    break
            if not immediate:
                continue
            node = nodes[j]
            if step.chosen in node.enabled:
                node.backtrack.add(step.chosen)
            else:
                node.backtrack.update(node.enabled)


def _child_sleep(parent: _Node, taken: int, footprint: frozenset) -> dict:
    """Sleep-set propagation: siblings already fully explored at the
    parent stay asleep below iff the parent's step commutes with them
    (footprint-disjoint).  Entries with an unknown (empty-from-error)
    footprint are conservatively dropped — woken, never pruned."""
    sleep: dict[int, frozenset] = {}
    inherited = dict(parent.sleep)
    for choice, fp in parent.done.items():
        if choice != taken:
            inherited[choice] = fp
    for choice, fp in inherited.items():
        if choice == taken:
            continue
        if fp and not (fp & footprint):
            sleep[choice] = fp
    return sleep


def explore(
    workload: str = "ledger",
    n_sessions: int = 2,
    specs: tuple[CrashSpec, ...] = (),
    max_schedules: int = 1000,
    naive: bool = False,
    stop_on_violation: bool = True,
    log: Callable[[str], None] | None = None,
) -> ExploreResult:
    """Depth-first schedule exploration with DPOR (or, with ``naive``,
    full enumeration of the interleaving tree for ratio comparison)."""
    run_workload = EXPLORE_WORKLOADS[workload]
    result = ExploreResult(
        workload=workload, n_sessions=n_sessions, specs=tuple(specs),
        naive=naive,
    )
    nodes: list[_Node] = []
    prefix: list[int] = []
    while result.schedules < max_schedules:
        policy = ControlledPolicy(prefix)
        run = run_workload(n_sessions, policy, specs=specs)
        result.schedules += 1
        steps = run.steps
        result.max_depth = max(result.max_depth, len(steps))
        if run.violations or run.error:
            result.counterexamples.append(Counterexample(
                schedule_id=encode_schedule_id(
                    workload, n_sessions, run.choices, specs
                ),
                violations=run.violations,
                error=run.error,
            ))
            if log is not None:
                log(
                    f"counterexample at schedule {result.schedules}: "
                    f"{run.violations or run.error}"
                )
            if stop_on_violation:
                return result
        # Grow the node stack along this run and mark taken choices.
        for depth, step in enumerate(steps):
            if depth == len(nodes):
                if depth == 0:
                    sleep: dict[int, frozenset] = {}
                else:
                    sleep = _child_sleep(
                        nodes[depth - 1],
                        steps[depth - 1].chosen,
                        steps[depth - 1].touched,
                    )
                nodes.append(_Node(enabled=step.enabled, sleep=sleep))
            node = nodes[depth]
            # An errored run may stop mid-step; record what we saw so
            # the choice is not retried forever (unknown footprint =
            # frozenset(), which sleep handling treats conservatively).
            node.done[step.chosen] = step.touched
            if naive:
                node.backtrack.update(step.enabled)
        if len(steps) < len(nodes):
            del nodes[len(steps):]
        if not naive:
            _update_backtracks(steps, nodes)
        # Deepest node with an untried, non-sleeping backtrack choice.
        depth = len(nodes) - 1
        next_choice: int | None = None
        while depth >= 0:
            candidates = nodes[depth].candidates()
            if candidates:
                next_choice = candidates[0]
                break
            depth -= 1
        if next_choice is None:
            result.complete = True
            return result
        prefix = [step.chosen for step in steps[:depth]] + [next_choice]
        del nodes[depth + 1:]
    return result
