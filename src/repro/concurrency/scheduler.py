"""Deterministic cooperative scheduling of N client sessions.

The runtime is single-threaded by construction: every simulated cost is
charged on one shared clock and every data structure assumes one call
chain at a time.  This module adds concurrency *without* giving up
determinism: each session runs on a real thread, but a turnstile
guarantees exactly one thread is ever runnable, and the session to
resume next is delegated to a pluggable :class:`SchedulePolicy`
(``policies.py``) — by default a seeded uniform draw over the READY
set.  Two runs with the same seed (and the same session programs)
therefore interleave identically — byte-identical logs, traces and
clocks.  ``ReplayPolicy`` replays an explicit choice sequence, and the
schedule explorer (``explore.py``) drives the same hook to enumerate
the reduced schedule space systematically.

The scheduler also maintains a **vector clock** per session — ticked at
every yield point, merged across the runtime's real synchronisation
edges (context admission, group-commit batches, ``spawn``) — which the
trace checker's causal invariants TRC107/TRC108 read via
``current_vc()`` (docs/internals.md section 13).

Sessions switch only at explicit *yield points*, which the runtime
places at every durability and network boundary:

* ``log.append:<process>``  — before a record enters the log buffer;
* ``log.force:<process>``   — after a force (and its disk write) completed;
* ``net.request:<process>`` — after the request message was transmitted;
* ``net.reply:<process>``   — after the reply was transmitted, before it
  is returned to the caller.

Between a session's append and the force that makes it stable there is
deliberately *no* yield: the append+force pair is the unit the paper's
commit conditions reason about.

The scheduler also implements **group commit** (``config.group_commit``):
force requests arriving within one disk-rotation window on the same
process log join a shared :class:`GroupCommitBatch` and are satisfied by
a single stable-store write, performed by the batch's first waiter (the
leader) once the window closes.

Crash handling: a session suspended inside a process that another
session crashes is a *ghost* of a dead incarnation.  Each session keeps
a stack of ``(process, crash_count)`` frames; on resume, a mismatch on
the innermost frame raises a fresh :class:`CrashSignal` marked
``stale=True`` — the process-boundary conversion in the runtime turns it
into :class:`ComponentUnavailableError` *without* re-crashing the (by
then possibly recovered) process.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from ..analysis import vector_clock
from ..errors import CrashSignal, InvariantViolationError
from .policies import SchedulePolicy, ScheduleStep, SeededRandomPolicy
from .tags import YIELD_TAGS, validate_tag

if TYPE_CHECKING:  # pragma: no cover
    from ..core.context import Context
    from ..core.process import AppProcess, ForceCoalescer
    from ..core.runtime import PhoenixRuntime


class SchedulerAbort(BaseException):
    """Injected into suspended sessions when the run is torn down (one
    session failed); derives from BaseException so application handlers
    cannot swallow it."""


_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"


class Session:
    """One client session: a function running on its own (parked) thread."""

    __slots__ = (
        "index", "fn", "state", "event", "thread", "result", "error",
        "predicate", "block_tag", "frames", "system", "step_touches",
    )

    def __init__(self, index: int, fn: Callable[[], object]):
        self.index = index
        self.fn = fn
        self.state = _READY
        self.event = threading.Event()
        self.thread: threading.Thread | None = None
        self.result: object = None
        self.error: BaseException | None = None
        self.predicate: Callable[[], bool] | None = None
        self.block_tag: str | None = None
        #: Spawned by the runtime (e.g. a recovery drain worker) rather
        #: than passed to run(); excluded from run()'s result list.
        self.system = False
        #: (process, crash_count at entry) for every process boundary the
        #: session is currently inside, outermost first.
        self.frames: list[tuple["AppProcess", int]] = []
        #: Process names touched since the last scheduling decision —
        #: the DPOR commutativity footprint of the current step.
        self.step_touches: set[str] = set()

    def __repr__(self) -> str:
        tag = f" at {self.block_tag}" if self.block_tag else ""
        return f"Session(#{self.index}, {self.state}{tag})"


class GroupCommitBatch:
    """One shared in-flight group write against one process's log.

    Two-phase completion: ``closed`` (the window expired; the leader may
    write) then ``done`` (the write finished or failed; riders may
    return).  The leader is the first waiter; riders block on ``done``
    and report ``wrote=False`` exactly like a force whose bytes were
    already flushed by someone else.
    """

    __slots__ = ("coalescer", "deadline", "seq", "waiters", "closed",
                 "done", "error", "vc", "wm", "targets")

    def __init__(
        self, coalescer: "ForceCoalescer", deadline: float, seq: int
    ):
        self.coalescer = coalescer
        self.deadline = deadline
        self.seq = seq
        self.waiters: list[int] = []
        self.closed = False
        self.done = False
        self.error: BaseException | None = None
        #: Joined vector clock of every waiter; merged back into each
        #: waiter when the shared write completes (a sync edge: all
        #: batched records became stable together).
        self.vc: dict[int, int] = {}
        #: Joined durability watermarks, mirroring ``vc`` (pipelined
        #: causal commit; see DeterministicScheduler.note_append).
        self.wm: dict[str, int] = {}
        #: Pipelined mode only: each waiter's commit target — the LSN
        #: the log must be stable through before that waiter's send may
        #: leave.  The leader skips the shared write when an earlier
        #: in-flight write already covered every remaining target.
        self.targets: dict[int, int] = {}


class DeterministicScheduler:
    """Seeded cooperative scheduler over a :class:`PhoenixRuntime`.

    ``run(fns)`` executes the session functions interleaved and returns
    their results in order; the first failing session aborts the rest
    and its error is re-raised.  While a run is active the runtime's
    ``sched_yield`` hooks route into :meth:`yield_point`.
    """

    def __init__(
        self,
        runtime: "PhoenixRuntime",
        seed: int = 0,
        policy: SchedulePolicy | None = None,
    ):
        self.runtime = runtime
        self.clock = runtime.clock
        self.seed = seed
        #: Which READY session runs next is delegated to the policy;
        #: the default reproduces the historical seeded draw exactly.
        self.policy: SchedulePolicy = (
            policy if policy is not None else SeededRandomPolicy(seed)
        )
        self.sessions: list[Session] = []
        self._by_thread: dict[int, Session] = {}
        self._main_event = threading.Event()
        self._abort = False
        self.active = False
        self._batches: dict["ForceCoalescer", GroupCommitBatch] = {}
        self._batch_seq = 0
        self._recovery_drivers: dict["AppProcess", Session | None] = {}
        #: Per-session vector clocks (session index -> live clock),
        #: ticked at yield points, merged across sync edges.
        self._vcs: dict[int, dict[int, int]] = {}
        #: Release-time clock of the last session that served each
        #: context URI; merged into the next acquirer (admission is a
        #: real lock, hence a real happens-before edge).
        self._context_vcs: dict[str, dict[int, int]] = {}
        #: Per-session durability watermarks (pipelined causal commit):
        #: log name -> highest post-append end-LSN the session causally
        #: knows.  Maintained on exactly the same edges as the vector
        #: clocks — own appends via :meth:`note_append`, merges wherever
        #: a clock merges — so a send gated on its watermark is stable
        #: through at least its TRC107 happens-before cone.
        self._wms: dict[int, dict[str, int]] = {}
        self._context_wms: dict[str, dict[str, int]] = {}
        #: Appends that happened before the run started (or outside any
        #: session): totally ordered with every session event, so they
        #: sit in everyone's causal prefix — the watermark analogue of
        #: the trace checker's serial max.
        self._serial_wm: dict[str, int] = {}
        self._step_index = 0
        runtime.scheduler = self

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def current_session(self) -> Session | None:
        """The session owning the calling thread (None on the main
        thread, or before/after a run)."""
        return self._by_thread.get(threading.get_ident())

    def current_session_id(self) -> int | None:
        session = self.current_session()
        return None if session is None else session.index

    # ------------------------------------------------------------------
    # vector clocks
    # ------------------------------------------------------------------
    def session_clock(self, session: Session) -> dict[int, int]:
        return self._vcs.setdefault(session.index, {})

    def _tick(self, session: Session) -> None:
        vector_clock.tick(self.session_clock(session), session.index)

    def current_vc(self) -> vector_clock.Snapshot | None:
        """Snapshot of the calling session's clock, for TraceEvent.vc;
        None on the main thread or outside a run."""
        session = self.current_session()
        if session is None or not self.active:
            return None
        return vector_clock.snapshot(self.session_clock(session))

    # ------------------------------------------------------------------
    # per-session durability watermarks (pipelined causal commit)
    # ------------------------------------------------------------------
    def session_watermarks(self, session: Session) -> dict[str, int]:
        return self._wms.setdefault(session.index, {})

    def note_append(self, process: "AppProcess", log=None) -> None:
        """Record that the calling session appended to ``process``'s
        log (``log`` names the specific stream under sharded logging —
        watermarks are per-(session, stream) since every stream has its
        own name): its watermark for that log advances to the
        post-append end LSN.  ``vector_clock.merge_into`` is a generic
        pointwise max, so the same helper merges these dicts across
        sync edges."""
        log = process.log if log is None else log
        name = log.process_name
        end = log.end_lsn
        session = self.current_session()
        wm = (
            self._serial_wm
            if session is None
            else self.session_watermarks(session)
        )
        if end > wm.get(name, 0):
            wm[name] = end

    def causal_commit_lsn(
        self, process: "AppProcess", log=None
    ) -> int | None:
        """The calling session's commit target for ``process``'s log
        (``log`` selects the stream under sharded logging): the highest
        LSN in its causal prefix.  Everything the session appended or
        learned of through a sync edge is below it; records of causally
        unrelated sessions are not — exactly the slack TRC107 permits.
        Clamped to ``end_lsn`` (a crash reuses LSNs;
        :meth:`clamp_watermarks` resets the stored entries too)."""
        session = self.current_session()
        if session is None or not self.active:
            return None
        log = process.log if log is None else log
        name = log.process_name
        target = max(
            self.session_watermarks(session).get(name, 0),
            self._serial_wm.get(name, 0),
        )
        return min(target, log.end_lsn)

    def clamp_watermarks(self, process: "AppProcess") -> None:
        """A crash wiped ``process``'s volatile records: every watermark
        entry above the stable boundary points at bytes that no longer
        exist (and whose LSNs will be reused), so clamp them all —
        every stream of the process, each at its own boundary.  Also
        re-run after recovery's tail repair, which can truncate below
        the crash-time boundary."""
        for log in self._process_logs(process):
            name = log.process_name
            bound = log.stable_lsn
            for wm in self._wms.values():
                if wm.get(name, 0) > bound:
                    wm[name] = bound
            for wm in self._context_wms.values():
                if wm.get(name, 0) > bound:
                    wm[name] = bound
            if self._serial_wm.get(name, 0) > bound:
                self._serial_wm[name] = bound

    @staticmethod
    def _process_logs(process: "AppProcess"):
        streams = getattr(process, "streams", None)
        if streams is None:
            return [process.log]
        return [stream.log for stream in streams]

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self, fns: list[Callable[[], object]]) -> list[object]:
        if self.active:
            raise InvariantViolationError("scheduler is already running")
        self.sessions = [Session(i, fn) for i, fn in enumerate(fns)]
        self.active = True
        self._abort = False
        self._vcs = {s.index: {} for s in self.sessions}
        self._context_vcs.clear()
        self._wms = {s.index: {} for s in self.sessions}
        self._context_wms.clear()
        # Everything already in any log happens-before every session
        # event (the main thread never overlaps a run).
        self._serial_wm = {
            log.process_name: log.end_lsn
            for process in self.runtime.processes()
            for log in self._process_logs(process)
        }
        self._step_index = 0
        self.policy.begin_run(self)
        for session in self.sessions:
            thread = threading.Thread(
                target=self._session_body,
                args=(session,),
                name=f"phx-session-{session.index}",
                daemon=True,
            )
            session.thread = thread
            thread.start()
        try:
            self._loop()
        finally:
            self._abort_survivors()
            self.active = False
            self._batches.clear()
            self._recovery_drivers.clear()
            self._by_thread.clear()
            for session in self.sessions:
                if session.thread is not None:
                    session.thread.join(timeout=30)
        for session in self.sessions:
            if session.state == _FAILED and session.error is not None:
                raise session.error
        return [s.result for s in self.sessions if not s.system]

    def _loop(self) -> None:
        while True:
            live = [
                s for s in self.sessions
                if s.state not in (_DONE, _FAILED)
            ]
            if not live:
                return
            self._close_due_batches()
            for session in live:
                if (
                    session.state == _BLOCKED
                    and session.predicate is not None
                    and session.predicate()
                ):
                    session.state = _READY
            ready = [s for s in live if s.state == _READY]
            if not ready:
                # Everyone is blocked.  If a group-commit window is
                # still open, the only missing event is simulated time:
                # sleep to the earliest deadline and re-evaluate.
                if self._sleep_to_next_batch():
                    continue
                raise InvariantViolationError(
                    "scheduler deadlock: all sessions blocked: "
                    + ", ".join(repr(s) for s in live)
                )
            chosen = self.policy.choose(ready, self)
            if chosen not in ready:
                raise InvariantViolationError(
                    f"schedule policy chose non-ready session {chosen!r}"
                )
            park_tag = chosen.block_tag
            self._seed_touches(chosen, park_tag)
            enabled = tuple(s.index for s in ready)
            self._resume(chosen)
            step = ScheduleStep(
                index=self._step_index,
                chosen=chosen.index,
                enabled=enabled,
                touched=frozenset(chosen.step_touches),
                park_tag=park_tag,
                end_tag=chosen.block_tag,
                final_state=chosen.state,
            )
            self._step_index += 1
            chosen.step_touches.clear()
            self.policy.observe(step)
            if chosen.state == _FAILED:
                return

    def _seed_touches(self, session: Session, park_tag: str | None) -> None:
        """A step resumed at a registered yield point re-touches that
        tag's process: the very next action (the append after a
        ``log.append`` park, the delivery after ``net.request``) acts on
        it before any further touch is recorded."""
        if not park_tag:
            return
        family, _, process_name = park_tag.partition(":")
        if process_name and family in YIELD_TAGS:
            session.step_touches.add(process_name)

    def spawn(self, fn: Callable[[], object], name: str = "worker") -> Session:
        """Add a *system* session to the running interleaving (e.g. a
        recovery drain worker).  The new session joins the READY set
        from the next scheduling decision on, participates in the
        seeded draw like any other session, and keeps the run alive
        until it finishes — but its result is not part of ``run()``'s
        return value.  Deterministic: the spawn happens at a fixed
        point in the spawning session's execution, so two same-seed
        runs create it at the identical decision index."""
        if not self.active:
            raise InvariantViolationError(
                "cannot spawn a session outside an active run"
            )
        session = Session(len(self.sessions), fn)
        session.system = True
        # The child starts causally after its spawner: it inherits the
        # spawning session's clock (a copy — independent from here on).
        parent = self.current_session()
        self._vcs[session.index] = (
            dict(self.session_clock(parent)) if parent is not None else {}
        )
        self._wms[session.index] = (
            dict(self.session_watermarks(parent))
            if parent is not None
            else {}
        )
        self.sessions.append(session)
        thread = threading.Thread(
            target=self._session_body,
            args=(session,),
            name=f"phx-session-{session.index}-{name}",
            daemon=True,
        )
        session.thread = thread
        thread.start()
        return session

    def _session_body(self, session: Session) -> None:
        self._by_thread[threading.get_ident()] = session
        session.event.wait()
        session.event.clear()
        try:
            if self._abort:
                raise SchedulerAbort()
            session.result = session.fn()
            session.state = _DONE
        except SchedulerAbort:
            session.state = _DONE
        except BaseException as exc:  # noqa: BLE001 - reported to run()
            session.error = exc
            session.state = _FAILED
        finally:
            self._main_event.set()

    def _resume(self, session: Session) -> None:
        session.state = _RUNNING
        self._main_event.clear()
        session.event.set()
        self._main_event.wait()

    def _switch_to_main(self, session: Session, state: str, tag: str) -> None:
        session.state = state
        session.block_tag = tag
        # Clear our own event BEFORE waking the main thread: the main
        # loop resumes us by setting it, and a clear after that set
        # would swallow the resume.
        session.event.clear()
        self._main_event.set()
        session.event.wait()
        session.event.clear()
        session.block_tag = None
        if self._abort:
            raise SchedulerAbort()

    def _abort_survivors(self) -> None:
        self._abort = True
        for session in self.sessions:
            while session.state not in (_DONE, _FAILED):
                self._resume(session)
        self._abort = False

    # ------------------------------------------------------------------
    # yielding and blocking (called from session threads)
    # ------------------------------------------------------------------
    def yield_point(self, tag: str) -> None:
        """Hand control back to the scheduler; a no-op on the main
        thread and outside an active run.  The tag's family must be
        registered in ``tags.YIELD_TAGS`` — a typo'd tag would silently
        hide a durability boundary from schedule exploration, so it is
        a hard error instead."""
        session = self.current_session()
        if session is None or not self.active:
            return
        try:
            validate_tag(tag)
        except ValueError as exc:
            raise InvariantViolationError(str(exc)) from None
        _family, _, process_name = tag.partition(":")
        if process_name:
            session.step_touches.add(process_name)
        self._tick(session)
        self._switch_to_main(session, _READY, tag)
        self._check_ghost(session)

    def block_until(self, predicate: Callable[[], bool], tag: str) -> None:
        """Suspend until ``predicate()`` holds.  Re-checked after every
        resume: a promoted waiter may lose the race to another session
        (e.g. two sessions waiting on one context claim)."""
        session = self.current_session()
        if session is None or not self.active:
            if not predicate():
                raise InvariantViolationError(
                    f"main thread cannot block (waiting on {tag})"
                )
            return
        while not predicate():
            session.predicate = predicate
            self._tick(session)
            self._switch_to_main(session, _BLOCKED, tag)
            session.predicate = None
            self._check_ghost(session)

    # ------------------------------------------------------------------
    # process frames & ghost detection
    # ------------------------------------------------------------------
    def enter_process(self, process: "AppProcess") -> bool:
        """Record that the current session entered ``process``; returns
        whether a frame was pushed (sessions only)."""
        session = self.current_session()
        if session is None:
            return False
        session.step_touches.add(process.name)
        session.frames.append((process, process.crash_count))
        return True

    def exit_process(self) -> None:
        session = self.current_session()
        if session is not None and session.frames:
            session.frames.pop()

    def _check_ghost(self, session: Session) -> None:
        """Did the process this session is innermost-inside crash while
        it was suspended?  Outer frames are deliberately not checked
        here: an inner call in a live process is allowed to finish (the
        crashed caller's replay will regenerate it with the same call
        ID), and the outer frame's staleness is caught at the next yield
        after the stack pops back to it."""
        if not session.frames:
            return
        process, crash_count = session.frames[-1]
        if process.crash_count != crash_count:
            signal = CrashSignal(process.name, "interleaved crash")
            signal.process = process
            signal.stale = True
            raise signal

    # ------------------------------------------------------------------
    # per-context admission (one serving session per context)
    # ------------------------------------------------------------------
    def acquire_context(self, context: "Context") -> bool:
        """Claim exclusive service of ``context`` for the current
        session; blocks while another session owns it.  Returns True
        when a claim was taken (and must be released); False for main-
        thread callers and same-session nesting (``begin_incoming``
        reports genuine re-entrancy there)."""
        session = self.current_session()
        if session is None or not self.active:
            return False
        session.step_touches.add(context.process.name)
        if context.service_owner == session.index:
            return False
        while context.service_owner is not None:
            self.block_until(
                lambda: context.service_owner is None,
                tag=f"context:{context.uri}",
            )
        context.service_owner = session.index
        # Admission is a real lock: everything the previous serving
        # session did up to its release happens-before this claim.
        released = self._context_vcs.get(context.uri)
        if released:
            vector_clock.merge_into(self.session_clock(session), released)
        released_wm = self._context_wms.get(context.uri)
        if released_wm:
            vector_clock.merge_into(
                self.session_watermarks(session), released_wm
            )
        return True

    def release_context(self, context: "Context") -> None:
        session = self.current_session()
        if session is not None and context.service_owner == session.index:
            # Merge, never overwrite: recovery replay publishes into the
            # stored clock *while* a claim is held (it bypasses
            # admission), and the owner has not necessarily merged that
            # publish — replacing the dict would drop the edge forever.
            vector_clock.merge_into(
                self._context_vcs.setdefault(context.uri, {}),
                self.session_clock(session),
            )
            vector_clock.merge_into(
                self._context_wms.setdefault(context.uri, {}),
                self.session_watermarks(session),
            )
            context.service_owner = None

    def publish_context(self, context: "Context") -> None:
        """Record a release edge on ``context`` outside the admission
        path.  Recovery replay (eager drains and on-demand component
        replay) touches context state without ever claiming it through
        ``acquire_context`` — the recovery marks serialize access
        instead — so the replaying session publishes its clock here and
        the next admission merges it, keeping the happens-before order
        TRC108 checks complete."""
        session = self.current_session()
        if session is None or not self.active:
            return
        vector_clock.merge_into(
            self._context_vcs.setdefault(context.uri, {}),
            self.session_clock(session),
        )
        vector_clock.merge_into(
            self._context_wms.setdefault(context.uri, {}),
            self.session_watermarks(session),
        )

    def merge_context(self, context: "Context") -> None:
        """Record an acquire edge on ``context`` outside the admission
        path: pull the clock the last releaser/publisher stored into
        the current session.  ``drain_context`` consults the per-context
        recovery state as its synchronisation — a caller admitted
        mid-recovery finds the context already drained and relies on
        the drainer's effects, so it must also inherit the drainer's
        clock even though no ``acquire_context`` interleaved."""
        session = self.current_session()
        if session is None or not self.active:
            return
        stored = self._context_vcs.get(context.uri)
        if stored:
            vector_clock.merge_into(self.session_clock(session), stored)
        stored_wm = self._context_wms.get(context.uri)
        if stored_wm:
            vector_clock.merge_into(
                self.session_watermarks(session), stored_wm
            )

    # ------------------------------------------------------------------
    # recovery driving
    # ------------------------------------------------------------------
    @contextmanager
    def driving_recovery(self, process: "AppProcess") -> Iterator[None]:
        """Mark the current session as the one driving ``process``'s
        recovery; other sessions' deliveries to it park until the state
        leaves RECOVERING."""
        session = self.current_session()
        self._recovery_drivers[process] = session
        try:
            yield
        finally:
            if self._recovery_drivers.get(process) is session:
                del self._recovery_drivers[process]

    def recovery_driver(self, process: "AppProcess") -> Session | None:
        return self._recovery_drivers.get(process)

    def is_recovery_driver(self, process: "AppProcess") -> bool:
        return (
            process in self._recovery_drivers
            and self._recovery_drivers[process] is self.current_session()
        )

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def group_force(
        self, coalescer: "ForceCoalescer", commit_lsn: int | None = None
    ) -> bool:
        """Join (or open) the coalescer's group-commit batch.

        The first waiter becomes the leader: it blocks until the window
        closes, then performs the one shared write.  Later waiters are
        riders: they block until the leader finished and return False
        (their bytes rode the shared flush).

        In pipelined mode (``config.pipelined_commit``) the batch
        machinery additionally overlaps: the leader yields once between
        the window closing and the write (``log.submit``), so the next
        batch opens while this one is in flight; a waiter whose commit
        target an earlier in-flight write already covered releases
        immediately instead of waiting for its own batch; and a closed
        batch whose every remaining target is stable skips its write."""
        session = self.current_session()
        if session is None:
            return coalescer.serial_force()
        if coalescer.pipelined:
            return self._pipelined_force(session, coalescer, commit_lsn)
        batch = self._batches.get(coalescer)
        if batch is None or batch.closed:
            self._batch_seq += 1
            batch = GroupCommitBatch(
                coalescer,
                deadline=self.clock.now + coalescer.group_window_ms(),
                seq=self._batch_seq,
            )
            self._batches[coalescer] = batch
            batch.waiters.append(session.index)
            session.step_touches.add(coalescer.process.name)
            vector_clock.merge_into(batch.vc, self.session_clock(session))
            vector_clock.merge_into(
                batch.wm, self.session_watermarks(session)
            )
            try:
                self.block_until(
                    lambda: batch.closed,
                    tag=f"group-commit:{coalescer.log_name}",
                )
                return coalescer.execute_batch(len(batch.waiters) - 1)
            except BaseException as exc:
                batch.error = exc
                raise
            finally:
                batch.done = True
                # The shared write is a sync edge among all waiters.
                vector_clock.merge_into(batch.vc, self.session_clock(session))
                vector_clock.merge_into(self.session_clock(session), batch.vc)
                vector_clock.merge_into(
                    batch.wm, self.session_watermarks(session)
                )
                vector_clock.merge_into(
                    self.session_watermarks(session), batch.wm
                )
                if self._batches.get(coalescer) is batch:
                    del self._batches[coalescer]
        batch.waiters.append(session.index)
        session.step_touches.add(coalescer.process.name)
        vector_clock.merge_into(batch.vc, self.session_clock(session))
        vector_clock.merge_into(batch.wm, self.session_watermarks(session))
        self.block_until(
            lambda: batch.done, tag=f"group-ride:{coalescer.log_name}"
        )
        vector_clock.merge_into(self.session_clock(session), batch.vc)
        vector_clock.merge_into(self.session_watermarks(session), batch.wm)
        if batch.error is not None:
            # The shared write died.  The rider's own ghost check above
            # normally catches the crash first (it holds a frame for the
            # same process); cover direct callers with a stale signal so
            # the boundary converts without re-crashing the process.
            signal = CrashSignal(coalescer.log_name, "group-commit write")
            signal.process = coalescer.process
            signal.stale = True
            raise signal
        return False

    def _pipelined_force(
        self,
        session: Session,
        coalescer: "ForceCoalescer",
        commit_lsn: int | None,
    ) -> bool:
        """Pipelined batch semantics.  Clock merges here are deliberate:
        a waiter does NOT merge into the batch clock at join time — an
        early-released waiter never synchronized with the batch, and a
        join-time merge would forge a happens-before edge that could
        hide a real TRC108 race.  Instead the leader joins the remaining
        waiters' clocks at write time, and only waiters that stayed for
        the write merge the batch clock back."""
        log_name = coalescer.log_name
        target = (
            commit_lsn if commit_lsn is not None else coalescer.end_lsn
        )
        batch = self._batches.get(coalescer)
        if batch is None or batch.closed:
            self._batch_seq += 1
            batch = GroupCommitBatch(
                coalescer,
                deadline=self.clock.now + coalescer.group_window_ms(),
                seq=self._batch_seq,
            )
            self._batches[coalescer] = batch
            batch.waiters.append(session.index)
            batch.targets[session.index] = target
            session.step_touches.add(coalescer.process.name)
            try:
                self.block_until(
                    lambda: batch.closed or (
                        len(batch.waiters) == 1
                        and coalescer.stable_lsn >= target
                    ),
                    tag=f"group-commit:{log_name}",
                )
                if not batch.closed:
                    # An earlier in-flight write covered our causal
                    # prefix and nobody joined: cancel the batch.
                    batch.waiters.remove(session.index)
                    coalescer.note_gated()
                    return False
                # The window closed; the write is now in flight.  Yield
                # before performing it so other sessions can open (and
                # even close) the next batch underneath it.
                self.yield_point(f"log.submit:{log_name}")
                riders = len(batch.waiters) - 1
                for index in batch.waiters:
                    vector_clock.merge_into(batch.vc, self._vcs[index])
                    vector_clock.merge_into(
                        batch.wm, self._wms.setdefault(index, {})
                    )
                needed = max(
                    batch.targets[index] for index in batch.waiters
                )
                if coalescer.stable_lsn >= needed:
                    # Every remaining waiter's prefix was covered by an
                    # earlier in-flight write: elide the disk write.
                    coalescer.note_write_skip(1 + riders)
                    return False
                return coalescer.execute_batch(riders)
            except BaseException as exc:
                batch.error = exc
                raise
            finally:
                batch.done = True
                vector_clock.merge_into(self.session_clock(session), batch.vc)
                vector_clock.merge_into(
                    self.session_watermarks(session), batch.wm
                )
                if self._batches.get(coalescer) is batch:
                    del self._batches[coalescer]
        batch.waiters.append(session.index)
        batch.targets[session.index] = target
        session.step_touches.add(coalescer.process.name)
        self.block_until(
            lambda: batch.done or coalescer.stable_lsn >= target,
            tag=f"group-ride:{log_name}",
        )
        if not batch.done:
            # Early release: an earlier in-flight write made our causal
            # prefix stable before our own batch got to the platter.
            batch.waiters.remove(session.index)
            del batch.targets[session.index]
            coalescer.note_gated()
            return False
        vector_clock.merge_into(self.session_clock(session), batch.vc)
        vector_clock.merge_into(self.session_watermarks(session), batch.wm)
        if batch.error is not None:
            signal = CrashSignal(log_name, "group-commit write")
            signal.process = coalescer.process
            signal.stale = True
            raise signal
        return False

    def _close_due_batches(self) -> None:
        for batch in self._batches.values():
            if not batch.closed and self.clock.now >= batch.deadline:
                batch.closed = True

    def _sleep_to_next_batch(self) -> bool:
        open_batches = [b for b in self._batches.values() if not b.closed]
        if not open_batches:
            return False
        earliest = min(open_batches, key=lambda b: (b.deadline, b.seq))
        self.clock.sleep_until(earliest.deadline)
        self._close_due_batches()
        return True
