from __future__ import annotations

import sys

from .check import run_determinism_check

if __name__ == "__main__":
    sys.exit(run_determinism_check())
