from __future__ import annotations

import sys

from .check import run_determinism_check, run_sharded_check

if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "sharded":
        sys.exit(run_sharded_check())
    sys.exit(run_determinism_check())
