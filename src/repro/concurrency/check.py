"""Same-seed determinism check (``make concurrency``).

Runs the concurrent bookstore workload twice with the same seed and
compares the byte fingerprints of every durable artifact: stable logs,
protocol traces, the final simulated clock, plus every session's
replies.  Any divergence means a nondeterministic interleaving leaked
into the scheduler — the exact property CI must hold pinned.
"""

from __future__ import annotations


def run_determinism_check() -> int:
    from ..faults.workloads import run_bookstore_concurrent

    first = run_bookstore_concurrent()
    second = run_bookstore_concurrent()

    problems: list[str] = []
    if first.replies != second.replies:
        problems.append("session replies differ between same-seed runs")
    keys = sorted(set(first.determinism) | set(second.determinism))
    for key in keys:
        a = first.determinism.get(key)
        b = second.determinism.get(key)
        if a != b:
            problems.append(f"fingerprint {key!r} differs between runs")
    for outcome, which in ((first, "first"), (second, "second")):
        for violation in outcome.violations:
            problems.append(f"{which} run: {violation}")

    if problems:
        print("concurrency determinism check: FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        "concurrency determinism check: PASS "
        f"({len(keys)} artifacts byte-identical across two same-seed runs)"
    )
    return 0
