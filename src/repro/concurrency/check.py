"""Seed determinism checks (``make concurrency``).

Three properties, all pinned by CI:

1. **Same-seed byte-identity** — the concurrent bookstore run twice
   with the same seed must produce byte-identical durable artifacts
   (stable logs, protocol traces, final simulated clock) and identical
   session replies.  A divergence is reported as the *first divergent
   trace event* of the first diverging process, so a nondeterminism
   leak points at the exact protocol decision that varied.
2. **Different-seed independence** — a run with a different seed must
   interleave *differently* (distinct fingerprints: the seed actually
   reaches the schedule) while still passing the full conformance
   oracle (TRC101–TRC108) and the sweep's reply/state comparisons.
   Correctness must never depend on which schedule the seed drew.
3. **Pipelined determinism** — the two-tier throughput workload with
   ``pipelined_commit`` on at N=8 sessions is byte-identical across
   two same-seed runs, diverges (while staying conformant) under an
   alternate seed, and never performs more forces per call than the
   plain group-commit baseline on the same schedule.
"""

from __future__ import annotations

#: The alternate seed for the independence check.  Any value with a
#: different first READY draw from ``CONCURRENT_SEED`` works; pinned so
#: the check itself is deterministic.
ALTERNATE_SEED = 271828


def _first_trace_divergence(first, second) -> str | None:
    """Locate the first trace event that differs between two runs
    (process in name order, then event index)."""
    names = sorted(set(first.trace_reprs) | set(second.trace_reprs))
    for name in names:
        a = first.trace_reprs.get(name, [])
        b = second.trace_reprs.get(name, [])
        for index in range(max(len(a), len(b))):
            left = a[index] if index < len(a) else "<missing>"
            right = b[index] if index < len(b) else "<missing>"
            if left != right:
                return (
                    f"process {name!r} event {index}:\n"
                    f"    first:  {left}\n"
                    f"    second: {right}"
                )
    return None


#: Session count for the pipelined determinism leg.
PIPELINED_SESSIONS = 8

#: Calls per session for the pipelined determinism leg.
PIPELINED_CALLS = 6


def _pipelined_problems() -> tuple[list[str], int]:
    """Run the pipelined determinism leg; returns (problems, artifact
    count of one pipelined run)."""
    from .bench import _run

    problems: list[str] = []
    first = _run(
        PIPELINED_SESSIONS, group_commit=True,
        calls_per_session=PIPELINED_CALLS, pipelined=True,
    )
    second = _run(
        PIPELINED_SESSIONS, group_commit=True,
        calls_per_session=PIPELINED_CALLS, pipelined=True,
    )
    if first.fingerprint != second.fingerprint:
        diverged = [
            key
            for (key, left), (__, right) in zip(
                first.fingerprint, second.fingerprint
            )
            if left != right
        ]
        problems.append(
            "pipelined fingerprints differ between same-seed runs: "
            f"{diverged}"
        )
    for which, outcome in (("first", first), ("second", second)):
        for violation in outcome.violations:
            problems.append(f"pipelined {which} run: {violation}")

    other = _run(
        PIPELINED_SESSIONS, group_commit=True,
        calls_per_session=PIPELINED_CALLS, pipelined=True,
        seed=ALTERNATE_SEED,
    )
    for violation in other.violations:
        problems.append(f"pipelined alternate-seed run: {violation}")
    if other.fingerprint == first.fingerprint:
        problems.append(
            f"alternate seed {ALTERNATE_SEED} reproduced the pipelined "
            "run's fingerprints exactly — the seed does not reach the "
            "schedule"
        )

    baseline = _run(
        PIPELINED_SESSIONS, group_commit=True,
        calls_per_session=PIPELINED_CALLS,
    )
    if first.forces_per_call > baseline.forces_per_call:
        problems.append(
            "pipelined commit performed MORE forces per call than group "
            f"commit ({first.forces_per_call:.3f} > "
            f"{baseline.forces_per_call:.3f})"
        )
    return problems, len(first.fingerprint)


def run_sharded_check() -> int:
    """The ``make sharded`` gate: sharded logging must change the
    *artifacts* (one stream per shard) without changing the *answers*.

    1. **Same-seed byte-identity, flag on** — the sharded concurrent
       bookstore run twice with one seed is byte-identical across all
       per-stream logs, traces, the clock and the session replies.
    2. **Stream fan-out is real** — the sharded run's fingerprint keys
       include the per-shard ``@shard-id`` streams; the flag-off run's
       keys include none (the legacy single-stream layout is intact).
    3. **Semantics are routing-independent** — flag on and flag off
       deliver identical session replies and identical final component
       state; both pass the full conformance oracle (TRC101-TRC109).
    """
    from ..faults.workloads import (
        run_bookstore_concurrent,
        run_bookstore_concurrent_sharded,
    )

    problems: list[str] = []
    first = run_bookstore_concurrent_sharded()
    second = run_bookstore_concurrent_sharded()

    if first.replies != second.replies:
        problems.append(
            "sharded session replies differ between same-seed runs"
        )
    keys = sorted(set(first.determinism) | set(second.determinism))
    diverged = [
        key for key in keys
        if first.determinism.get(key) != second.determinism.get(key)
    ]
    if diverged:
        problems.append(
            f"sharded fingerprints differ between same-seed runs: "
            f"{diverged}"
        )
        divergence = _first_trace_divergence(first, second)
        if divergence:
            problems.append(f"first divergent trace event: {divergence}")
    for outcome, which in ((first, "first"), (second, "second")):
        for violation in outcome.violations:
            problems.append(f"sharded {which} run: {violation}")

    sharded_streams = sorted(
        key for key in first.determinism if "@" in key
    )
    if not sharded_streams:
        problems.append(
            "sharded run produced no per-shard streams — the plan did "
            "not reach the processes"
        )

    baseline = run_bookstore_concurrent()
    for violation in baseline.violations:
        problems.append(f"flag-off run: {violation}")
    flat_streams = [key for key in baseline.determinism if "@" in key]
    if flat_streams:
        problems.append(
            "flag-off run grew per-shard streams — the legacy layout "
            f"is no longer intact: {flat_streams}"
        )
    if baseline.replies != first.replies:
        problems.append(
            "session replies depend on the sharded_logging flag"
        )
    if baseline.state != first.state:
        problems.append(
            "final component state depends on the sharded_logging flag"
        )

    if problems:
        print("sharded logging check: FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        "sharded logging check: PASS "
        f"({len(keys)} artifacts byte-identical across two same-seed "
        f"sharded runs over {len(sharded_streams)} per-shard streams; "
        "replies and final state identical to the flag-off run)"
    )
    return 0


def run_determinism_check() -> int:
    from ..faults.workloads import run_bookstore_concurrent

    first = run_bookstore_concurrent()
    second = run_bookstore_concurrent()

    problems: list[str] = []
    if first.replies != second.replies:
        problems.append("session replies differ between same-seed runs")
    keys = sorted(set(first.determinism) | set(second.determinism))
    diverged = [
        key for key in keys
        if first.determinism.get(key) != second.determinism.get(key)
    ]
    if diverged:
        problems.append(
            f"fingerprints differ between same-seed runs: {diverged}"
        )
        divergence = _first_trace_divergence(first, second)
        if divergence:
            problems.append(f"first divergent trace event: {divergence}")
    for outcome, which in ((first, "first"), (second, "second")):
        for violation in outcome.violations:
            problems.append(f"{which} run: {violation}")

    # A different seed must both *pass the oracle* (correctness is
    # schedule-independent) and *actually change the schedule*
    # (distinct fingerprints — the seed is not decorative).
    other = run_bookstore_concurrent(seed=ALTERNATE_SEED)
    for violation in other.violations:
        problems.append(f"alternate-seed run: {violation}")
    if other.determinism == first.determinism:
        problems.append(
            f"alternate seed {ALTERNATE_SEED} reproduced the default "
            "seed's fingerprints exactly — the seed does not reach the "
            "schedule"
        )
    if other.state != first.state:
        problems.append(
            "final component state depends on the schedule seed"
        )

    pipelined_problems, pipelined_artifacts = _pipelined_problems()
    problems.extend(pipelined_problems)

    if problems:
        print("concurrency determinism check: FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        "concurrency determinism check: PASS "
        f"({len(keys)} artifacts byte-identical across two same-seed "
        f"runs; alternate seed {ALTERNATE_SEED} interleaves differently "
        f"and stays conformant; pipelined commit at "
        f"N={PIPELINED_SESSIONS} byte-identical across "
        f"{pipelined_artifacts} artifacts and never above the "
        "group-commit force budget)"
    )
    return 0
