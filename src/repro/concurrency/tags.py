"""Registry of scheduler yield-point tags.

Yield points are where the deterministic scheduler may switch sessions
and where the schedule explorer (``explore.py``) branches.  Tags are
``family:process`` strings; this module is the single source of truth
for the allowed families.  ``DeterministicScheduler.yield_point``
validates every tag against it, so a typo'd tag is a hard
``InvariantViolationError`` instead of a silently unexplored boundary,
and the PHX013 lint rule (``repro.analysis.sites``) reads the same
registry to cross-check that every FaultPlane durability site family is
covered by some yield family.

Only stdlib is imported here so ``repro.analysis`` can read the
registry without pulling in the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class YieldTag:
    """One registered yield-point family."""

    family: str
    where: str
    # FaultPlane site families whose durability boundary this yield
    # point exposes to schedule exploration (PHX013 cross-check).
    covers: tuple[str, ...] = ()


LOG_APPEND = "log.append"
LOG_FORCE = "log.force"
LOG_SUBMIT = "log.submit"
NET_REQUEST = "net.request"
NET_REPLY = "net.reply"
RECOVERY_SHARD = "recovery.shard"


YIELD_TAGS: dict[str, YieldTag] = {
    tag.family: tag
    for tag in (
        YieldTag(
            LOG_APPEND,
            "immediately before a record enters the log buffer",
            covers=(
                # Algorithm 3's pre-reply crash window sits between the
                # reply append and its force; the append-side yield is
                # the switch point that exposes it.
                "alg3.pre_reply",
                "checkpoint.begin",
            ),
        ),
        YieldTag(
            LOG_FORCE,
            "immediately after a force (or coalesced no-op force) returns",
            covers=(
                "log.force.before",
                "log.force.after",
                "log.flush",
                "checkpoint.end",
                "checkpoint.publish.before_truncate",
            ),
        ),
        YieldTag(
            LOG_SUBMIT,
            "after a pipelined group-commit window closed, before its "
            "leader performs the shared write (the closed-but-in-flight "
            "state is schedulable: the next batch opens underneath it)",
        ),
        YieldTag(
            NET_REQUEST,
            "on message delivery, before the receiving process runs",
            covers=(
                "recovery.start",
                "recovery.pass1",
                "recovery.restored",
                "recovery.pass2",
                "recovery.drained",
                "recovery.done",
                "recovery.admit_early",
                "recovery.lazy_replay.before",
                "recovery.lazy_replay.after",
                "recovery.drain_worker",
            ),
        ),
        YieldTag(
            NET_REPLY,
            "after the receiving process replied, before the caller resumes",
        ),
        YieldTag(
            RECOVERY_SHARD,
            "between shard drains of a sharded recovery (each shard's "
            "replay is an independent drain; the boundary between them "
            "is schedulable)",
            covers=("recovery.shard.drained",),
        ),
    )
}

# FaultPlane site families with no scheduler yield point, with the
# reason each is exempt.  PHX013 fails on any site family that is
# neither covered above nor listed here.
EXEMPT_SITE_FAMILIES: dict[str, str] = {
    "qforce.before": (
        "queued-component substrate runs under its own serial queue "
        "driver, never under the DeterministicScheduler"
    ),
    "qforce.after": (
        "queued-component substrate runs under its own serial queue "
        "driver, never under the DeterministicScheduler"
    ),
    "qlog.flush": (
        "queue-log flushes happen inside the serial queue driver; "
        "sessions cannot interleave with them"
    ),
}


def covered_site_families() -> dict[str, str]:
    """Map of FaultPlane site family -> covering yield family."""
    out: dict[str, str] = {}
    for tag in YIELD_TAGS.values():
        for site in tag.covers:
            out[site] = tag.family
    return out


def tag_family(tag: str) -> str:
    """The family part of a ``family:process`` yield tag."""
    return tag.split(":", 1)[0]


def is_registered(tag: str) -> bool:
    return tag_family(tag) in YIELD_TAGS


def validate_tag(tag: str) -> None:
    """Raise (ValueError) if ``tag``'s family is not registered.

    The scheduler converts this into an ``InvariantViolationError`` so a
    misspelled yield point aborts the run instead of silently escaping
    schedule exploration.
    """
    family = tag_family(tag)
    if family not in YIELD_TAGS:
        known = ", ".join(sorted(YIELD_TAGS))
        raise ValueError(
            f"unregistered yield-point tag {tag!r} (family {family!r}); "
            f"registered families: {known} — add it to "
            "repro/concurrency/tags.py or fix the typo"
        )
