"""Concurrent-throughput experiment: group commit vs session count.

The setup isolates the effect Section 5.2.2 predicts for a shared log:
N external client sessions each drive their own tiny persistent
component, all hosted in ONE server process — so every session's
Algorithm 3 traffic (forced long message 1, forced short message 2)
lands on the same log.  Without group commit each call performs exactly
two stable writes regardless of N; with group commit, forces arriving
within one disk-rotation window ride a single shared write, so the
number of writes *per call* falls as sessions are added.

``benchmarks/bench_concurrent_throughput.py`` runs this experiment and
asserts both shapes (flat without, strictly decreasing with).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.reporting import Cell, ExperimentTable
from ..core import PersistentComponent, PhoenixRuntime, persistent
from ..core.config import RuntimeConfig
from .scheduler import DeterministicScheduler

#: Scheduler seed for every bench run (same seed -> same interleaving).
BENCH_SEED = 7


@persistent
class _Ledger(PersistentComponent):
    """Minimal persistent server: every call mutates state, so an
    external caller gets Algorithm 3 — a forced long message 1 and a
    forced short message 2, two stable writes per call."""

    def __init__(self):
        self.count = 0

    def record(self) -> int:
        self.count += 1
        return self.count


@dataclass(frozen=True)
class _Run:
    """Counters of one scheduler run."""

    sessions: int
    calls: int  # total calls across sessions
    forces_performed: int
    group_commit_batches: int
    group_commit_riders: int
    elapsed_ms: float

    @property
    def forces_per_call(self) -> float:
        return self.forces_performed / self.calls

    @property
    def calls_per_second(self) -> float:
        return self.calls / (self.elapsed_ms / 1000.0)


def _run(sessions: int, group_commit: bool, calls_per_session: int) -> _Run:
    config = RuntimeConfig.optimized(group_commit=group_commit)
    runtime = PhoenixRuntime(config=config)
    runtime.external_client_machine = "alpha"
    process = runtime.spawn_process("gc-bench", machine="beta")
    # One component per session: admission is per context, so distinct
    # components let sessions overlap inside the process (one shared
    # log) instead of serializing end to end at the context boundary.
    ledgers = [
        process.create_component(_Ledger) for __ in range(sessions)
    ]

    def make_session(index: int):
        ledger = ledgers[index]

        def session() -> int:
            last = 0
            for __ in range(calls_per_session):
                last = ledger.record()
            return last

        return session

    stats_before = process.log.stats.snapshot()
    started = runtime.clock.now
    scheduler = DeterministicScheduler(runtime, seed=BENCH_SEED)
    scheduler.run([make_session(i) for i in range(sessions)])
    stats = process.log.stats
    return _Run(
        sessions=sessions,
        calls=sessions * calls_per_session,
        forces_performed=(
            stats.forces_performed - stats_before.forces_performed
        ),
        group_commit_batches=(
            stats.group_commit_batches - stats_before.group_commit_batches
        ),
        group_commit_riders=(
            stats.group_commit_riders - stats_before.group_commit_riders
        ),
        elapsed_ms=runtime.clock.now - started,
    )


def bench_concurrent_throughput(
    session_counts: tuple[int, ...] = (1, 2, 4, 8),
    calls_per_session: int = 6,
) -> ExperimentTable:
    """Forces per call and throughput vs N, group commit off/on."""
    table = ExperimentTable(
        key="concurrent_throughput",
        title=(
            "Group commit under concurrent sessions "
            f"({calls_per_session} calls/session, shared server log)"
        ),
        columns=[
            "forces/call (off)",
            "forces/call (on)",
            "batches (on)",
            "riders (on)",
            "calls/s (off)",
            "calls/s (on)",
        ],
    )
    for n in session_counts:
        off = _run(n, group_commit=False, calls_per_session=calls_per_session)
        on = _run(n, group_commit=True, calls_per_session=calls_per_session)
        table.add_row(
            f"N={n}",
            Cell(off.forces_per_call),
            Cell(on.forces_per_call),
            Cell(float(on.group_commit_batches)),
            Cell(float(on.group_commit_riders)),
            Cell(off.calls_per_second),
            Cell(on.calls_per_second),
        )
    table.notes.append(
        "off: every Algorithm-3 force writes (2 writes/call, flat in N); "
        "on: forces within one rotation window share a write, so "
        "writes/call falls as sessions are added"
    )
    return table
