"""Concurrent-throughput experiment: group commit and pipelined commit
vs session count.

The setup isolates the effect Section 5.2.2 predicts for a shared log:
N external client sessions each drive their own persistent front-tier
component, all hosted in ONE server process, and each front component
calls its session's back-tier ledger in a second process — so every
session's traffic lands on two shared logs, and every call crosses the
two kinds of committing send:

* Algorithm 3 at the front (forced long message 1, forced short
  message 2): the force immediately follows the session's own append,
  so its causal prefix always includes the fresh record;
* Algorithm 2 at the persistent→persistent hop (the outgoing call from
  the front tier and the back tier's reply-send): the force appends
  nothing of its own, so under ``pipelined_commit`` it is *gated* —
  skipped outright — whenever the session's causal prefix is already
  stable, even while other sessions' unforced appends sit above it.

Without group commit each call performs the same number of stable
writes regardless of N; with group commit, forces arriving within one
disk-rotation window ride a single shared write, so writes *per call*
fall as sessions are added; with pipelined commit on top, the
Algorithm-2 sends stop paying for other sessions' bytes entirely
(TRC107's slack), so forces per call fall further and calls/second
rise.

``benchmarks/bench_concurrent_throughput.py`` runs this experiment and
asserts all three shapes (flat without; decreasing with group commit;
pipelined at or below group commit everywhere and strictly better at
large N).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.reporting import Cell, ExperimentTable
from ..core import PersistentComponent, PhoenixRuntime, persistent
from ..core.config import RuntimeConfig
from .scheduler import DeterministicScheduler

#: Scheduler seed for every bench run (same seed -> same interleaving).
BENCH_SEED = 7


@persistent
class _Ledger(PersistentComponent):
    """Back-tier persistent server: every call mutates state, and its
    persistent caller makes the reply-send an Algorithm-2 committing
    send (force everything before the reply, no record of its own)."""

    def __init__(self):
        self.count = 0

    def record(self) -> int:
        self.count += 1
        return self.count


@persistent
class _Desk(PersistentComponent):
    """Front-tier persistent server: mutates its own state, then calls
    its session's back-tier ledger.  The external caller gets
    Algorithm 3 (forced long message 1, forced short message 2); the
    outgoing call to the ledger is an Algorithm-2 committing send —
    the site pipelined commit gates causally."""

    def __init__(self, ledger):
        self.ledger = ledger
        self.count = 0

    def record(self) -> int:
        self.count += 1
        return self.ledger.record()


# Sharded leg: stream routing is by component class, so splitting the
# sessions across two shards per process needs two (otherwise
# identical) classes per tier.  Even sessions land on the A shard, odd
# on B; the unsharded columns keep using the base classes so their
# byte-pinned results are untouched.
@persistent
class _LedgerA(_Ledger):
    pass


@persistent
class _LedgerB(_Ledger):
    pass


@persistent
class _DeskA(_Desk):
    pass


@persistent
class _DeskB(_Desk):
    pass


#: Shard split for the sharded leg, accepted verbatim by
#: :func:`repro.log.sharding.plan_shards`.
SHARD_SPLIT = (
    {"id": "front-a", "processes": ["gc-front"], "components": ["_DeskA"]},
    {"id": "front-b", "processes": ["gc-front"], "components": ["_DeskB"]},
    {"id": "back-a", "processes": ["gc-back"], "components": ["_LedgerA"]},
    {"id": "back-b", "processes": ["gc-back"], "components": ["_LedgerB"]},
)


@dataclass(frozen=True)
class _Run:
    """Counters of one scheduler run."""

    sessions: int
    calls: int  # total calls across sessions
    forces_performed: int
    group_commit_batches: int
    group_commit_riders: int
    pipelined_gated: int
    pipelined_write_skips: int
    elapsed_ms: float
    #: Byte fingerprint of the durable artifacts (stable log, protocol
    #: trace, final clock) — the pipelined determinism gate compares
    #: two same-seed runs on it.
    fingerprint: tuple[tuple[str, bytes], ...]
    #: Conformance-oracle violations (TRC101–TRC108) for this run.
    violations: tuple[str, ...]

    @property
    def forces_per_call(self) -> float:
        return self.forces_performed / self.calls

    @property
    def calls_per_second(self) -> float:
        return self.calls / (self.elapsed_ms / 1000.0)


def _run(
    sessions: int,
    group_commit: bool,
    calls_per_session: int,
    pipelined: bool = False,
    seed: int = BENCH_SEED,
    sharded: bool = False,
) -> _Run:
    config = RuntimeConfig.optimized(
        group_commit=group_commit,
        pipelined_commit=pipelined,
        sharded_logging=sharded,
    )
    runtime = PhoenixRuntime(config=config)
    if sharded:
        runtime.install_log_plan(SHARD_SPLIT)
    runtime.external_client_machine = "alpha"
    front = runtime.spawn_process("gc-front", machine="beta")
    back = runtime.spawn_process("gc-back", machine="beta")
    # One component pair per session: admission is per context, so
    # distinct components let sessions overlap inside each process (two
    # shared logs) instead of serializing end to end at the context
    # boundary.
    if sharded:
        pairs = ((_DeskA, _LedgerA), (_DeskB, _LedgerB))
    else:
        pairs = ((_Desk, _Ledger),)
    desks = [
        front.create_component(
            pairs[i % len(pairs)][0],
            args=(back.create_component(pairs[i % len(pairs)][1]),),
        )
        for i in range(sessions)
    ]

    def make_session(index: int):
        desk = desks[index]

        def session() -> int:
            last = 0
            for __ in range(calls_per_session):
                last = desk.record()
            return last

        return session

    processes = (front, back)
    # All streams of both processes (flag-off: exactly the two legacy
    # logs) — sharded runs force the shard streams, so the stats delta
    # must sum across them.
    logs = [stream.log for p in processes for stream in p.streams]
    stats_before = [log.stats.snapshot() for log in logs]
    started = runtime.clock.now
    scheduler = DeterministicScheduler(runtime, seed=seed)
    scheduler.run([make_session(i) for i in range(sessions)])
    stats = [log.stats for log in logs]
    from ..analysis.trace_check import check_runtime

    fingerprint = tuple(
        (f"{kind}:{p.name}{suffix}", blob)
        for p in processes
        for index, stream in enumerate(p.streams)
        for suffix in ("" if index == 0 else f"@{stream.shard_id}",)
        for kind, blob in (
            ("log", stream.log.stable_bytes()),
            ("trace", repr(stream.trace.entries).encode()),
        )
    ) + (("clock", repr(runtime.clock.now).encode()),)
    violations = tuple(
        f"{process_name}: {violation.render()}"
        for process_name, violation in check_runtime(runtime)
    )

    def delta(field: str) -> int:
        return sum(
            getattr(after, field) - getattr(before, field)
            for after, before in zip(stats, stats_before)
        )

    return _Run(
        sessions=sessions,
        calls=sessions * calls_per_session,
        forces_performed=delta("forces_performed"),
        group_commit_batches=delta("group_commit_batches"),
        group_commit_riders=delta("group_commit_riders"),
        pipelined_gated=delta("pipelined_gated"),
        pipelined_write_skips=delta("pipelined_write_skips"),
        elapsed_ms=runtime.clock.now - started,
        fingerprint=fingerprint,
        violations=violations,
    )


def bench_concurrent_throughput(
    session_counts: tuple[int, ...] = (1, 2, 4, 8),
    calls_per_session: int = 6,
) -> ExperimentTable:
    """Forces per call and throughput vs N: group commit off, on, and
    pipelined causal commit on top of it."""
    table = ExperimentTable(
        key="concurrent_throughput",
        title=(
            "Group commit and pipelined commit under concurrent sessions "
            f"({calls_per_session} calls/session, two shared server logs)"
        ),
        columns=[
            "forces/call (off)",
            "forces/call (on)",
            "forces/call (pipe)",
            "forces/call (shard)",
            "batches (on)",
            "riders (on)",
            "gated (pipe)",
            "calls/s (off)",
            "calls/s (on)",
            "calls/s (pipe)",
            "calls/s (shard)",
        ],
    )
    for n in session_counts:
        off = _run(n, group_commit=False, calls_per_session=calls_per_session)
        on = _run(n, group_commit=True, calls_per_session=calls_per_session)
        pipe = _run(
            n, group_commit=True, calls_per_session=calls_per_session,
            pipelined=True,
        )
        shard = _run(
            n, group_commit=True, calls_per_session=calls_per_session,
            sharded=True,
        )
        table.add_row(
            f"N={n}",
            Cell(off.forces_per_call),
            Cell(on.forces_per_call),
            Cell(pipe.forces_per_call),
            Cell(shard.forces_per_call),
            Cell(float(on.group_commit_batches)),
            Cell(float(on.group_commit_riders)),
            Cell(float(pipe.pipelined_gated)),
            Cell(off.calls_per_second),
            Cell(on.calls_per_second),
            Cell(pipe.calls_per_second),
            Cell(shard.calls_per_second),
        )
    table.notes.append(
        "off: every committing send writes (flat in N); on: forces "
        "within one rotation window share a write, so writes/call falls "
        "as sessions are added; pipe: Algorithm-2 sends whose causal "
        "prefix is already stable skip the force outright (TRC107 "
        "slack), so writes/call falls further and throughput rises; "
        "shard: sessions split across two log streams per process, so a "
        "committing send forces only the stream its causal target lives "
        "on and never pays for the other shard's unforced bytes"
    )
    return table
