"""``repro-explore``: the schedule-space model checker's command line.

Subcommands:

* ``smoke`` — the CI gate: full DPOR exploration of the ledger
  workload at N=2 (must complete, zero violations), a budget-capped
  naive enumeration for the pruning-ratio comparison (DPOR must be
  strictly smaller), and one SCHEDULE_ID replayed twice byte-identically.
* ``explore [--sessions N] [--budget B] [--naive] [--crash SPEC]
  [--keep-going]`` — run the explorer and print every counterexample's
  replayable SCHEDULE_ID.
* ``run SCHEDULE_ID [--verify]`` — re-execute one explored schedule;
  with ``--verify``, run it twice and require byte-identical durable
  artifacts.
* ``crash-sweep [--sessions N] [--budget B] [--specs K]`` — derive K
  durability-boundary crash points from a recording golden run and
  explore the schedule space around each armed crash.
"""

from __future__ import annotations

import argparse
import sys

from ..faults.plane import CrashSpec
from .explore import (
    Counterexample,
    derive_crash_specs,
    explore,
    run_schedule,
    verify_schedule,
)


def _print_counterexamples(counterexamples: list[Counterexample]) -> None:
    for cx in counterexamples:
        print(f"  counterexample: {cx.schedule_id}")
        if cx.error:
            print(f"    error: {cx.error}")
        for violation in cx.violations:
            print(f"    {violation}")


def _cmd_smoke(args: argparse.Namespace) -> int:
    budget = args.budget
    dpor = explore(n_sessions=2, max_schedules=budget)
    print(
        f"DPOR n=2: {dpor.schedules} schedules, "
        f"complete={dpor.complete}, max depth {dpor.max_depth}, "
        f"{len(dpor.counterexamples)} counterexample(s)"
    )
    _print_counterexamples(dpor.counterexamples)
    ok = dpor.complete and dpor.ok

    # The same space under pipelined causal commit: the relaxed commit
    # points, gated sends, and log.submit in-flight states must stay
    # clean on TRC101–TRC108 across the whole reduced space.
    pipelined = explore(
        workload="ledger-pipelined", n_sessions=2, max_schedules=budget
    )
    print(
        f"DPOR n=2 (pipelined): {pipelined.schedules} schedules, "
        f"complete={pipelined.complete}, max depth {pipelined.max_depth}, "
        f"{len(pipelined.counterexamples)} counterexample(s)"
    )
    _print_counterexamples(pipelined.counterexamples)
    ok = ok and pipelined.complete and pipelined.ok

    naive_budget = min(budget, 2 * dpor.schedules)
    naive = explore(n_sessions=2, max_schedules=naive_budget, naive=True)
    suffix = "" if naive.complete else " (budget-capped)"
    print(f"naive n=2: {naive.schedules} schedules{suffix}")
    ratio = naive.schedules / max(1, dpor.schedules)
    print(f"pruning ratio: {ratio:.1f}x ({naive.schedules}/{dpor.schedules})")
    if not dpor.schedules < naive.schedules:
        print("FAIL: DPOR did not prune below naive enumeration")
        ok = False

    from .explore import encode_schedule_id
    from .policies import ControlledPolicy
    from .explore import EXPLORE_WORKLOADS

    for workload in ("ledger", "ledger-pipelined"):
        probe = EXPLORE_WORKLOADS[workload](2, ControlledPolicy([1, 1, 0]))
        schedule_id = encode_schedule_id(workload, 2, probe.choices)
        __, diverged = verify_schedule(schedule_id)
        if diverged:
            print(f"FAIL: replay of {schedule_id} diverged in {diverged}")
            ok = False
        else:
            print(f"replay byte-identical: {schedule_id}")
    print(f"explore smoke: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    specs = tuple(CrashSpec.parse(text) for text in args.crash or ())
    result = explore(
        workload=args.workload,
        n_sessions=args.sessions,
        specs=specs,
        max_schedules=args.budget,
        naive=args.naive,
        stop_on_violation=not args.keep_going,
        log=lambda message: print(f"  {message}"),
    )
    mode = "naive" if result.naive else "DPOR"
    print(
        f"{mode} n={result.n_sessions}"
        + (f" crash={[s.render() for s in result.specs]}" if specs else "")
        + f": {result.schedules} schedules, complete={result.complete}, "
        f"max depth {result.max_depth}"
    )
    _print_counterexamples(result.counterexamples)
    return 0 if result.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    if args.verify:
        run, diverged = verify_schedule(args.schedule_id)
        if diverged:
            print(f"replay DIVERGED in artifacts: {diverged}")
            return 1
        print("replay byte-identical across two executions")
    else:
        run = run_schedule(args.schedule_id)
    print(f"choices: {run.choices}")
    print(f"replies: {run.replies!r}")
    if run.fired:
        print(f"crash specs fired: {run.fired}")
    if run.error:
        print(f"error: {run.error}")
    for violation in run.violations:
        print(f"violation: {violation}")
    return 0 if not run.violations and run.error is None else 1


def _cmd_crash_sweep(args: argparse.Namespace) -> int:
    specs = derive_crash_specs(
        workload=args.workload, n_sessions=args.sessions, limit=args.specs
    )
    if not specs:
        print("no crash specs derived (empty journal?)")
        return 1
    failures = 0
    for spec in specs:
        result = explore(
            workload=args.workload,
            n_sessions=args.sessions,
            specs=(spec,),
            max_schedules=args.budget,
            stop_on_violation=not args.keep_going,
        )
        status = "complete" if result.complete else "budget-capped"
        print(
            f"{spec.render()}: {result.schedules} schedules ({status}), "
            f"{len(result.counterexamples)} counterexample(s)"
        )
        _print_counterexamples(result.counterexamples)
        failures += len(result.counterexamples)
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="DPOR schedule-space exploration over scheduler "
        "yield points",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    smoke = sub.add_parser("smoke", help="CI gate: full DPOR at n=2")
    smoke.add_argument("--budget", type=int, default=2000)
    smoke.set_defaults(fn=_cmd_smoke)

    exp = sub.add_parser("explore", help="run the explorer")
    exp.add_argument("--workload", default="ledger")
    exp.add_argument("--sessions", type=int, default=2)
    exp.add_argument("--budget", type=int, default=1000)
    exp.add_argument("--naive", action="store_true")
    exp.add_argument(
        "--crash", action="append", metavar="SITE@OCCURRENCE",
        help="arm a crash spec (repeatable)",
    )
    exp.add_argument("--keep-going", action="store_true")
    exp.set_defaults(fn=_cmd_explore)

    run = sub.add_parser("run", help="replay one SCHEDULE_ID")
    run.add_argument("schedule_id")
    run.add_argument("--verify", action="store_true")
    run.set_defaults(fn=_cmd_run)

    sweep = sub.add_parser(
        "crash-sweep", help="explore around derived crash points"
    )
    sweep.add_argument("--workload", default="ledger")
    sweep.add_argument("--sessions", type=int, default=2)
    sweep.add_argument("--budget", type=int, default=800)
    sweep.add_argument("--specs", type=int, default=3)
    sweep.add_argument("--keep-going", action="store_true")
    sweep.set_defaults(fn=_cmd_crash_sweep)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
