"""Pluggable schedule policies for the deterministic scheduler.

The scheduler's one nondeterministic decision — *which READY session
runs next* — is delegated to a :class:`SchedulePolicy`.  The default,
:class:`SeededRandomPolicy`, reproduces the historical seeded draw
byte-for-byte, so every existing workload interleaves exactly as before.
:class:`ReplayPolicy` follows an explicit choice sequence (the payload
of a SCHEDULE_ID emitted by the explorer), and :class:`ControlledPolicy`
is the explorer's driver: it follows a forced prefix, then falls back to
the smallest READY session, recording every step it observed.

A *step* is everything one session executes between two scheduling
decisions.  After each step the scheduler hands the policy a
:class:`ScheduleStep` carrying the step's *footprint* — the set of
process names whose log or state the step touched — which is what the
DPOR race analysis in ``explore.py`` uses as its commutativity table:
two adjacent steps of different sessions commute iff their footprints
are disjoint.  (Simulated-clock advances are deliberately treated as
commutative: charges are additive and order-independent; the one
exception, group-commit window deadlines, is why the explorer keeps
group commit off by default.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import DeterministicScheduler, Session


@dataclass(frozen=True)
class ScheduleStep:
    """One scheduling decision and the step it produced."""

    index: int
    chosen: int
    #: Session indices that were READY when the decision was taken.
    enabled: tuple[int, ...]
    #: Process names whose log/state the step touched (the DPOR
    #: commutativity footprint).
    touched: frozenset[str]
    #: Tag the session was parked at before this step (None on first run).
    park_tag: str | None
    #: Tag the session parked at when the step ended (None if it finished).
    end_tag: str | None
    #: Session state after the step (ready/blocked/done/failed).
    final_state: str


class SchedulePolicy:
    """Decides which READY session the scheduler resumes next."""

    def begin_run(self, scheduler: "DeterministicScheduler") -> None:
        """Called at the top of every ``run()``."""

    def choose(
        self, ready: Sequence["Session"], scheduler: "DeterministicScheduler"
    ) -> "Session":
        raise NotImplementedError

    def observe(self, step: ScheduleStep) -> None:
        """Called after the chosen session suspended again."""


class SeededRandomPolicy(SchedulePolicy):
    """The historical behaviour: a seeded uniform draw over READY.

    The RNG lives across runs on the same policy object, exactly like
    the scheduler's old ``self._rng``, so same-seed byte-identity is
    preserved for workloads that reuse one scheduler.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(
        self, ready: Sequence["Session"], scheduler: "DeterministicScheduler"
    ) -> "Session":
        return ready[self._rng.randrange(len(ready))]


class ScheduleDivergenceError(Exception):
    """A replayed choice did not match the live READY set."""


class ReplayPolicy(SchedulePolicy):
    """Replay an explicit choice sequence (a decoded SCHEDULE_ID).

    Each entry is the *session index* to resume at that decision.  A
    choice naming a session that is not READY means the program being
    replayed is not the program that was explored — that is a hard
    error, not a fallback.  Past the end of the sequence the smallest
    READY session runs (deterministic, matching the explorer's own
    fallback), so prefixes emitted mid-exploration replay cleanly.
    """

    def __init__(self, choices: Sequence[int]):
        self.choices = list(choices)
        self.steps: list[ScheduleStep] = []
        self._cursor = 0

    def begin_run(self, scheduler: "DeterministicScheduler") -> None:
        self._cursor = 0
        self.steps = []

    def choose(
        self, ready: Sequence["Session"], scheduler: "DeterministicScheduler"
    ) -> "Session":
        if self._cursor < len(self.choices):
            want = self.choices[self._cursor]
            self._cursor += 1
            for session in ready:
                if session.index == want:
                    return session
            raise ScheduleDivergenceError(
                f"replay step {self._cursor - 1}: session #{want} is not "
                f"READY (ready: {sorted(s.index for s in ready)}) — the "
                "schedule was recorded against a different program"
            )
        return min(ready, key=lambda s: s.index)

    def observe(self, step: ScheduleStep) -> None:
        self.steps.append(step)


class ControlledPolicy(SchedulePolicy):
    """The explorer's driver: forced prefix, then first-ready, recording.

    Identical choice behaviour to :class:`ReplayPolicy` (so an emitted
    SCHEDULE_ID and the exploration run that produced it are the same
    schedule), but divergence inside the forced prefix is still a hard
    error — the explorer only ever re-runs prefixes it already saw, so
    divergence means the workload is nondeterministic.
    """

    def __init__(self, prefix: Sequence[int] = ()):
        self.prefix = list(prefix)
        self.steps: list[ScheduleStep] = []
        self._cursor = 0

    def begin_run(self, scheduler: "DeterministicScheduler") -> None:
        self._cursor = 0
        self.steps = []

    def choose(
        self, ready: Sequence["Session"], scheduler: "DeterministicScheduler"
    ) -> "Session":
        if self._cursor < len(self.prefix):
            want = self.prefix[self._cursor]
            self._cursor += 1
            for session in ready:
                if session.index == want:
                    return session
            raise ScheduleDivergenceError(
                f"exploration prefix step {self._cursor - 1}: session "
                f"#{want} is not READY "
                f"(ready: {sorted(s.index for s in ready)}) — "
                "the workload under exploration is nondeterministic"
            )
        return min(ready, key=lambda s: s.index)

    def observe(self, step: ScheduleStep) -> None:
        self.steps.append(step)

    @property
    def schedule(self) -> list[int]:
        return [step.chosen for step in self.steps]
