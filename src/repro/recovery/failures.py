"""Crash injection.

The paper evaluates recovery by killing processes; its correctness
argument (Section 2.2 / Figure 2) enumerates three failure points of a
component serving a call:

1. before its outgoing call (message 3) is sent;
2. after message 3 is sent but before its reply (message 2) is sent;
3. after message 2 is sent.

The injector arms one-shot crashes at named pipeline points which the
runtime fires as execution passes them:

==============================  ====================================
point                           where in the pipeline
==============================  ====================================
``incoming.before_log``         message 1 arrived, nothing logged yet
``incoming.after_log``          message 1 logged per the algorithm
``method.before``               about to execute the method
``method.after``                method body finished
``outgoing.before_log``         message 3 built, nothing logged
``outgoing.before_send``        message 3 logged/forced, not sent
``reply_received.before_log``   message 4 arrived, not logged
``reply_received.after_log``    message 4 logged
``reply.before_send``           message 2 logged/forced, not sent
``reply.after_send``            message 2 delivered to the caller
==============================  ====================================

All points except ``reply.after_send`` raise a :class:`CrashSignal`
that the runtime converts to a process crash plus a recognized failure
exception at the caller.  ``reply.after_send`` crashes the process
silently — the caller already has the reply (Figure 2's third failure
point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, CrashSignal

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess

KNOWN_POINTS = frozenset(
    {
        "incoming.before_log",
        "incoming.after_log",
        "method.before",
        "method.after",
        "outgoing.before_log",
        "outgoing.before_send",
        "reply_received.before_log",
        "reply_received.after_log",
        "reply.before_send",
        "reply.after_send",
    }
)


@dataclass
class _ArmedCrash:
    process_name: str
    point: str
    countdown: int  # crash on the countdown-th matching fire


class CrashInjector:
    """One-shot, point-targeted process killer."""

    def __init__(self) -> None:
        self._armed: list[_ArmedCrash] = []
        self.fired: list[tuple[str, str]] = []  # (process, point) history

    def arm(
        self, process: Any, point: str, occurrence: int = 1
    ) -> None:
        """Crash ``process`` the ``occurrence``-th time execution passes
        ``point``.  ``process`` may be an AppProcess or its name."""
        if point not in KNOWN_POINTS:
            raise ConfigurationError(
                f"unknown crash point {point!r}; known points: "
                f"{sorted(KNOWN_POINTS)}"
            )
        if occurrence < 1:
            raise ConfigurationError("occurrence must be >= 1")
        name = process if isinstance(process, str) else process.name
        self._armed.append(_ArmedCrash(name, point, occurrence))

    def disarm_all(self) -> None:
        self._armed.clear()

    @property
    def armed_count(self) -> int:
        return len(self._armed)

    # ------------------------------------------------------------------
    # firing (called by the runtime)
    # ------------------------------------------------------------------
    def _match(self, point: str, process: "AppProcess") -> bool:
        for armed in self._armed:
            if armed.process_name != process.name or armed.point != point:
                continue
            armed.countdown -= 1
            if armed.countdown == 0:
                self._armed.remove(armed)
                self.fired.append((process.name, point))
                return True
            return False
        return False

    def fire(self, point: str, process: "AppProcess") -> None:
        """Raise a crash signal if a crash is due at this point."""
        if self._armed and self._match(point, process):
            signal = CrashSignal(process.name, point)
            signal.process = process  # the runtime crashes it on catch
            raise signal

    def fire_silent(self, point: str, process: "AppProcess") -> None:
        """Crash without unwinding (the reply already left)."""
        if self._armed and self._match(point, process):
            self.fired[-1] = (process.name, point)
            process.crash()
