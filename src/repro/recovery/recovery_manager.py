"""Recovery (paper Section 4.4 and Figure 5).

Process-crash recovery runs two passes over the stable log:

* **Pass 1** starts at the LSN in the well-known file (the last flushed
  process checkpoint), or at the beginning of the log.  It finds every
  context that existed at the crash, the latest state-record LSN (or
  creation LSN) of each, and seeds the global tables from the
  checkpoint's table records.  Contexts with state records are restored
  right after this pass (ordinary fields applied, component references
  resolved).

* **Pass 2** scans from the minimum recovery-start LSN to the end,
  buffering each context's message records until its next incoming call
  record; the buffered previous call is then replayed with its outgoing
  calls answered from the buffered replies.  After the scan, the
  remaining buffered calls — the last incoming call of each context —
  are replayed; if a reply to an outgoing call is missing from the log,
  the call is not suppressed and normal execution begins (the log has
  run dry).  Replay regenerates the last-call table; its replies are
  never sent (condition 5) — the caller's retry fetches them via
  duplicate detection.

Context-crash recovery is the easy case at the bottom: restore the
context's latest state record (or replay its creation) and replay only
that context's incoming calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..common.messages import MessageKind, MethodCallMessage, ReplyMessage
from ..core.context import Context
from ..core.interceptor import MessageInterceptor
from ..core.swizzle import unswizzle_for_message
from ..core.tables import ContextTableEntry, NO_LSN
from ..errors import RecoveryError
from ..faults import plane as faultplane
from ..log.records import (
    BeginCheckpointRecord,
    CheckpointContextTableRecord,
    CheckpointLastCallRecord,
    CheckpointRemoteTypeRecord,
    ContextStateRecord,
    CreationRecord,
    EndCheckpointRecord,
    LastCallReplyRecord,
    LogRecord,
    MessageRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess


@dataclass
class _ContextDiscovery:
    """What pass 1 learned about one context."""

    context_id: int
    creation_lsn: int = NO_LSN
    creation: CreationRecord | None = None
    state_lsn: int = NO_LSN
    state: ContextStateRecord | None = None
    #: The stream index whose scan found this context's records (0 for
    #: the legacy log; sharded logging keeps each context's records on
    #: exactly one stream, so the discovery rebuilds the routing table).
    stream: int = 0

    @property
    def start_lsn(self) -> int:
        return self.state_lsn if self.state_lsn != NO_LSN else self.creation_lsn


@dataclass
class _Pending:
    """A buffered call awaiting replay (Figure 5)."""

    order: int
    creation: CreationRecord | None = None
    message: MethodCallMessage | None = None
    replies: list[ReplyMessage] = field(default_factory=list)
    reply_sent: bool = False


class RecoveryManager:
    """Recovers one crashed process."""

    def __init__(self, process: "AppProcess"):
        self.process = process
        self.runtime = process.runtime
        self._pending: dict[int, _Pending] = {}
        self._order = 0
        # Per-stream reply watermarks (pass 1's scan starts).  Reply
        # records at or below a stream's watermark are already covered
        # by the checkpoint's last-call table record, so pass 2 rebuilds
        # the reply cache only from the suffix past it — on
        # recover-twice (crash during recovery) the whole-tail re-decode
        # is gone.  Stream 0's watermark is the published checkpoint
        # LSN; extra streams default to NO_LSN (their scans start at
        # their own truncation point, so re-seeding is already bounded).
        self._reply_watermarks: dict[int, int] = {}

    def _reply_floor(self, stream: int) -> int:
        return self._reply_watermarks.get(stream, NO_LSN)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def recover(self) -> None:
        process = self.process
        runtime = self.runtime
        name = process.name
        runtime.clock.advance(runtime.costs.runtime_init)
        for stream in process.streams:
            repaired = stream.log.repair_tail()
            # A torn write leaves partial frame bytes in the stable
            # file, so the crash mark taken at crash time (from the raw
            # file size) can sit past what repair just kept.  Re-mark at
            # the repaired boundary: records in the torn region are gone
            # and their LSNs will be reused.
            stream.trace.note_crash(repaired)
        # Durability watermarks (pipelined commit) are volatile state:
        # repair may have truncated torn frames below the crash-time
        # stable LSN, so clamp every session's watermark for this log to
        # the repaired boundary — they are rebuilt from fresh appends,
        # exactly like PendingRecovery.
        scheduler = getattr(runtime, "scheduler", None)
        if scheduler is not None and scheduler.active:
            scheduler.clamp_watermarks(process)
        # Pass-boundary crash sites: a second crash while recovery itself
        # is running must leave a log from which a fresh recovery still
        # reaches the same state (crash-during-recovery cascades).
        faultplane.site_hit(f"recovery.start:{name}", name)
        process.active_recovery = self

        try:
            discoveries = self._pass_one()
            faultplane.site_hit(f"recovery.pass1:{name}", name)
            self._restore_saved_contexts(discoveries)
            faultplane.site_hit(f"recovery.restored:{name}", name)
            if process.config.on_demand_recovery:
                # Analysis is done: admit new calls now and replay each
                # component lazily / in the background (incremental.py).
                self._admit_on_demand(discoveries)
            elif len(process.streams) > 1:
                # Sharded eager recovery: each stream's shard replays as
                # an independent drain (parallel sessions under the
                # scheduler, per-shard clock lanes in the serial
                # runtime), so recovery time scales with the largest
                # shard instead of the whole log.
                self._recover_shards(discoveries)
            else:
                self._pass_two(discoveries)
                faultplane.site_hit(f"recovery.pass2:{name}", name)
                self._drain_all()
                faultplane.site_hit(f"recovery.drained:{name}", name)
                # Make everything recovery produced (including effects
                # of live-continued calls) stable before declaring the
                # process recovered.
                process.log.force()
                faultplane.site_hit(f"recovery.done:{name}", name)
        finally:
            process.active_recovery = None
        if process.context_table:
            process._next_component_lid = max(process.context_table) + 1

    def _admit_on_demand(
        self, discoveries: dict[int, _ContextDiscovery]
    ) -> None:
        """On-demand admission: register a shell for every discovered
        context (so lookups resolve and log truncation keeps protecting
        their chains), install the per-component watermark table, and
        hand the remaining replay to lazy first-touch + background
        drain workers."""
        from .incremental import PendingRecovery

        process = self.process
        name = process.name
        for info in sorted(discoveries.values(), key=lambda d: d.context_id):
            if info.state is None:
                self._register_context(info)
        pending = PendingRecovery(self, discoveries)
        if pending.pending_count():
            process.pending_recovery = pending
        faultplane.site_hit(f"recovery.admit_early:{name}", name)
        if process.pending_recovery is pending:
            pending.spawn_workers()

    # ------------------------------------------------------------------
    # sharded eager recovery (config.sharded_logging)
    # ------------------------------------------------------------------
    def _recover_shards(
        self, discoveries: dict[int, _ContextDiscovery]
    ) -> None:
        """Replay each stream's shard as an independent drain.

        Replay rides on-demand recovery's per-component watermark table
        (each component's frame chain comes from its owning stream), so
        the two extensions compose.  Under the deterministic scheduler
        one drain session is spawned per shard and admission control
        covers the window until the last drain retires the table; in the
        serial runtime each shard replays as its own clock *lane* from
        the recovery start time and the clock then advances to the
        longest lane — recovery time scales with the largest shard.
        """
        from .incremental import PendingRecovery

        process = self.process
        name = process.name
        for info in sorted(discoveries.values(), key=lambda d: d.context_id):
            if info.state is None:
                self._register_context(info)
        pending = PendingRecovery(self, discoveries)
        faultplane.site_hit(f"recovery.pass2:{name}", name)
        scheduler = getattr(self.runtime, "scheduler", None)
        if (
            scheduler is not None
            and scheduler.active
            and scheduler.current_session() is not None
        ):
            if pending.pending_count():
                process.pending_recovery = pending
                pending.spawn_shard_workers()
            return
        self._drain_shard_lanes(pending, discoveries)
        faultplane.site_hit(f"recovery.drained:{name}", name)
        for stream in process.streams:
            stream.log.force()
        faultplane.site_hit(f"recovery.done:{name}", name)

    def _drain_shard_lanes(
        self,
        pending,
        discoveries: dict[int, _ContextDiscovery],
    ) -> None:
        """Serial-runtime shard drains: one clock lane per stream."""
        from .incremental import PENDING as PENDING_MARK

        process = self.process
        runtime = self.runtime
        name = process.name
        groups: dict[int, list[int]] = {}
        for info in discoveries.values():
            groups.setdefault(info.stream, []).append(info.context_id)
        clock = runtime.clock
        base = clock.now
        lanes: list[float] = []
        for index in sorted(groups):
            clock.rewind_to(base)
            for context_id in sorted(groups[index]):
                mark = pending.marks.get(context_id)
                if mark is not None and mark.status == PENDING_MARK:
                    pending._replay_component(mark)
            stream = process.streams[index]
            stream.log.force()
            lanes.append(clock.now - base)
            faultplane.site_hit(
                f"recovery.shard.drained:{stream.name}", name
            )
            runtime.sched_yield(f"recovery.shard:{name}")
        clock.rewind_to(base)
        if lanes:
            clock.advance(max(lanes))

    # ------------------------------------------------------------------
    # pass 1
    # ------------------------------------------------------------------
    def _pass_one(self) -> dict[int, _ContextDiscovery]:
        process = self.process
        discoveries: dict[int, _ContextDiscovery] = {}
        for index in range(len(process.streams)):
            self._scan_stream(index, discoveries)
        # The crash wiped the in-memory routing table; the discoveries
        # rebuild it — every context maps back to the stream its records
        # were found on, so replay appends route exactly as the original
        # run did.
        for info in discoveries.values():
            process.assign_stream(info.context_id, info.stream)
        self._materialize_pointers(discoveries)
        return discoveries

    def _scan_stream(
        self, index: int, discoveries: dict[int, _ContextDiscovery]
    ) -> None:
        process = self.process
        log = process.streams[index].log
        published = log.read_well_known_lsn()
        start = published or 0
        if index == 0:
            # Stream 0's well-known LSN is the published checkpoint;
            # extra streams publish their truncation point instead (the
            # scan anchor), which covers no last-call entries.
            self._reply_watermarks[0] = (
                NO_LSN if published is None else published
            )

        def discovery(context_id: int) -> _ContextDiscovery:
            if context_id not in discoveries:
                discoveries[context_id] = _ContextDiscovery(context_id)
            return discoveries[context_id]

        for lsn, record in log.scan(start):
            if isinstance(record, CreationRecord):
                info = discovery(record.context_id)
                info.stream = index
                info.creation_lsn = lsn
                info.creation = record
            elif isinstance(record, ContextStateRecord):
                info = discovery(record.context_id)
                info.stream = index
                if lsn > info.state_lsn:
                    info.state_lsn = lsn
                    info.state = record
            elif isinstance(record, CheckpointContextTableRecord):
                for entry in record.entries:
                    info = discovery(entry.context_id)
                    if info.creation_lsn == NO_LSN:
                        info.creation_lsn = entry.creation_lsn
                    if entry.state_record_lsn > info.state_lsn:
                        info.state_lsn = entry.state_record_lsn
                        info.state = None  # read lazily below
            elif isinstance(record, CheckpointRemoteTypeRecord):
                for uri, component_type in record.entries:
                    process.remote_types.seed(uri, component_type)
            elif isinstance(record, CheckpointLastCallRecord):
                for entry in record.entries:
                    process.last_calls.seed(
                        entry.caller_key,
                        entry.call_id,
                        NO_LSN,
                        reply_lsn=entry.reply_lsn,
                    )
            # Message, last-call-reply and begin/end checkpoint records
            # are pass-2 material.

    def _materialize_pointers(
        self, discoveries: dict[int, _ContextDiscovery]
    ) -> None:
        # Materialize records the checkpoint only pointed at.  A context
        # with a state record does not need its creation record — the
        # state record carries identity and class information — which is
        # what lets log garbage collection reclaim old creation records.
        # Pointer LSNs live in the owning stream's LSN space; every
        # pointed-at record survives truncation (the truncation point
        # never passes a recovery-start LSN), so the owning stream's own
        # scan has already assigned ``info.stream``.
        for info in discoveries.values():
            log = self.process.streams[info.stream].log
            if info.state_lsn != NO_LSN and info.state is None:
                record = log.read_record(info.state_lsn)
                if not isinstance(record, ContextStateRecord):
                    raise RecoveryError(
                        f"checkpoint points at LSN {info.state_lsn}, which "
                        "is not a context state record"
                    )
                info.state = record
            if info.creation is None and info.state is None:
                if info.creation_lsn == NO_LSN:
                    raise RecoveryError(
                        f"context {info.context_id} has neither a creation "
                        "record nor a state record on the log"
                    )
                record = log.read_record(info.creation_lsn)
                if not isinstance(record, CreationRecord):
                    raise RecoveryError(
                        f"LSN {info.creation_lsn} is not a creation record"
                    )
                info.creation = record

    # ------------------------------------------------------------------
    # restore contexts that have state records
    # ------------------------------------------------------------------
    def _restore_saved_contexts(
        self, discoveries: dict[int, _ContextDiscovery]
    ) -> None:
        from ..checkpoint.state_record import restore_context_state

        for info in sorted(discoveries.values(), key=lambda d: d.context_id):
            if info.state is None:
                continue
            context = self._register_context(info)
            # Reading the creation record, creating the object shell and
            # registering it costs the same as the creation path; the
            # state restore is charged inside restore_context_state.
            self.runtime.clock.advance(self.runtime.costs.object_creation)
            restore_context_state(self.process, context, info.state)

    def _register_context(self, info: _ContextDiscovery) -> Context:
        """Materialize the Context shell from the creation record, or —
        when the creation record was garbage-collected — from the state
        record's identity information."""
        process = self.process
        if info.creation is not None:
            uri = info.creation.uri
            component_type = info.creation.component_type
        else:
            state = info.state
            assert state is not None and state.snapshots
            uri = state.uri
            component_type = state.snapshots[0].component_type
        context = Context(
            process,
            info.context_id,
            uri,
            component_type,
        )
        process.context_table[info.context_id] = ContextTableEntry(
            context_id=info.context_id,
            uri=uri,
            state_record_lsn=info.state_lsn,
            creation_lsn=info.creation_lsn,
            context_ref=context,
        )
        return context

    # ------------------------------------------------------------------
    # pass 2
    # ------------------------------------------------------------------
    def _pass_two(self, discoveries: dict[int, _ContextDiscovery]) -> None:
        if not discoveries:
            return
        process = self.process
        start = min(info.start_lsn for info in discoveries.values())
        skip_before = {
            info.context_id: info.state_lsn for info in discoveries.values()
        }

        for lsn, record in process.log.scan(start):
            context_id = record.context_id
            threshold = skip_before.get(context_id, NO_LSN)
            if threshold != NO_LSN and lsn <= threshold:
                continue  # earlier than the restored state record
            if isinstance(
                record,
                (
                    BeginCheckpointRecord,
                    EndCheckpointRecord,
                    CheckpointContextTableRecord,
                    CheckpointRemoteTypeRecord,
                    CheckpointLastCallRecord,
                    ContextStateRecord,
                ),
            ):
                continue
            if isinstance(record, CreationRecord):
                info = discoveries.get(context_id)
                if info is not None and info.state is not None:
                    continue  # restored from a later state record
                self._register_context(
                    discoveries.get(context_id)
                    or _ContextDiscovery(
                        context_id, creation_lsn=lsn, creation=record
                    )
                )
                self._pending[context_id] = _Pending(
                    order=self._next_order(), creation=record
                )
            elif isinstance(record, LastCallReplyRecord):
                floor = self._reply_floor(0)
                if floor != NO_LSN and lsn <= floor:
                    # Below the published checkpoint the checkpoint's
                    # own last-call record (pass 1) or a state-record
                    # restore already installed this entry with its
                    # reply LSN; a duplicate-detection hit reads the
                    # reply lazily.  Re-decoding the whole tail here
                    # made recover-twice rebuild the reply cache from
                    # scratch.
                    continue
                # The record was just decoded by the scan; caching the
                # reply object now means a later duplicate-detection hit
                # resolves from memory instead of re-reading the log.
                process.last_calls.seed(
                    record.caller_key,
                    record.call_id,
                    record.context_id,
                    reply=record.reply,
                    reply_lsn=lsn,
                )
            elif isinstance(record, MessageRecord):
                self._scan_message(context_id, lsn, record)

    def _scan_message(
        self, context_id: int, lsn: int, record: MessageRecord
    ) -> None:
        process = self.process
        if record.kind is MessageKind.INCOMING_CALL:
            message = record.message
            assert isinstance(message, MethodCallMessage)
            pending = self._pending.get(context_id)
            if pending is not None:
                del self._pending[context_id]
                self._replay(context_id, pending, final=False)
            self._pending[context_id] = _Pending(
                order=self._next_order(), message=message
            )
            if message.call_id is not None:
                client_type = MessageInterceptor.client_type_of(message)
                if client_type.is_persistent_family:
                    process.last_calls.seed(
                        message.call_id.caller_key,
                        message.call_id,
                        context_id,
                    )
        elif record.kind is MessageKind.REPLY_FROM_OUTGOING:
            pending = self._pending.get(context_id)
            if pending is None:
                # A reply whose incoming call predates this context's
                # replay window (restored state covers it).
                return
            assert isinstance(record.message, ReplyMessage)
            pending.replies.append(record.message)
        elif record.kind is MessageKind.REPLY_TO_INCOMING:
            pending = self._pending.get(context_id)
            if pending is not None:
                pending.reply_sent = True
            reply = record.message
            if (
                not record.short
                and isinstance(reply, ReplyMessage)
                and reply.call_id is not None
            ):
                # Cache the decoded reply alongside its LSN (same memory
                # profile as normal operation, where record_reply keeps
                # the reply object) so a retry never re-reads the log.
                process.last_calls.seed(
                    reply.call_id.caller_key,
                    reply.call_id,
                    context_id,
                    reply=reply,
                    reply_lsn=lsn,
                )
        # OUTGOING_CALL records (baseline only) are regenerated by replay.

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(
        self, context_id: int, pending: _Pending, final: bool
    ) -> None:
        process = self.process
        entry = process.context_table.get(context_id)
        if entry is None or entry.context_ref is None:
            raise RecoveryError(
                f"no context {context_id} registered for replay"
            )
        context = entry.context_ref
        context.enter_replay(pending.replies)
        try:
            if pending.creation is not None:
                self._replay_creation(context, pending.creation)
                reply = None
                client_type = None
                method_read_only = False
            else:
                message = pending.message
                assert message is not None
                reply = context.interceptor.invoke_for_replay(message)
                client_type = MessageInterceptor.client_type_of(message)
                from ..core.attributes import is_read_only_method

                method_read_only = is_read_only_method(
                    type(context.parent), message.method
                )
            leftovers = len(context.replay_replies)
            if leftovers:
                raise RecoveryError(
                    f"replay of context {context_id} left {leftovers} logged "
                    "replies unconsumed; the component did not re-execute "
                    "deterministically"
                )
        finally:
            if context.replaying:
                context.leave_replay()
        if final and reply is not None and not pending.reply_sent:
            # The paper's "proceeds to force log and send it": make the
            # fact of the reply durable per the active algorithm.  The
            # reply itself is never pushed (condition 5); a persistent
            # client's retry fetches it through duplicate detection.
            process.policy.on_reply_send(
                context, reply, client_type, method_read_only
            )

    def _replay_creation(
        self, context: Context, record: CreationRecord
    ) -> None:
        process = self.process
        runtime = self.runtime
        runtime.clock.advance(runtime.costs.object_creation)
        cls = runtime.registry.lookup(record.class_name)
        component = process._attach_instance(
            context, cls, record.component_lid, record.component_type
        )
        context.begin_incoming(None)
        runtime.push_context(context)
        try:
            component.__init__(
                *unswizzle_for_message(tuple(record.args), runtime)
            )
        finally:
            runtime.pop_context()
            context.end_incoming()
        context.incoming_calls_handled = 0

    def _drain_all(self) -> None:
        """Replay the remaining buffered calls — the last incoming call
        of every context — in log order."""
        while self._pending:
            context_id = min(
                self._pending, key=lambda cid: self._pending[cid].order
            )
            self.drain_context(context_id)

    def drain_context(self, context_id: int) -> None:
        """Finish a context's pending replay now.

        Called by the runtime when a live call (from another context's
        replay that went live) arrives at a context whose own replay has
        not run yet — the replay must complete first so duplicate
        detection finds the regenerated reply.
        """
        pending = self._pending.pop(context_id, None)
        if pending is not None:
            self._replay(context_id, pending, final=True)
        # The pending table is the synchronisation here: a session
        # admitted mid-recovery depends on the drain's effects without
        # ever acquiring the context, so the clock handoff must ride
        # the same state.  The drainer publishes; later callers that
        # find the context already drained inherit the drainer's clock.
        scheduler = getattr(self.runtime, "scheduler", None)
        if scheduler is not None and scheduler.active:
            entry = self.process.context_table.get(context_id)
            context = None if entry is None else entry.context_ref
            if context is not None:
                if pending is not None:
                    scheduler.publish_context(context)
                else:
                    scheduler.merge_context(context)


# ----------------------------------------------------------------------
# context-level recovery (paper Section 4.4, last paragraph)
# ----------------------------------------------------------------------
def recover_context(context: Context) -> None:
    """Recover a crashed context inside a live process."""
    from ..checkpoint.state_record import restore_context_state

    process = context.process
    runtime = context.runtime
    entry = process.context_table.get(context.context_id)
    if entry is None:
        raise RecoveryError(
            f"context {context.context_id} is not in the context table"
        )
    start = entry.recovery_start_lsn
    if start == NO_LSN:
        raise RecoveryError(
            f"context {context.context_id} has no creation or state record"
        )

    context.subordinates = {}
    context.parent = None
    context.next_outgoing_seq = 0
    context.incoming_calls_handled = 0

    pending: _Pending | None = None
    restored = False
    log = process.log_for(context.context_id)
    if entry.state_record_lsn != NO_LSN:
        record = log.read_record(entry.state_record_lsn)
        if not isinstance(record, ContextStateRecord):
            raise RecoveryError(
                f"LSN {entry.state_record_lsn} is not a state record"
            )
        runtime.clock.advance(runtime.costs.object_creation)
        restore_context_state(process, context, record)
        restored = True

    manager = RecoveryManager(process)
    for lsn, record in log.scan(start):
        if record.context_id != context.context_id:
            continue
        if restored and lsn <= entry.state_record_lsn:
            continue
        if isinstance(record, CreationRecord) and not restored:
            manager._pending[context.context_id] = _Pending(
                order=manager._next_order(), creation=record
            )
        elif isinstance(record, MessageRecord):
            manager._scan_message(context.context_id, lsn, record)
    context.crashed = False
    manager.drain_context(context.context_id)
    log.force()
