"""The per-machine recovery service (paper Section 2.4, Figure 4).

"All processes that host persistent components register at start time
with the Phoenix/App recovery service running on their machine.  The
recovery service monitors the abnormal exits of the registered processes
and restarts those processes.  It keeps the information of registered
processes in a table and force writes updates to the table to its log to
make the table persistent."

The service assigns the stable logical process IDs that form part of
every method-call ID; because the table is durable, a restarted process
gets the *same* logical PID, keeping regenerated call IDs identical
(condition 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import InvariantViolationError
from ..log.serialization import (
    Reader,
    Writer,
    begin_frame,
    end_frame,
    iter_frames,
    repair_framed_tail,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess
    from ..core.runtime import PhoenixRuntime
    from ..sim.machine import Machine


class RecoveryService:
    """One per machine; owns the durable process-registration table."""

    def __init__(self, machine: "Machine", runtime: "PhoenixRuntime"):
        self.machine = machine
        self.runtime = runtime
        self._table: dict[str, int] = {}  # process name -> logical pid
        self._next_pid = 1
        self._crashed: set[str] = set()

        log_name = "recovery-service.log"
        self._stable = machine.stable_store.open(log_name, create=True)
        if not machine.disk.has_file(log_name):
            machine.disk.create_file(log_name)
        self._disk_file = machine.disk.file(log_name)
        self._load_table()

    # ------------------------------------------------------------------
    # durable registration table
    # ------------------------------------------------------------------
    def _load_table(self) -> None:
        # A machine crash can tear the force-write of a registration
        # mid-frame; repair before reading, exactly like a process log.
        repair_framed_tail(self._stable)
        for __, payload, ___ in iter_frames(self._stable.read()):
            reader = Reader(payload)
            name = reader.text()
            pid = reader.signed()
            self._table[name] = pid
            self._next_pid = max(self._next_pid, pid + 1)

    def _persist_registration(self, name: str, pid: int) -> None:
        buffer = bytearray()
        header_at = begin_frame(buffer)
        writer = Writer(out=buffer)
        writer.text(name)
        writer.signed(pid)
        end_frame(buffer, header_at)
        self.machine.disk.write(self._disk_file, len(buffer))
        self._stable.append(buffer)

    def register(self, process: "AppProcess") -> int:
        """Assign (or re-assign after a restart) the logical PID."""
        existing = self._table.get(process.name)
        if existing is not None:
            return existing
        pid = self._next_pid
        self._next_pid += 1
        self._table[process.name] = pid
        self._persist_registration(process.name, pid)
        return pid

    def logical_pid_of(self, process_name: str) -> int:
        try:
            return self._table[process_name]
        except KeyError:
            raise InvariantViolationError(
                f"process {process_name!r} never registered on "
                f"{self.machine.name}"
            ) from None

    # ------------------------------------------------------------------
    # monitoring & restart
    # ------------------------------------------------------------------
    def on_crash(self, process: "AppProcess") -> None:
        """The monitored process exited abnormally."""
        self._crashed.add(process.name)

    def crashed_processes(self) -> list[str]:
        return sorted(self._crashed)

    def restart(self, process: "AppProcess") -> None:
        """Restart a crashed process and drive its recovery manager.

        The recovery service sends back the original process identity
        (the stable logical PID) and directs the recovery manager to
        recover (paper Section 4.4).
        """
        from ..core.process import ProcessState
        from .recovery_manager import RecoveryManager

        if process.state is not ProcessState.CRASHED:
            return
        process.begin_restart()
        process.logical_pid = self.logical_pid_of(process.name)
        RecoveryManager(process).recover()
        process.finish_recovery()
        self._crashed.discard(process.name)
