"""On-demand, REDO-only, parallel recovery (extension; ROADMAP item 2).

The paper's recovery (Section 4.4, Table 7) is stop-the-world: a crashed
process replays its whole log before admitting a single call, so
time-to-first-reply grows with log size.  Following Sauer & Härder's
instant restart and Lomet's performance-competitive logical recovery,
``config.on_demand_recovery`` splits recovery into:

1. **Analysis + admission** (:meth:`RecoveryManager.recover`): repair
   the tail, re-mark, seed the tables from the checkpoint, restore
   state-record contexts, register a shell for every discovered
   context — then leave RECOVERING.  New calls are admitted from here.

2. **Lazy replay**: the runtime consults this module's
   :class:`PendingRecovery` watermark table before delivering a call;
   a not-yet-recovered target component is replayed first, from its own
   frame chain in the log manager's per-component index
   (:meth:`LogManager.component_chains`), with the reply cache intact —
   exactly pass 2 restricted to one component.

3. **Background drain**: when the deterministic scheduler is active,
   ``config.recovery_drain_workers`` system sessions are spawned to
   replay the remaining components.  Workers claim components through
   the same watermark table, so lazy and background replay never
   double-apply, and scheduling stays seeded and byte-identical.

The watermark table is the single coordination point: every component
is ``PENDING`` (chain not applied), ``REPLAYING`` (owned by exactly one
session), or ``RECOVERED`` (``applied_lsn`` = the last LSN of its chain
that has been applied).  Admission decisions see a component's
watermark, never a global RECOVERING flag.  When the last mark turns
RECOVERED the table detaches itself from the process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.tables import NO_LSN
from ..errors import CrashSignal, RecoveryError
from ..faults import plane as faultplane
from ..log.records import (
    BeginCheckpointRecord,
    CheckpointContextTableRecord,
    CheckpointLastCallRecord,
    CheckpointRemoteTypeRecord,
    ContextStateRecord,
    CreationRecord,
    EndCheckpointRecord,
    LastCallReplyRecord,
    MessageRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess
    from .recovery_manager import RecoveryManager, _ContextDiscovery

PENDING = "pending"
REPLAYING = "replaying"
RECOVERED = "recovered"

_SKIP_KINDS = (
    BeginCheckpointRecord,
    EndCheckpointRecord,
    CheckpointContextTableRecord,
    CheckpointRemoteTypeRecord,
    CheckpointLastCallRecord,
    ContextStateRecord,
)


class ComponentWatermark:
    """One component's recovery progress."""

    __slots__ = (
        "context_id", "restored", "state_lsn", "chain", "status",
        "owner", "applied_lsn",
    )

    def __init__(
        self,
        context_id: int,
        restored: bool,
        state_lsn: int,
        chain: list[int],
    ):
        self.context_id = context_id
        self.restored = restored  # state record already applied
        self.state_lsn = state_lsn
        #: The LSNs of this component's not-yet-applied records, in log
        #: order (its frame chain past the restored state record).
        self.chain = chain
        self.status = PENDING
        #: Session index replaying this component (None = main thread),
        #: meaningful only while ``status == REPLAYING``.
        self.owner: int | None = None
        self.applied_lsn = NO_LSN

    def __repr__(self) -> str:
        return (
            f"ComponentWatermark(#{self.context_id}, {self.status}, "
            f"chain={len(self.chain)}, applied={self.applied_lsn})"
        )


class PendingRecovery:
    """The per-component recovery watermark table of one admitted (but
    not yet fully replayed) process incarnation."""

    def __init__(
        self,
        manager: "RecoveryManager",
        discoveries: dict[int, "_ContextDiscovery"],
    ):
        self.process: "AppProcess" = manager.process
        self.runtime = manager.runtime
        self.reply_watermarks = dict(manager._reply_watermarks)
        self.marks: dict[int, ComponentWatermark] = {}
        if not discoveries:
            return
        # Each component's frame chain comes from its owning stream's
        # per-component index (one stream under the flag-off runtime);
        # LSN spaces are per stream, so the scan window is too.
        starts: dict[int, int] = {}
        for info in discoveries.values():
            start = starts.get(info.stream, info.start_lsn)
            starts[info.stream] = min(start, info.start_lsn)
        chains_by_stream = {
            stream: self.process.streams[stream].log.component_chains(start)
            for stream, start in starts.items()
        }
        for info in discoveries.values():
            restored = info.state is not None
            chain = chains_by_stream[info.stream].get(info.context_id, [])
            if restored:
                tail = [lsn for lsn in chain if lsn > info.state_lsn]
            else:
                tail = [lsn for lsn in chain if lsn >= info.creation_lsn]
            mark = ComponentWatermark(
                info.context_id, restored, info.state_lsn, tail
            )
            if restored and not tail:
                # Nothing past the state record: the restore already
                # recovered this component in full.
                mark.status = RECOVERED
                mark.applied_lsn = info.state_lsn
            self.marks[info.context_id] = mark

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return sum(1 for m in self.marks.values() if m.status != RECOVERED)

    def component_recovered(self, context_id: int) -> bool:
        mark = self.marks.get(context_id)
        return mark is None or mark.status == RECOVERED

    def recovered_watermark(self, context_id: int) -> int:
        """The last applied LSN of a component's chain (NO_LSN while its
        replay has not completed)."""
        mark = self.marks.get(context_id)
        return NO_LSN if mark is None else mark.applied_lsn

    def start_lsns(self, stream: int = 0) -> list[int]:
        """Every not-yet-applied chain head on ``stream`` — log
        truncation must never reclaim these."""
        stream_index = self.process.stream_index
        return [
            m.chain[0]
            for m in self.marks.values()
            if m.status != RECOVERED
            and m.chain
            and stream_index(m.context_id) == stream
        ]

    def _scheduler(self):
        scheduler = self.runtime.scheduler
        if scheduler is None or not scheduler.active:
            return None
        return scheduler

    def _current_owner_key(self) -> int | None:
        scheduler = self._scheduler()
        if scheduler is None:
            return None
        session = scheduler.current_session()
        return None if session is None else session.index

    # ------------------------------------------------------------------
    # the admission rule
    # ------------------------------------------------------------------
    def ensure_component(self, context_id: int) -> None:
        """Called by the runtime before delivering a call: the target
        component's chain must be applied before the call can execute,
        so duplicate detection finds the regenerated reply.  Replays
        inline when the component is unclaimed; parks behind the owning
        session otherwise.  Re-entrant touches (the component's own
        replay going live into itself) are a no-op, mirroring eager
        recovery's ``drain_context``."""
        process = self.process
        mark = self.marks.get(context_id)
        if mark is None:
            return  # created after recovery; nothing to apply
        while True:
            if process.pending_recovery is not self:
                return  # table retired: drained, or a fresh crash
            if mark.status == RECOVERED:
                return
            if mark.status == PENDING:
                self._replay_component(mark)
                return
            # REPLAYING by someone; a re-entrant touch returns.
            if mark.owner == self._current_owner_key():
                return
            scheduler = self._scheduler()
            if scheduler is None:
                raise RecoveryError(
                    f"context {context_id} stuck {REPLAYING} with no "
                    "scheduler to wait on"
                )
            scheduler.block_until(
                lambda: mark.status == RECOVERED
                or process.pending_recovery is not self,
                tag=f"lazy-recovery:{process.name}#{context_id}",
            )

    # ------------------------------------------------------------------
    # per-component replay (pass 2 restricted to one frame chain)
    # ------------------------------------------------------------------
    def _replay_component(self, mark: ComponentWatermark) -> None:
        from .recovery_manager import RecoveryManager, _Pending

        process = self.process
        name = process.name
        context_id = mark.context_id
        mark.status = REPLAYING
        mark.owner = self._current_owner_key()
        faultplane.site_hit(f"recovery.lazy_replay.before:{name}", name)
        log = process.log_for(context_id)
        reply_floor = self.reply_watermarks.get(
            process.stream_index(context_id), NO_LSN
        )
        manager = RecoveryManager(process)
        manager._reply_watermarks = self.reply_watermarks
        for lsn in mark.chain:
            record = log.read_record(lsn)
            if isinstance(record, _SKIP_KINDS):
                continue
            if isinstance(record, CreationRecord):
                if mark.restored:
                    continue
                manager._pending[context_id] = _Pending(
                    order=manager._next_order(), creation=record
                )
            elif isinstance(record, LastCallReplyRecord):
                if reply_floor != NO_LSN and lsn <= reply_floor:
                    continue  # the checkpoint's table already covers it
                process.last_calls.seed(
                    record.caller_key,
                    record.call_id,
                    record.context_id,
                    reply=record.reply,
                    reply_lsn=lsn,
                )
            elif isinstance(record, MessageRecord):
                manager._scan_message(context_id, lsn, record)
        manager.drain_context(context_id)
        # Replay effects (regenerated records of live-continued calls)
        # become stable before the component is declared recovered —
        # the per-component equivalent of eager recovery's final force.
        log.force()
        faultplane.site_hit(f"recovery.lazy_replay.after:{name}", name)
        mark.applied_lsn = mark.chain[-1] if mark.chain else mark.state_lsn
        mark.status = RECOVERED
        mark.owner = None
        # Replay effects (including the live-continued tail call) bypass
        # context admission; publish the replayer's clock so the next
        # session admitted to this context is happens-after the replay.
        scheduler = self._scheduler()
        if scheduler is not None:
            entry = process.context_table.get(context_id)
            context = None if entry is None else entry.context_ref
            if context is not None:
                scheduler.publish_context(context)
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        process = self.process
        if process.pending_recovery is not self:
            return
        if all(m.status == RECOVERED for m in self.marks.values()):
            process.pending_recovery = None

    # ------------------------------------------------------------------
    # foreground drain (the full-recovery barrier)
    # ------------------------------------------------------------------
    def drain_all(self) -> None:
        """Replay every remaining component now (workloads, benchmarks
        and state capture need the fully recovered process)."""
        process = self.process
        while process.pending_recovery is self:
            mark = self._next_pending()
            if mark is not None:
                self._replay_component(mark)
                continue
            busy = [
                m for m in self.marks.values() if m.status == REPLAYING
            ]
            if not busy:
                self._maybe_finish()
                return
            scheduler = self._scheduler()
            if scheduler is None or scheduler.current_session() is None:
                raise RecoveryError(
                    "recovery marks stuck replaying with no scheduler "
                    "to wait on"
                )
            scheduler.block_until(
                lambda: process.pending_recovery is not self
                or not any(
                    m.status == REPLAYING for m in self.marks.values()
                ),
                tag=f"drain-all:{process.name}",
            )

    def _next_pending(self) -> ComponentWatermark | None:
        for context_id in sorted(self.marks):
            mark = self.marks[context_id]
            if mark.status == PENDING:
                return mark
        return None

    # ------------------------------------------------------------------
    # background drain workers
    # ------------------------------------------------------------------
    def spawn_workers(self) -> None:
        """Schedule the background drain as system sessions on the
        deterministic scheduler (no-op outside an active run: the
        serial runtime drains lazily and via ensure_recovered)."""
        scheduler = self._scheduler()
        if scheduler is None or scheduler.current_session() is None:
            return
        count = min(
            self.process.config.recovery_drain_workers,
            self.pending_count(),
        )
        for __ in range(count):
            scheduler.spawn(
                self._drain_worker, name=f"drain-{self.process.name}"
            )

    def spawn_shard_workers(self) -> None:
        """Sharded eager recovery: one drain session per shard.

        Each worker claims exactly its shard's components through the
        watermark table, so the shards replay as independent parallel
        drains and lazy first-touch admission covers the window until
        the last drain retires the table."""
        scheduler = self._scheduler()
        if scheduler is None or scheduler.current_session() is None:
            return
        process = self.process
        groups: dict[int, list[int]] = {}
        for context_id in self.marks:
            if self.marks[context_id].status == RECOVERED:
                continue
            groups.setdefault(
                process.stream_index(context_id), []
            ).append(context_id)
        for stream in sorted(groups):
            members = sorted(groups[stream])
            scheduler.spawn(
                lambda s=stream, m=members: self._drain_shard_worker(s, m),
                name=f"shard-drain-{process.streams[stream].name}",
            )

    def _drain_shard_worker(
        self, stream: int, members: list[int]
    ) -> None:
        process = self.process
        name = process.name
        # Hold a process frame for the whole drain: a replay's
        # live-continued call can park this session inside the process
        # with no boundary frame of its own, and a second crash while
        # parked must ghost the worker (stale CrashSignal on resume)
        # instead of letting it keep executing against the dead
        # incarnation's retired table.  The trailing shard-drained site
        # is a crash site too, so the whole drain shares one
        # CrashSignal boundary.
        scheduler = self._scheduler()
        pushed = scheduler is not None and scheduler.enter_process(process)
        try:
            for context_id in members:
                if process.pending_recovery is not self:
                    return
                mark = self.marks.get(context_id)
                if mark is None or mark.status != PENDING:
                    continue
                faultplane.site_hit(f"recovery.drain_worker:{name}", name)
                self._replay_component(mark)
                self.runtime.sched_yield(f"recovery.shard:{name}")
            faultplane.site_hit(
                f"recovery.shard.drained:{process.streams[stream].name}",
                name,
            )
        except CrashSignal as signal:
            target = getattr(signal, "process", None)
            if target is not None and not getattr(signal, "stale", False):
                target.crash()
        finally:
            if pushed:
                scheduler.exit_process()

    def _drain_worker(self) -> None:
        process = self.process
        name = process.name
        while process.pending_recovery is self:
            mark = self._next_pending()
            if mark is None:
                return
            try:
                faultplane.site_hit(f"recovery.drain_worker:{name}", name)
                self._replay_component(mark)
            except CrashSignal as signal:
                # The replay crashed a process (a one-shot fault spec,
                # or a cascade).  There is no process boundary above a
                # worker to convert the signal; handle it here and let
                # the table die with the crash.
                target = getattr(signal, "process", None)
                if target is not None and not getattr(
                    signal, "stale", False
                ):
                    target.crash()
                return
