"""Failure injection, the per-machine recovery service, and recovery."""

from .failures import KNOWN_POINTS, CrashInjector
from .recovery_manager import RecoveryManager, recover_context
from .recovery_service import RecoveryService

__all__ = [
    "KNOWN_POINTS",
    "CrashInjector",
    "RecoveryManager",
    "recover_context",
    "RecoveryService",
]
