"""Globally unique method-call IDs and component URIs.

Paper Section 2.3: the globally unique ID of a method call consists of the
caller's machine name, a logical process ID assigned by Phoenix/App on
that machine, a logical component ID within the process, and a local
method-call sequence number incremented for every outgoing call of the
component.  The logical IDs survive failures (the recovery service and
recovery manager reassign the same ones), so IDs regenerated during replay
are identical to the originals — condition 2 of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvariantViolationError

_URI_SCHEME = "phoenix://"


@dataclass(frozen=True, order=True)
class GlobalCallId:
    """The four-part globally unique method-call ID."""

    machine: str
    process_lid: int
    component_lid: int
    seq: int

    @property
    def caller_key(self) -> tuple[str, int, int]:
        """The first three parts — the last-call table index
        (paper Section 2.3: entries are 'indexed by the first three
        parts of the ID')."""
        return (self.machine, self.process_lid, self.component_lid)

    def next(self) -> "GlobalCallId":
        """The ID of the caller's next outgoing call."""
        return GlobalCallId(
            self.machine, self.process_lid, self.component_lid, self.seq + 1
        )

    def __str__(self) -> str:
        return (
            f"{self.machine}/{self.process_lid}"
            f"/{self.component_lid}#{self.seq}"
        )


@dataclass(frozen=True)
class ComponentRef:
    """A serializable reference to a component, by URI.

    Component fields holding proxies are swizzled to ``ComponentRef``
    when a context state record is saved (paper Section 4.2: 'for a
    remote component reference, we save the component URI') and resolved
    back to live proxies when the state is restored.
    """

    uri: str

    def __str__(self) -> str:
        return self.uri


@dataclass(frozen=True)
class LocalRef:
    """A reference to a component in the *same* context, by component ID.

    Paper Section 4.2: 'for a local component reference (to a component
    in the same context), we store the component ID'.
    """

    component_lid: int


def component_uri(machine: str, process: str, component_lid: int) -> str:
    """Build the canonical URI of a component."""
    return f"{_URI_SCHEME}{machine}/{process}/{component_lid}"


def parse_uri(uri: str) -> tuple[str, str, int]:
    """Split a component URI into (machine, process, component_lid)."""
    if not uri.startswith(_URI_SCHEME):
        raise InvariantViolationError(f"not a phoenix URI: {uri!r}")
    body = uri[len(_URI_SCHEME):]
    parts = body.split("/")
    if len(parts) != 3:
        raise InvariantViolationError(f"malformed phoenix URI: {uri!r}")
    machine, process, lid_text = parts
    try:
        lid = int(lid_text)
    except ValueError:
        raise InvariantViolationError(f"malformed phoenix URI: {uri!r}") from None
    return machine, process, lid
