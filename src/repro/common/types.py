"""Component kinds.

The paper's taxonomy (Sections 2 and 3.2):

* **external** — unspecified components; Phoenix/App takes no actions and
  makes no guarantees for them.
* **persistent** — stateful; state recovered via redo of logged messages.
* **subordinate** — persistent, but placed in its parent's context and
  only callable from the parent and sibling subordinates; its calls cross
  no context boundary and are never intercepted or logged.
* **functional** — stateless and pure; may call only functional
  components; nothing is logged on either side of its calls.
* **read-only** — stateless but may *read* persistent components; its
  replies are not repeatable, so a persistent caller logs (without
  forcing) the reply message.

Two extra kinds model the native-.NET baseline rows of Table 4 — plain
remotable objects with no Phoenix/App involvement, with and without
message interceptors installed:

* **marshal_by_ref** — a plain ``MarshalByRefObject``.
* **context_bound** — a plain ``ContextBoundObject``.
"""

from __future__ import annotations

import enum


class ComponentType(enum.Enum):
    EXTERNAL = "external"
    PERSISTENT = "persistent"
    SUBORDINATE = "subordinate"
    FUNCTIONAL = "functional"
    READ_ONLY = "read_only"
    MARSHAL_BY_REF = "marshal_by_ref"
    CONTEXT_BOUND = "context_bound"

    @property
    def is_persistent_family(self) -> bool:
        """Does Phoenix/App recover this component's state?"""
        return self in (ComponentType.PERSISTENT, ComponentType.SUBORDINATE)

    @property
    def is_stateless(self) -> bool:
        """Stateless kinds need no recovery and keep no last-call entries."""
        return self in (ComponentType.FUNCTIONAL, ComponentType.READ_ONLY)

    @property
    def is_phoenix(self) -> bool:
        """Is this component managed by the Phoenix/App runtime at all?"""
        return self not in (
            ComponentType.EXTERNAL,
            ComponentType.MARSHAL_BY_REF,
            ComponentType.CONTEXT_BOUND,
        )

    @property
    def attaches_call_id(self) -> bool:
        """Does a caller of this kind attach globally unique call IDs?

        Persistent-family callers do (condition 2).  Read-only callers do
        not need duplicate detection (Section 3.2.3) but still use IDs so
        their outgoing calls can be correlated; the paper says last-call
        tables are not *maintained at* read-only components, and no
        last-call entries are kept *for* them — both hold here.
        """
        return self.is_phoenix

    @property
    def wire_value(self) -> str:
        return self.value

    @classmethod
    def from_wire(cls, value: str) -> "ComponentType":
        return cls(value)
