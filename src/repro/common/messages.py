"""The four message kinds of paper Figure 1.

A component sees: (1) an incoming method call, (2) its reply to that
call, (3) an outgoing method call it makes while serving, and (4) the
reply from that outgoing call.  Messages 1 and 3 are
:class:`MethodCallMessage`; messages 2 and 4 are :class:`ReplyMessage` —
which of the four roles a message plays depends on which side of the
context boundary the interceptor sees it (paper Section 2.3).

Messages optionally carry a :class:`SenderInfo` attachment describing the
sender's component type (paper Section 3.4), which is how interceptors
learn remote component types.  Section 5.2.3's optimization is modelled
by ``knows_receiver``: when a caller already knows the server's type it
says so, and the server omits the attachment in its reply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .ids import GlobalCallId
from .types import ComponentType


class MessageKind(enum.Enum):
    """Which of Figure 1's four arrows a message is."""

    INCOMING_CALL = 1  # message 1: incoming method call
    REPLY_TO_INCOMING = 2  # message 2: reply to the incoming call
    OUTGOING_CALL = 3  # message 3: outgoing method call
    REPLY_FROM_OUTGOING = 4  # message 4: reply from the outgoing call


@dataclass(frozen=True)
class SenderInfo:
    """Attachment describing the sending (parent) component."""

    component_type: ComponentType
    component_uri: str
    # True when the sender already knows the receiver's type, letting the
    # receiver omit its own attachment in the reply (Section 5.2.3).
    knows_receiver: bool = False


@dataclass(frozen=True)
class MethodCallMessage:
    """A method-call message (message 1 or 3).

    ``call_id`` is ``None`` for calls from external components — the
    paper detects external callers exactly by the absence of the ID.
    ``method_read_only`` marks calls to methods declared with the
    read-only attribute (Section 3.3); the flag rides on the message so
    the server interceptor can choose Algorithm 5 without re-resolving
    the method.
    """

    target_uri: str
    method: str
    args: tuple = ()
    kwargs: tuple = ()  # sorted (name, value) pairs, hashable & stable
    call_id: GlobalCallId | None = None
    sender: SenderInfo | None = None
    method_read_only: bool = False

    @staticmethod
    def pack_kwargs(kwargs: dict) -> tuple:
        return tuple(sorted(kwargs.items()))

    def unpacked_kwargs(self) -> dict:
        return dict(self.kwargs)

    @property
    def is_external(self) -> bool:
        return self.call_id is None


@dataclass(frozen=True)
class ReplyMessage:
    """A reply message (message 2 or 4).

    Application exceptions are carried as data (``is_exception``) so the
    caller can re-raise them; they do not indicate component failure
    (paper Section 2.4).  ``method_read_only`` reports whether the
    invoked method carried the read-only attribute, letting the caller's
    interceptor learn it for future calls (Sections 3.3 and 3.4).
    """

    call_id: GlobalCallId | None
    value: object = None
    is_exception: bool = False
    exception_message: str = ""
    sender: SenderInfo | None = None
    method_read_only: bool = False
