"""Leaf definitions shared by the log and runtime layers.

These are the vocabulary types of the system — component kinds, globally
unique method-call IDs, component URIs, and the four message kinds of
paper Figure 1.  They import nothing from the rest of the library, which
keeps :mod:`repro.log` (which must serialize them) independent from
:mod:`repro.core` (which manipulates them).  The :mod:`repro.core`
package re-exports them as the documented public API.
"""

from .ids import ComponentRef, GlobalCallId, component_uri, parse_uri
from .messages import (
    MessageKind,
    MethodCallMessage,
    ReplyMessage,
    SenderInfo,
)
from .types import ComponentType

__all__ = [
    "ComponentRef",
    "GlobalCallId",
    "component_uri",
    "parse_uri",
    "ComponentType",
    "MessageKind",
    "MethodCallMessage",
    "ReplyMessage",
    "SenderInfo",
]
