"""Protocol-conformance analysis.

Two complementary checkers guard the paper's correctness arguments:

* :mod:`repro.analysis.lint` — a static (stdlib-``ast``) pass over
  component code that flags constructs breaking piece-wise determinism
  (paper Section 2) or bypassing the logging protocol (Algorithms 1-5).
  Rules are registered in :mod:`repro.analysis.rules` as ``PHX001``…
  and support inline ``# phx: disable=PHX00x`` suppression.
* :mod:`repro.analysis.trace_check` — a post-hoc checker that walks a
  finished :class:`~repro.log.log_manager.LogManager` stable stream
  together with the runtime's :class:`~repro.analysis.trace.ProtocolTrace`
  and asserts the commit conditions (``TRC101``…): sends only leave
  after a covering force, external message-1/2 records are forced in
  order, stateless components log nothing, and record sequences are
  replay-deterministic.

Entry points: the ``repro-analyze`` console script
(:mod:`repro.analysis.cli`), ``make lint``, and the autouse pytest
fixture in :mod:`repro.analysis.pytest_oracle` that turns every test's
logs into a conformance oracle.
"""

from .lint import Finding, lint_paths, lint_source
from .rules import RULES, Rule
from .trace import CrashMark, ProtocolTrace, TraceEvent
from .trace_check import (
    INVARIANTS,
    Violation,
    check_log,
    check_process,
    check_runtime,
    record_signature,
)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "RULES",
    "Rule",
    "CrashMark",
    "ProtocolTrace",
    "TraceEvent",
    "INVARIANTS",
    "Violation",
    "check_log",
    "check_process",
    "check_runtime",
    "record_signature",
]
