"""The conformance rule registry.

Each static lint rule (``PHX``) and each trace invariant (``TRC``) maps
back to the paper section or algorithm whose guarantee it protects; the
mapping is documented in ``docs/internals.md`` ("Protocol conformance
analysis").  Lint rules carry a fix-it message that the CLI prints next
to every finding.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One static lint rule."""

    rule_id: str
    title: str
    fixit: str
    paper_ref: str


_RULES = [
    Rule(
        "PHX001",
        "nondeterministic call in a component method",
        "derive the value deterministically (pass it in as an argument, "
        "or read it from the simulated clock/runtime)",
        "Section 2 (piece-wise determinism; replay must regenerate "
        "identical executions)",
    ),
    Rule(
        "PHX002",
        "direct file/socket/process I/O in a component method",
        "route external actions through a component call so the "
        "interceptor can log them; raw I/O is invisible to replay",
        "Sections 2 and 2.4 (interactions must be intercepted messages)",
    ),
    Rule(
        "PHX003",
        "iteration over an unordered set in a component method",
        "iterate a list, or wrap the set in sorted(...) so replay visits "
        "elements in the same order",
        "Section 2 (piece-wise determinism)",
    ),
    Rule(
        "PHX004",
        "stable-store or DurableLog write bypassing LogManager",
        "persist through the process's LogManager (process.log_append / "
        "log_force); ad-hoc stable writes escape recovery and "
        "truncation",
        "Section 4.1 (the log is the single stable representation)",
    ),
    Rule(
        "PHX005",
        "direct log append/force bypassing the policy force hook",
        "call process.log_append / process.log_force (which the "
        "LoggingPolicy and checkpointing drive) instead of touching "
        "process.log directly",
        "Algorithms 2/3 commit conditions (policy.py decides every "
        "force)",
    ),
    Rule(
        "PHX006",
        "stateless-declared component mutates its own state",
        "declare the class @persistent (or @subordinate), or remove the "
        "mutation: functional/read-only components are never recovered, "
        "so state written to them is silently lost on failure",
        "Sections 3.2.2/3.2.3 (functional and read-only components are "
        "stateless and log nothing)",
    ),
    Rule(
        "PHX007",
        "@read_only_method assigns to self",
        "drop the read-only attribute or the mutation: Algorithm 5 skips "
        "logging for read-only calls, so the mutation would not be "
        "replayed",
        "Section 3.3 (read-only methods must not change component "
        "state)",
    ),
    # PHX010-012 come from the whole-program inference engine
    # (repro-analyze infer), not the per-file lint pass.
    Rule(
        "PHX010",
        "declared component type is provably unsafe",
        "the finding message names the safe declaration; stateless and "
        "read-only components must never carry or write state the "
        "protocol would not recover",
        "Sections 3.1-3.3 (each type's safety argument; Algorithms 2-5 "
        "log strictly less for cheaper types)",
    ),
    Rule(
        "PHX011",
        "a provably safe cheaper component type is available",
        "downgrade the declaration as the finding message describes to "
        "save the quoted forces/records per call (or suppress with a "
        "pragma if the costlier type is deliberate)",
        "Sections 3.2-3.3, Table 8 (cheapest safe type wins the "
        "logging comparison)",
    ),
    Rule(
        "PHX012",
        "method eligible for @read_only_method marking",
        "mark the method @read_only_method so Algorithm 5 can skip the "
        "caller's force and the callee's log record (or suppress with "
        "a pragma if the marking is deliberately withheld)",
        "Section 3.3, Algorithms 4-5 (read-only call optimization)",
    ),
    # PHX013 comes from the durability-site coverage scan
    # (repro-analyze sites), not the per-file lint pass.
    Rule(
        "PHX013",
        "durability site family without a covering scheduler yield point",
        "register the site family under a yield tag in "
        "repro.concurrency.tags (YIELD_TAGS covers=...), add it to "
        "EXEMPT_SITE_FAMILIES with a rationale, or add a sched_yield "
        "at the boundary: the schedule explorer cannot interleave or "
        "crash-compose a boundary the scheduler never parks at",
        "Section 2.3 (crash points are the interesting schedule "
        "points; exploration must reach every durability boundary)",
    ),
    # PHX014-016 come from the shard/strategy planner
    # (repro-analyze plan), not the per-file lint pass.
    Rule(
        "PHX014",
        "declared logging strategy is statically suboptimal",
        "assign the strategy the finding names (the message prices the "
        "per-sweep force saving), or keep the override and accept the "
        "cost: the planner picks the cheapest strategy the safety "
        "lattice allows",
        "Section 3 cost model + Adaptive Logging (PAPERS.md): the "
        "priced per-component strategy choice beats any single global "
        "strategy",
    ),
    Rule(
        "PHX015",
        "hot cross-shard edge exceeds the shard-cut threshold",
        "co-shard the two components (they share a process signature, "
        "so the cut is avoidable), or raise --cut-threshold if the "
        "partition is deliberate",
        "Section 3.5 + ROADMAP item 1 (cross-log force traffic is the "
        "multi-log scale-out's unit of cost)",
    ),
    Rule(
        "PHX016",
        "deploy wiring disagrees with the committed log plan",
        "regenerate the committed plan (make plan-write) after wiring "
        "changes, or fix the apps/*/deploy wiring to match the planned "
        "placement",
        "ROADMAP item 1 (the plan is the contract the multi-log "
        "runtime implements against; drift silently unplans "
        "components)",
    ),
]

RULES: dict[str, Rule] = {rule.rule_id: rule for rule in _RULES}
