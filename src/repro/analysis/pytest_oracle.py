"""The pytest conformance oracle.

Importing ``protocol_conformance_oracle`` from a ``conftest.py`` turns
every test in that tree into a protocol-conformance check: after the
test body runs, the trace checker sweeps the logs of every runtime the
test created and fails the test on any commit-condition violation.  Mark
a test ``@pytest.mark.no_conformance_check`` to opt out (e.g. when it
deliberately corrupts a log).
"""

from __future__ import annotations

import pytest

from . import registry
from .trace_check import check_runtime


@pytest.fixture(autouse=True)
def protocol_conformance_oracle(request):
    token = registry.mark()
    yield
    if request.node.get_closest_marker("no_conformance_check") is not None:
        return
    lines = []
    for runtime in registry.runtimes_since(token):
        for process_name, violation in check_runtime(runtime):
            lines.append(f"  {process_name}: {violation.render()}")
    if lines:
        pytest.fail(
            "protocol conformance violations in this test's logs:\n"
            + "\n".join(lines),
            pytrace=False,
        )
