"""The pytest conformance oracle.

Importing ``protocol_conformance_oracle`` from a ``conftest.py`` turns
every test in that tree into a protocol-conformance check: after the
test body runs, the trace checker sweeps the logs of every runtime the
test created and fails the test on any commit-condition violation.
When committed :class:`~repro.analysis.plan.LogPlan` files are present
(``plans/*.logplan.json`` at the repo root; override the search with
the ``REPRO_LOG_PLANS`` environment variable, empty to disable), the
same sweep also replays each runtime's traces against the plans' force
budgets (TRC109), like TRC106 does for the raw cost model.  Mark a
test ``@pytest.mark.no_conformance_check`` to opt out (e.g. when it
deliberately corrupts a log).
"""

from __future__ import annotations

import pytest

from . import registry
from .trace_check import check_runtime


@pytest.fixture(autouse=True)
def protocol_conformance_oracle(request):
    token = registry.mark()
    yield
    if request.node.get_closest_marker("no_conformance_check") is not None:
        return
    from .plan import check_runtime_plan, committed_plans

    lines = []
    for runtime in registry.runtimes_since(token):
        for process_name, violation in check_runtime(runtime):
            lines.append(f"  {process_name}: {violation.render()}")
        for plan in committed_plans():
            for process_name, violation in check_runtime_plan(runtime, plan):
                lines.append(f"  {process_name}: {violation.render()}")
    if lines:
        pytest.fail(
            "protocol conformance violations in this test's logs:\n"
            + "\n".join(lines),
            pytrace=False,
        )
