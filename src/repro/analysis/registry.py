"""Weak registry of live runtimes, for the pytest conformance oracle.

:class:`~repro.core.runtime.PhoenixRuntime` registers itself here on
construction; the autouse fixture in :mod:`repro.analysis.pytest_oracle`
snapshots a token before each test and checks every runtime created
after it.  References are weak so the registry never extends a
runtime's lifetime (property-based tests create thousands).
"""

from __future__ import annotations

import weakref

_registered: "weakref.WeakValueDictionary[int, object]" = (
    weakref.WeakValueDictionary()
)
_next_token = 0


def register_runtime(runtime) -> None:
    global _next_token
    _registered[_next_token] = runtime
    _next_token += 1


def mark() -> int:
    """A token: runtimes registered after it are "since" it."""
    return _next_token


def runtimes_since(token: int) -> list:
    return [
        runtime
        for key, runtime in sorted(_registered.items())
        if key >= token
    ]
