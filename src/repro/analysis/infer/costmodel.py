"""Static force/record cost model — Algorithms 1-5 priced per call path.

Walks the interprocedural call tree rooted at each deployed component's
public methods (self-calls and subordinate calls stay in the caller's
context; proxied calls cross the interceptor) and charges every
intercepted edge the log records and forces the paper's algorithms
prescribe:

==============  =======================  ==========================
edge target     baseline (Algorithm 1)   optimized (Algorithms 2-5)
==============  =======================  ==========================
functional      4 records, 4 forces      nothing (Algorithm 4)
read-only       4 records, 4 forces      1 unforced record (msg 4)
persistent      4 records, 4 forces      2 records, 2 forces
==============  =======================  ==========================

(an unknown target is priced persistent, Section 3.4), and the entry
call from the external client 2 records / 2 forces (Algorithm 3) unless
the entry is stateless or the method is read-only-marked.  Section
3.5's multi-call rule is reported as a per-path saving: within one
context's execution, distinct server *processes* after the first need
no pre-send force.

Two consumers:

* :meth:`CostModel.report` — the machine-readable per-path prediction
  behind ``repro-analyze cost``;
* :meth:`CostModel.force_bounds` — the per-(process, entry-method)
  force/event ratio table the TRC106 trace cross-check replays
  observed :class:`~repro.analysis.trace.ProtocolTrace` spans against.

The TRC106 bound is deliberately *linear in observed events* rather
than a fixed count: loops and branches make the static event count
unknowable, but every intercepted call contributes at least two trace
events to its caller's span (messages 3 and 4) and at most
``ratio × events`` forces — 0 for read-only/functional targets, 1/2
for persistent ones.  ``bound = entry_forces + ratio × (events - 2)``
is therefore sound for any iteration count, and tight (ratio 0) on
read-only fan-outs, where an over-forcing policy is most visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import ProgramModel
from .engine import Engine

#: display rank; persistent (and unknown, priced the same) dominate
_CATEGORY_RANK = {"functional": 0, "read_only": 1, "unknown": 2,
                  "persistent": 3}

#: forces per trace event an intercepted edge may cost, by category
_RATIO = {"functional": 0.0, "read_only": 0.0, "unknown": 0.5,
          "persistent": 0.5}


@dataclass(frozen=True)
class Edge:
    """One intercepted call edge, in some context's execution."""

    context: str  #: class whose context issues the call
    method: str  #: callee method name
    targets: tuple[str, ...]  #: resolved callee classes ("?" = unknown)
    category: str  #: functional | read_only | persistent | unknown
    in_loop: bool
    lineno: int

    def to_dict(self) -> dict:
        return {
            "context": self.context,
            "method": self.method,
            "targets": list(self.targets),
            "category": self.category,
            "in_loop": self.in_loop,
            "line": self.lineno,
        }


@dataclass
class CallPathCost:
    """Predicted logging cost of one external invocation of
    ``entry.method()`` (loop edges priced for a single iteration)."""

    entry: str
    method: str
    processes: tuple[str, ...]
    exported: bool  #: instance escapes to the external client
    baseline_records: int
    baseline_forces: int
    optimized_records: int
    optimized_forces: int
    #: Section 3.5: forces saved per invocation when the multi-call
    #: optimization is on (distinct server processes after the first)
    multicall_saved_forces: int
    #: edges sitting inside loops: each extra iteration re-pays them
    loop_edges: int
    per_iteration_records: int
    per_iteration_forces: int
    edges: list[Edge] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "method": self.method,
            "processes": list(self.processes),
            "exported": self.exported,
            "baseline": {
                "records": self.baseline_records,
                "forces": self.baseline_forces,
            },
            "optimized": {
                "records": self.optimized_records,
                "forces": self.optimized_forces,
            },
            "multicall_saved_forces": self.multicall_saved_forces,
            "loop_edges": self.loop_edges,
            "per_extra_iteration": {
                "records": self.per_iteration_records,
                "forces": self.per_iteration_forces,
            },
            "edges": [edge.to_dict() for edge in self.edges],
        }


@dataclass(frozen=True)
class SpanBound:
    """Per-(process, entry-method) force bound for TRC106."""

    process: str
    method: str
    classes: tuple[str, ...]
    #: max forces-per-event ratio over reachable edges, with the
    #: read-only-method optimization on / off
    ratio_ro_on: float
    ratio_ro_off: float

    def to_dict(self) -> dict:
        return {
            "process": self.process,
            "method": self.method,
            "classes": list(self.classes),
            "ratio_ro_on": self.ratio_ro_on,
            "ratio_ro_off": self.ratio_ro_off,
        }


class ForceBounds:
    """Lookup table ``(process, entry method) -> SpanBound``."""

    def __init__(self) -> None:
        self._table: dict[tuple[str, str], SpanBound] = {}

    def add(self, bound: SpanBound) -> None:
        key = (bound.process, bound.method)
        existing = self._table.get(key)
        if existing is not None:
            bound = SpanBound(
                process=bound.process,
                method=bound.method,
                classes=tuple(sorted(
                    set(existing.classes) | set(bound.classes)
                )),
                ratio_ro_on=max(existing.ratio_ro_on, bound.ratio_ro_on),
                ratio_ro_off=max(
                    existing.ratio_ro_off, bound.ratio_ro_off
                ),
            )
        self._table[key] = bound

    def for_span(self, process: str, method: str) -> SpanBound | None:
        return self._table.get((process, method))

    def __len__(self) -> int:
        return len(self._table)

    def to_dict(self) -> dict:
        return {
            "bounds": [
                self._table[key].to_dict()
                for key in sorted(self._table)
            ],
        }


class CostModel:
    """Prices call paths over an :class:`Engine`'s facts and wiring."""

    def __init__(self, engine: Engine):
        self.engine = engine

    # -- edge collection ----------------------------------------------
    def collect_edges(
        self,
        class_name: str,
        method_name: str,
        ro_opt: bool = True,
        process: str | None = None,
    ) -> list[Edge]:
        """All intercepted edges reachable from one method execution.

        ``process`` restricts recursion across proxied edges to callees
        that may share that process (span mode: a cross-process callee's
        events land on its own trace, not the caller's).  ``None``
        recurses everywhere (whole-application cost mode).
        """
        out: list[Edge] = []
        self._collect(
            class_name, class_name, method_name, ro_opt, process,
            in_loop=False, seen=set(), out=out,
        )
        return out

    def _collect(
        self,
        ctx_class: str,
        impl_class: str,
        method_name: str,
        ro_opt: bool,
        process: str | None,
        in_loop: bool,
        seen: set,
        out: list[Edge],
    ) -> None:
        key = (impl_class, method_name)
        if key in seen:
            return
        seen.add(key)
        facts = self.engine.facts.get(impl_class)
        if facts is None:
            return
        method = facts.methods.get(method_name)
        if method is None:
            return
        for callee, loop in method.self_calls:
            self._collect(
                ctx_class, impl_class, callee, ro_opt, process,
                in_loop or loop, seen, out,
            )
        for call in method.out_calls:
            resolution = self.engine.resolve(facts, call.bases)
            loop = in_loop or call.in_loop
            # subordinate targets run inside this same context; their
            # calls are direct (no interception, no records)
            for sub in sorted(resolution.subordinate):
                self._collect(
                    ctx_class, sub, call.method, ro_opt, process,
                    loop, seen, out,
                )
            if not resolution.proxied and not resolution.unknown:
                continue
            category = self._category(resolution, call.method, ro_opt)
            out.append(Edge(
                context=ctx_class,
                method=call.method,
                targets=tuple(sorted(resolution.proxied)) or ("?",),
                category=category,
                in_loop=loop,
                lineno=call.lineno,
            ))
            for target in sorted(resolution.proxied):
                target_processes = self.engine.wiring.processes_for(
                    target
                )
                if (
                    process is not None
                    and target_processes
                    and process not in target_processes
                ):
                    continue  # span mode: callee logs on its own trace
                self._collect(
                    target, target, call.method, ro_opt, process,
                    loop, seen, out,
                )

    def _category(self, resolution, method_name: str, ro_opt: bool) -> str:
        categories: list[str] = []
        for target in resolution.proxied:
            info = self.engine.by_name.get(target)
            declared = info.effective_declared if info else None
            if declared == "functional":
                categories.append("functional")
                continue
            if declared == "read_only":
                categories.append("read_only")
                continue
            facts = self.engine.facts.get(target)
            method = facts.methods.get(method_name) if facts else None
            marked = bool(method is not None and method.read_only_marked)
            categories.append(
                "read_only" if (marked and ro_opt) else "persistent"
            )
        if resolution.unknown:
            categories.append("unknown")
        if not categories:
            return "unknown"
        return max(categories, key=lambda c: _CATEGORY_RANK[c])

    # -- per-edge pricing ---------------------------------------------
    def _declared(self, class_name: str) -> str | None:
        info = self.engine.by_name.get(class_name)
        return info.effective_declared if info else None

    def _edge_cost_optimized(self, edge: Edge) -> tuple[int, int]:
        """(records, forces) for one intercepted edge, both sides."""
        ctx_declared = self._declared(edge.context)
        if edge.category == "functional":
            return (0, 0)  # Algorithm 4: nothing either side
        if edge.category == "read_only":
            if ctx_declared in ("functional", "read_only"):
                return (0, 0)  # stateless caller logs nothing
            return (1, 0)  # Algorithm 5: unforced message-4 record
        # persistent or unknown target (Section 3.4: priced persistent)
        if ctx_declared == "read_only":
            # stateless caller logs nothing; the server sees a
            # read-only client and applies Algorithm 5 (nothing)
            return (0, 0)
        if ctx_declared == "functional":
            # caller logs nothing; the server still logs message 1
            # (unforced) and forces before its reply (Algorithm 2)
            return (1, 1)
        # persistent caller: msg 3 force + msg 4 record (client side),
        # msg 1 record + msg 2 force (server side)
        return (2, 2)

    # -- call-path pricing --------------------------------------------
    def entries(self) -> list[tuple[str, str]]:
        """(class, public method) pairs for every deployed component."""
        out: list[tuple[str, str]] = []
        deployed = (
            self.engine.wiring.instantiated_classes()
            & set(self.engine.by_name)
        )
        for class_name in sorted(deployed):
            facts = self.engine.facts[class_name]
            for method_name in sorted(facts.methods):
                if method_name.startswith("_"):
                    continue
                out.append((class_name, method_name))
        return out

    def path_cost(self, class_name: str, method_name: str) -> CallPathCost:
        edges = self.collect_edges(class_name, method_name, ro_opt=True)
        entry_declared = self._declared(class_name)
        facts = self.engine.facts[class_name]
        method = facts.methods[method_name]
        if entry_declared in ("functional", "read_only"):
            entry_records = entry_forces = 0  # Algorithms 4/5
        elif method.read_only_marked:
            entry_records = entry_forces = 0  # Algorithm 5
        else:
            entry_records = entry_forces = 2  # Algorithm 3
        opt_records, opt_forces = entry_records, entry_forces
        iter_records = iter_forces = 0
        for edge in edges:
            records, forces = self._edge_cost_optimized(edge)
            opt_records += records
            opt_forces += forces
            if edge.in_loop:
                iter_records += records
                iter_forces += forces
        # Section 3.5: per context execution, the pre-send force is
        # needed only for the first distinct server process
        saved = 0
        by_context: dict[str, set[str]] = {}
        for edge in edges:
            if edge.category not in ("persistent", "unknown"):
                continue
            if edge.in_loop:
                continue  # a loop may revisit a process: no static claim
            processes = by_context.setdefault(edge.context, set())
            for target in edge.targets:
                processes |= self.engine.wiring.processes_for(target)
        for processes in by_context.values():
            saved += max(0, len(processes) - 1)
        return CallPathCost(
            entry=class_name,
            method=method_name,
            processes=tuple(sorted(
                self.engine.wiring.processes_for(class_name)
            )),
            exported=self.engine.wiring.escapes(class_name),
            baseline_records=2 + 4 * len(edges),
            baseline_forces=2 + 4 * len(edges),
            optimized_records=opt_records,
            optimized_forces=opt_forces,
            multicall_saved_forces=saved,
            loop_edges=sum(1 for edge in edges if edge.in_loop),
            per_iteration_records=iter_records,
            per_iteration_forces=iter_forces,
            edges=edges,
        )

    def report(self) -> dict:
        return {
            "paths": [
                self.path_cost(class_name, method_name).to_dict()
                for class_name, method_name in self.entries()
            ],
        }

    # -- TRC106 bounds -------------------------------------------------
    def force_bounds(self) -> ForceBounds:
        bounds = ForceBounds()
        for class_name, method_name in self.entries():
            for process in sorted(
                self.engine.wiring.processes_for(class_name)
            ):
                ratios = []
                for ro_opt in (True, False):
                    edges = self.collect_edges(
                        class_name, method_name,
                        ro_opt=ro_opt, process=process,
                    )
                    ratios.append(max(
                        (_RATIO[edge.category] for edge in edges),
                        default=0.0,
                    ))
                bounds.add(SpanBound(
                    process=process,
                    method=method_name,
                    classes=(class_name,),
                    ratio_ro_on=ratios[0],
                    ratio_ro_off=ratios[1],
                ))
        return bounds


def build_cost_model(model: ProgramModel) -> CostModel:
    return CostModel(Engine(model))
