"""Fixpoint purity/escape classification of component classes.

Combines the per-class method facts (:mod:`.facts`) with the deployment
wiring (:mod:`.wiring`) to classify every component class into the
*cheapest safe* type per the paper's rules (Sections 3.1–3.3):

* definitely mutates ``self`` outside ``__init__`` ⇒ not stateless;
* stateless and every method is *write-free* (never writes another
  component, transitively) ⇒ ``read_only`` eligible (Algorithm 5);
* stateless with no component calls at all ⇒ ``functional`` eligible
  (Algorithm 4);
* created only via ``new_subordinate`` by a single parent, never
  handed to the external client ⇒ ``subordinate``.

Mutation is a *must* analysis (a PHX010 correctness finding needs
proof); write-freedom is a *may* analysis (an unresolvable call blocks
the downgrade, it never invents one).

Findings:

* **PHX010** — declared type provably unsafe (stateless declaration
  over mutating code, functional with component calls, read-only that
  writes through, subordinate reachable from several parents);
* **PHX011** — declared safe but a cheaper type is provably safe, with
  the per-call force saving (Algorithms 2 vs 4/5);
* **PHX012** — unmarked method of a persistent component is write-free
  and has an intercepted component caller: ``@read_only_method``
  eligible (Algorithm 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lint import Finding, sort_findings
from ..model import ClassInfo, ProgramModel
from .facts import ClassFacts, MethodFacts, Origin, OutCall, class_facts
from .wiring import Wiring, build_wiring

#: cheapest-first order the engine reports savings against
_COST_ORDER = ["functional", "read_only", "subordinate", "persistent"]


@dataclass
class Resolution:
    """Component classes a set of origins may denote."""

    proxied: set[str] = field(default_factory=set)  # via wiring/params
    subordinate: set[str] = field(default_factory=set)  # via new_subordinate
    unknown: bool = False
    data: bool = False  # some origin resolved to plain (non-component) data

    @property
    def classes(self) -> set[str]:
        return self.proxied | self.subordinate


@dataclass
class ClassReport:
    """Classification result for one component class."""

    info: ClassInfo
    declared: str | None
    inferred: str
    stateful: bool
    functional_eligible: bool
    read_only_eligible: bool
    processes: set[str]
    escaped: bool
    instantiated: bool
    subordinate_parents: set[str]
    agrees: bool
    write_free_methods: set[str] = field(default_factory=set)

    def to_dict(self) -> dict:
        return {
            "class": self.info.qualname,
            "path": self.info.module.path,
            "line": self.info.node.lineno,
            "declared": self.declared,
            "inferred": self.inferred,
            "stateful": self.stateful,
            "functional_eligible": self.functional_eligible,
            "read_only_eligible": self.read_only_eligible,
            "processes": sorted(self.processes),
            "escapes_to_client": self.escaped,
            "instantiated": self.instantiated,
            "subordinate_parents": sorted(self.subordinate_parents),
            "write_free_methods": sorted(self.write_free_methods),
            "agrees": self.agrees,
        }


@dataclass
class InferenceResult:
    reports: list[ClassReport]
    findings: list[Finding]
    wiring: Wiring
    facts: dict[str, ClassFacts]

    def report_for(self, name: str) -> ClassReport | None:
        for report in self.reports:
            if report.info.name == name or report.info.qualname == name:
                return report
        return None

    def to_dict(self) -> dict:
        return {
            "classes": [report.to_dict() for report in self.reports],
            "findings": [finding.to_dict() for finding in self.findings],
        }


class Engine:
    def __init__(self, model: ProgramModel):
        self.model = model
        self.wiring = build_wiring(model)
        #: bare name -> ClassInfo (component classes only)
        self.by_name: dict[str, ClassInfo] = {}
        for info in model.component_classes():
            self.by_name.setdefault(info.name, info)
        self.facts: dict[str, ClassFacts] = {
            name: class_facts(info) for name, info in self.by_name.items()
        }
        #: (class, method) -> write-free verdict (may-analysis)
        self._write_free: dict[tuple[str, str], bool] = {}
        #: (class, method) -> definitely-writes verdict (must-analysis)
        self._writes: dict[tuple[str, str], bool] = {}
        #: subordinate creations: child class -> parent classes
        self.sub_parents: dict[str, set[str]] = {}
        for name, facts in self.facts.items():
            for method in self._all_method_facts(facts):
                for child, _ in method.subordinate_creates:
                    self.sub_parents.setdefault(child, set()).add(name)

    @staticmethod
    def _all_method_facts(facts: ClassFacts) -> list[MethodFacts]:
        out = list(facts.methods.values())
        if facts.init is not None:
            out.append(facts.init)
        return out

    # -- origin resolution ---------------------------------------------
    def resolve(
        self,
        facts: ClassFacts,
        origins: frozenset[Origin] | set[Origin],
        _seen: frozenset | None = None,
    ) -> Resolution:
        seen = _seen or frozenset()
        result = Resolution()
        arg_classes = self.wiring.arg_classes_for(facts.info.name)
        instantiated = bool(self.wiring.sites_for(facts.info.name))
        for origin in origins:
            key = (facts.info.name, origin)
            if key in seen:
                continue
            inner = frozenset(seen | {key})
            if origin.kind == "param":
                if not instantiated:
                    result.unknown = True
                    continue
                classes = arg_classes.get(int(origin.ref), set())
                if classes:
                    result.proxied |= classes
                else:
                    result.data = True
            elif origin.kind == "attr":
                stored = facts.attr_origins.get(origin.ref)
                if stored is None:
                    if origin.ref in facts.class_attrs:
                        result.data = True
                    else:
                        result.unknown = True
                    continue
                if not stored:
                    # only ever assigned literals/expressions with no
                    # tracked origin: plain data (e.g. ``self.items = []``)
                    result.data = True
                    continue
                self._merge(
                    result, self.resolve(facts, stored, inner)
                )
            elif origin.kind == "sub":
                if origin.ref in self.by_name:
                    result.subordinate.add(origin.ref)
                else:
                    result.unknown = True
            elif origin.kind == "ret":
                method = facts.methods.get(origin.ref)
                if method is None:
                    result.unknown = True
                    continue
                if not method.returns:
                    result.data = True
                    continue
                self._merge(
                    result, self.resolve(facts, method.returns, inner)
                )
        return result

    @staticmethod
    def _merge(into: Resolution, other: Resolution) -> None:
        into.proxied |= other.proxied
        into.subordinate |= other.subordinate
        into.unknown = into.unknown or other.unknown
        into.data = into.data or other.data

    # -- mutation (must) ------------------------------------------------
    def mutates(self, class_name: str, method_name: str) -> bool:
        """Definitely mutates its own state (self-calls included)."""
        return self._mutates(class_name, method_name, frozenset())

    def _mutates(
        self, class_name: str, method_name: str, seen: frozenset
    ) -> bool:
        key = (class_name, method_name)
        if key in seen:
            return False
        facts = self.facts.get(class_name)
        if facts is None:
            return False
        method = facts.methods.get(method_name)
        if method is None:
            return False
        if method.mutates_self:
            return True
        for call in method.out_calls:
            if call.mutator and self.resolve(facts, call.bases).data:
                # in-place mutator on a data-holding own attribute
                return True
        return any(
            self._mutates(class_name, callee, seen | {key})
            for callee, _ in method.self_calls
        )

    def stateful(self, class_name: str) -> bool:
        facts = self.facts[class_name]
        return any(
            self.mutates(class_name, name) for name in facts.methods
        )

    # -- write-free (may) and definite-write fixpoints ------------------
    def run_fixpoints(self) -> None:
        keys = [
            (name, method)
            for name, facts in self.facts.items()
            for method in facts.methods
        ]
        # optimistic for write-free (greatest fixpoint): start True,
        # falsify until stable
        self._write_free = {key: True for key in keys}
        # pessimistic for definite writes (least fixpoint): start with
        # direct mutation, grow until stable
        self._writes = {
            key: self.mutates(*key) for key in keys
        }
        changed = True
        while changed:
            changed = False
            for key in keys:
                if self._write_free[key]:
                    if not self._check_write_free(*key):
                        self._write_free[key] = False
                        changed = True
                if not self._writes[key]:
                    if self._check_writes(*key):
                        self._writes[key] = True
                        changed = True

    def _check_write_free(self, class_name: str, method_name: str) -> bool:
        facts = self.facts[class_name]
        method = facts.methods[method_name]
        if self.mutates(class_name, method_name):
            return False
        if method.subordinate_creates:
            return False
        for callee, _ in method.self_calls:
            if not self._write_free.get((class_name, callee), False):
                return False
        for call in method.out_calls:
            resolution = self.resolve(facts, call.bases)
            if resolution.unknown:
                return False
            for target in resolution.classes:
                target_facts = self.facts.get(target)
                if target_facts is None or (
                    call.method not in target_facts.methods
                ):
                    return False
                if not self._write_free.get((target, call.method), False):
                    return False
        return True

    def _check_writes(self, class_name: str, method_name: str) -> bool:
        facts = self.facts[class_name]
        method = facts.methods[method_name]
        for callee, _ in method.self_calls:
            if self._writes.get((class_name, callee), False):
                return True
        for call in method.out_calls:
            resolution = self.resolve(facts, call.bases)
            for target in resolution.classes:
                if self._writes.get((target, call.method), False):
                    return True
        return False

    def write_free(self, class_name: str, method_name: str) -> bool:
        return self._write_free.get((class_name, method_name), False)

    # -- class-level eligibility ----------------------------------------
    def component_calls(self, class_name: str) -> list[tuple[str, OutCall, Resolution]]:
        """All out-calls of non-init methods that may reach components."""
        facts = self.facts[class_name]
        out = []
        for method_name, method in facts.methods.items():
            for call in method.out_calls:
                resolution = self.resolve(facts, call.bases)
                if resolution.classes or resolution.unknown:
                    out.append((method_name, call, resolution))
        return out

    def functional_eligible(self, class_name: str) -> bool:
        if self.stateful(class_name):
            return False
        facts = self.facts[class_name]
        for method in facts.methods.values():
            if method.subordinate_creates:
                return False
        for _, _, resolution in self.component_calls(class_name):
            if resolution.classes or resolution.unknown:
                return False
        return True

    def read_only_eligible(self, class_name: str) -> bool:
        if self.stateful(class_name):
            return False
        facts = self.facts[class_name]
        return all(
            self.write_free(class_name, name) for name in facts.methods
        )

    def subordinate_only(self, class_name: str) -> bool:
        """Created exclusively via ``new_subordinate`` (never deployed
        as a parent component, never handed to the client)."""
        return (
            class_name in self.sub_parents
            and not self.wiring.sites_for(class_name)
        )

    def infer_type(self, class_name: str) -> str:
        if self.subordinate_only(class_name):
            return "subordinate"
        if self.functional_eligible(class_name):
            return "functional"
        if self.read_only_eligible(class_name):
            return "read_only"
        return "persistent"


def run_inference(model: ProgramModel) -> InferenceResult:
    engine = Engine(model)
    engine.run_fixpoints()
    findings: list[Finding] = []
    class_reports: list[ClassReport] = []
    for name, info in sorted(engine.by_name.items()):
        instantiated = bool(engine.wiring.sites_for(name))
        sub_created = name in engine.sub_parents
        if info.effective_declared is None and not (
            instantiated or sub_created
        ):
            continue  # undecorated helper base, never deployed
        declared = info.effective_declared
        inferred = engine.infer_type(name)
        facts = engine.facts[name]
        report = ClassReport(
            info=info,
            declared=declared,
            inferred=inferred,
            stateful=engine.stateful(name),
            functional_eligible=engine.functional_eligible(name),
            read_only_eligible=engine.read_only_eligible(name),
            processes=engine.wiring.processes_for(name),
            escaped=engine.wiring.escapes(name),
            instantiated=instantiated,
            subordinate_parents=engine.sub_parents.get(name, set()),
            agrees=True,
            write_free_methods={
                m
                for m in facts.methods
                if engine.write_free(name, m)
            },
        )
        class_findings = _class_findings(engine, report)
        # a PHX010/PHX011 for this class means declared != cheapest safe
        report.agrees = not any(
            f.rule_id in ("PHX010", "PHX011") for f in class_findings
        )
        findings.extend(class_findings)
        class_reports.append(report)
    findings.extend(_method_findings(engine))
    sort_findings(findings)
    return InferenceResult(
        reports=class_reports,
        findings=findings,
        wiring=engine.wiring,
        facts=engine.facts,
    )


def _emit(
    findings: list[Finding],
    info: ClassInfo,
    rule_id: str,
    message: str,
    line: int | None = None,
    extra_lines: tuple[int, ...] = (),
) -> None:
    line = line if line is not None else info.node.lineno
    if info.module.suppressed(rule_id, line, *extra_lines):
        return
    findings.append(
        Finding(info.module.path, line, info.node.col_offset, rule_id, message)
    )


def _class_findings(engine: Engine, report: ClassReport) -> list[Finding]:
    out: list[Finding] = []
    info = report.info
    name = info.name
    declared = report.declared
    facts = engine.facts[name]

    if declared in ("functional", "read_only"):
        mutating = sorted(
            m for m in facts.methods if engine.mutates(name, m)
        )
        if mutating:
            _emit(
                out,
                info,
                "PHX010",
                f"@{declared} component {name} mutates self in "
                f"{', '.join(m + '()' for m in mutating)}; stateless "
                "components are never recovered, the writes are lost on "
                f"failure. Fix: declare {name} @persistent (or "
                "@subordinate) or remove the mutation",
            )
    if declared == "functional" and not report.stateful:
        calling = sorted(
            {
                f"{m}()"
                for m, _, res in engine.component_calls(name)
                if res.classes or res.unknown
            }
        )
        if calling:
            _emit(
                out,
                info,
                "PHX010",
                f"@functional component {name} calls other components "
                f"from {', '.join(calling)}; Algorithm 4 logs nothing, "
                "so replay would re-issue the calls against live state. "
                f"Fix: declare {name} @read_only (if the calls never "
                "write) or @persistent",
            )
    if declared == "read_only" and not report.stateful:
        writers = sorted(
            m
            for m in facts.methods
            if engine._writes.get((name, m), False)
        )
        if writers:
            _emit(
                out,
                info,
                "PHX010",
                f"@read_only component {name} writes other components "
                f"in {', '.join(m + '()' for m in writers)}; Algorithm 5 "
                "skips logging, so a crash could double-apply the "
                f"writes. Fix: declare {name} @persistent",
            )
    if declared == "subordinate":
        problems = []
        if report.instantiated:
            problems.append(
                "deployed via create_component as a parent component"
            )
        if report.escaped:
            problems.append("handed to the external client")
        if len(report.subordinate_parents) > 1:
            parents = ", ".join(sorted(report.subordinate_parents))
            problems.append(f"created by multiple parents ({parents})")
        if problems:
            _emit(
                out,
                info,
                "PHX010",
                f"@subordinate component {name} is "
                f"{'; '.join(problems)}; subordinates live inside one "
                "parent's context (Section 3.2.1). Fix: declare "
                f"{name} @persistent",
            )

    # downgrades — only for components declared at a costlier level
    if declared == "persistent":
        if report.functional_eligible:
            _emit(
                out,
                info,
                "PHX011",
                f"@persistent component {name} is stateless and calls "
                "no components: @functional is safe and saves, per "
                "call, the caller's Algorithm 2 pre-send force (~1 "
                "force) plus both call records (Algorithm 4 logs "
                "nothing on either side)",
            )
        elif report.read_only_eligible:
            _emit(
                out,
                info,
                "PHX011",
                f"@persistent component {name} is stateless and every "
                "method is write-free: @read_only is safe and saves, "
                "per call, the caller's Algorithm 2 pre-send force (~1 "
                "force); the caller logs only an unforced msg-4 record "
                "(Algorithm 5)",
            )
        elif report.instantiated and not report.escaped:
            callers = engine.wiring.static_callers_of(name)
            if len(callers) == 1 and engine.wiring.processes_for(
                name
            ) <= engine.wiring.processes_for(next(iter(callers))):
                # a subordinate lives inside its parent's context, so
                # the candidate must be co-deployed with the parent
                (parent,) = callers
                _emit(
                    out,
                    info,
                    "PHX011",
                    f"@persistent component {name} is reachable only "
                    f"from {parent}: subordinate candidate — calls "
                    "from its parent's context are never intercepted "
                    "or logged (Section 3.2.1)",
                )
    return out


def _method_findings(engine: Engine) -> list[Finding]:
    """PHX012: write-free methods of persistent components with an
    intercepted component caller, not yet marked ``@read_only_method``."""
    out: list[Finding] = []
    # (callee class, method) -> caller classes whose call is intercepted
    intercepted: dict[tuple[str, str], set[str]] = {}
    for caller, facts in engine.facts.items():
        info = engine.by_name[caller]
        if info.effective_declared is None and not engine.wiring.sites_for(
            caller
        ):
            continue
        for method_name, method in facts.methods.items():
            for call in method.out_calls:
                resolution = engine.resolve(facts, call.bases)
                for target in resolution.proxied:
                    intercepted.setdefault(
                        (target, call.method), set()
                    ).add(caller)
    for (target, method_name), callers in sorted(intercepted.items()):
        info = engine.by_name.get(target)
        facts = engine.facts.get(target)
        if info is None or facts is None:
            continue
        if info.effective_declared != "persistent":
            continue
        method = facts.methods.get(method_name)
        if method is None or method.read_only_marked:
            continue
        if method_name.startswith("_") or method_name == "__init__":
            continue
        if not engine.write_free(target, method_name):
            continue
        defining = _defining_class(info, method_name)
        _emit(
            out,
            defining,
            "PHX012",
            f"{target}.{method_name}() is write-free and is called "
            f"through a proxy by {', '.join(sorted(callers))}: marking "
            "it @read_only_method lets Algorithm 5 skip the caller's "
            "force and the callee's log record entirely",
            line=method.lineno,
        )
    return out


def _defining_class(info: ClassInfo, method_name: str) -> ClassInfo:
    if method_name in info.own_methods():
        return info
    for base in info.ancestors():
        if method_name in base.own_methods():
            return base
    return info
