"""Abstract interpretation of deployment wiring (``apps/*/deploy.py``).

The engine needs to know, statically, which component classes are
instantiated (``process.create_component(Cls, args=(...))``), in which
processes they live, and which component instances flow into which
constructor arguments — that is how a proxy stored as ``self.ledger``
resolves to a concrete callee class.

The interpreter walks every function of every module in the model (any
function that calls ``create_component``; it is not limited to files
named ``deploy.py``), tracking for each local variable a set of tokens:
component *classes*, created *instances*, and spawned *processes*.
Branches are unioned (``cls = A if flag else B`` instantiates both),
containers are transparent (a list/dict of instances carries its
elements), and loops are walked once with a multiplicity flag.

An instance that is returned, or passed to any call other than
``create_component``/``spawn_process`` (typically the app-handle
dataclass), *escapes*: the external client can reach it, which
disqualifies it from subordinate candidacy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..model import ClassInfo, ModuleInfo, ProgramModel, dotted_parts

#: builtins through which element tokens pass untouched
_TRANSPARENT = frozenset({
    "list", "dict", "tuple", "set", "frozenset", "sorted", "reversed",
    "enumerate", "zip",
})


@dataclass
class Instantiation:
    """One ``create_component`` site (possibly multi-class via IfExp)."""

    classes: set[str]
    processes: set[str]
    #: component class names flowing into each positional ``args`` slot
    arg_classes: list[set[str]]
    in_loop: bool
    module: str
    function: str
    lineno: int
    escaped: bool = False


@dataclass
class Wiring:
    """All statically discovered instantiations, with lookup views."""

    instantiations: list[Instantiation] = field(default_factory=list)

    def instantiated_classes(self) -> set[str]:
        out: set[str] = set()
        for site in self.instantiations:
            out |= site.classes
        return out

    def sites_for(self, class_name: str) -> list[Instantiation]:
        return [
            site
            for site in self.instantiations
            if class_name in site.classes
        ]

    def arg_classes_for(self, class_name: str) -> dict[int, set[str]]:
        """Union of component classes per constructor-arg index."""
        merged: dict[int, set[str]] = {}
        for site in self.sites_for(class_name):
            for index, classes in enumerate(site.arg_classes):
                merged.setdefault(index, set()).update(classes)
        return merged

    def processes_for(self, class_name: str) -> set[str]:
        out: set[str] = set()
        for site in self.sites_for(class_name):
            out |= site.processes
        return out

    def escapes(self, class_name: str) -> bool:
        return any(site.escaped for site in self.sites_for(class_name))

    def static_callers_of(self, class_name: str) -> set[str]:
        """Classes receiving an instance of ``class_name`` as a
        constructor argument (proxy-holding parents)."""
        out: set[str] = set()
        for site in self.instantiations:
            for classes in site.arg_classes:
                if class_name in classes:
                    out |= site.classes
        return out


# tokens: ("class", name) | ("inst", site_index) | ("proc", name)
_Token = tuple[str, object]


def build_wiring(model: ProgramModel) -> Wiring:
    wiring = Wiring()
    components = {info.name for info in model.component_classes()}
    for module in model.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _calls_create_component(node):
                    _FunctionInterp(
                        module, node, components, wiring
                    ).run()
    return wiring


def _calls_create_component(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    return any(
        isinstance(node, ast.Attribute)
        and node.attr == "create_component"
        for node in ast.walk(func)
    )


class _FunctionInterp:
    def __init__(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        components: set[str],
        wiring: Wiring,
    ):
        self.module = module
        self.func = func
        self.components = components
        self.wiring = wiring
        self.env: dict[str, set[_Token]] = {}
        self._proc_counter = 0

    def run(self) -> None:
        self._walk(self.func.body, in_loop=False)

    # -- statements ----------------------------------------------------
    def _walk(self, body: list[ast.stmt], in_loop: bool) -> None:
        for node in body:
            self._stmt(node, in_loop)

    def _stmt(self, node: ast.stmt, in_loop: bool) -> None:
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, in_loop)
            for target in node.targets:
                self._assign(target, value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign(node.target, self._eval(node.value, in_loop))
        elif isinstance(node, ast.AugAssign):
            self._eval(node.value, in_loop)
        elif isinstance(node, ast.Expr):
            self._eval(node.value, in_loop)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._escape(self._eval(node.value, in_loop))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            origins = self._eval(node.iter, in_loop)
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    self.env.setdefault(name.id, set()).update(origins)
            self._walk(node.body, True)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.While):
            self._walk(node.body, True)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.If):
            self._walk(node.body, in_loop)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.Try):
            self._walk(node.body, in_loop)
            for handler in node.handlers:
                self._walk(handler.body, in_loop)
            self._walk(node.orelse, in_loop)
            self._walk(node.finalbody, in_loop)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._eval(item.context_expr, in_loop)
            self._walk(node.body, in_loop)
        elif isinstance(node, ast.Raise) and node.exc is not None:
            self._eval(node.exc, in_loop)

    def _assign(self, target: ast.expr, value: set[_Token]) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(value)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                self._assign(element, value)
        elif isinstance(target, ast.Subscript):
            # managers[buyer_id] = <instance> — container accumulates
            self._assign_into(target.value, value)
        elif isinstance(target, ast.Attribute):
            # app.field = <instance> — treat like an escape via handle
            self._escape(value)

    def _assign_into(self, container: ast.expr, value: set[_Token]) -> None:
        if isinstance(container, ast.Name):
            self.env.setdefault(container.id, set()).update(value)

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr, in_loop: bool) -> set[_Token]:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return set(self.env[node.id])
            return self._class_token(node)
        if isinstance(node, ast.Attribute):
            return self._class_token(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node, in_loop)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body, in_loop) | self._eval(
                node.orelse, in_loop
            )
        if isinstance(node, ast.BoolOp):
            out: set[_Token] = set()
            for value in node.values:
                out |= self._eval(value, in_loop)
            return out
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self._eval(element, in_loop)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                if value is not None:
                    out |= self._eval(value, in_loop)
            return out
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                origins = self._eval(generator.iter, in_loop)
                for name in ast.walk(generator.target):
                    if isinstance(name, ast.Name):
                        self.env.setdefault(name.id, set()).update(origins)
            if isinstance(node, ast.DictComp):
                return self._eval(node.value, True)
            return self._eval(node.elt, True)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, in_loop)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, in_loop)
        return set()

    def _class_token(self, node: ast.expr) -> set[_Token]:
        parts = dotted_parts(node)
        if parts is not None and parts[-1] in self.components:
            return {("class", parts[-1])}
        return set()

    def _eval_call(self, node: ast.Call, in_loop: bool) -> set[_Token]:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "spawn_process":
                name = None
                if node.args and isinstance(node.args[0], ast.Constant):
                    if isinstance(node.args[0].value, str):
                        name = node.args[0].value
                if name is None:
                    self._proc_counter += 1
                    name = f"<proc-{self._proc_counter}>"
                return {("proc", name)}
            if func.attr == "create_component":
                return self._create_component(node, in_loop)
        if isinstance(func, ast.Name) and func.id in _TRANSPARENT:
            # transparent containers do NOT escape their elements
            out: set[_Token] = set()
            for arg in node.args:
                out |= self._eval(arg, in_loop)
            return out
        # Any other call: arguments escape to the outside world (the
        # app-handle dataclass, helper functions, ...).
        for arg in node.args:
            self._escape(self._eval(arg, in_loop))
        for keyword in node.keywords:
            self._escape(self._eval(keyword.value, in_loop))
        return set()

    def _create_component(
        self, node: ast.Call, in_loop: bool
    ) -> set[_Token]:
        assert isinstance(node.func, ast.Attribute)
        receiver = self._eval(node.func.value, in_loop)
        processes = {
            name for kind, name in receiver if kind == "proc"
        } or {"<unknown>"}
        classes: set[str] = set()
        if node.args:
            classes = {
                name
                for kind, name in self._eval(node.args[0], in_loop)
                if kind == "class"
            }
        arg_classes: list[set[str]] = []
        for keyword in node.keywords:
            if keyword.arg != "args":
                continue
            value = keyword.value
            elements = (
                value.elts if isinstance(value, ast.Tuple) else [value]
            )
            for element in elements:
                arg_classes.append(self._flatten_classes(element, in_loop))
        site = Instantiation(
            classes=classes,
            processes={str(p) for p in processes},
            arg_classes=arg_classes,
            in_loop=in_loop,
            module=self.module.name,
            function=self.func.name,
            lineno=node.lineno,
        )
        self.wiring.instantiations.append(site)
        return {("inst", len(self.wiring.instantiations) - 1)}

    def _flatten_classes(
        self, node: ast.expr, in_loop: bool
    ) -> set[str]:
        """Component classes among the tokens of one ``args`` slot."""
        out: set[str] = set()
        for kind, ref in self._eval(node, in_loop):
            if kind == "class":
                out.add(str(ref))
            elif kind == "inst":
                out |= self.wiring.instantiations[int(str(ref))].classes
        return out

    def _site_indexes(self, tokens: set[_Token]) -> list[int]:
        return [int(str(ref)) for kind, ref in tokens if kind == "inst"]

    def _escape(self, tokens: set[_Token]) -> None:
        for index in self._site_indexes(tokens):
            self.wiring.instantiations[index].escaped = True
