"""Per-class purity/escape facts for the inference engine.

For every component class (shared :class:`~repro.analysis.model.ClassInfo`,
inherited methods included) this module extracts, by walking the AST with
a tiny flow-insensitive abstract evaluator:

* which ``self`` attributes each method *mutates* (direct assignment,
  subscript stores, ``del``, augmented assignment, and mutator-method
  calls like ``self.items.append`` — the latter deferred to the engine,
  which knows whether the attribute holds data or component proxies);
* which *outgoing calls* each method makes, and on what the receiver
  expression is rooted (a constructor parameter, another attribute, a
  ``new_subordinate`` result, or another method's return value);
* which methods call which other methods of the same class; and
* what each method returns (as origins, so ``self._basket(b).add(...)``
  resolves through ``_basket``'s return value).

Origins form a small algebra resolved later against the deployment
wiring; containers are treated as transparent (an attribute holding a
list of proxies carries the same origins as one proxy), which
over-approximates — exactly what a safety analysis wants.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..model import ClassInfo, dotted_parts

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "extend", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
})

#: container accessors that return elements, not new state
ACCESSOR_METHODS = frozenset({"get", "items", "keys", "values", "copy"})

#: builtins through which element origins pass untouched
TRANSPARENT_CALLS = frozenset({
    "list", "dict", "tuple", "set", "frozenset", "sorted", "reversed",
    "enumerate", "zip",
})


@dataclass(frozen=True)
class Origin:
    """Where a value may come from.

    ``kind`` is one of ``param`` (constructor parameter, ``ref`` is its
    positional index as a string), ``attr`` (value of ``self.<ref>``),
    ``sub`` (a ``new_subordinate(<ref>)`` result), or ``ret`` (return
    value of the same class's method ``<ref>``).
    """

    kind: str
    ref: str

    def __repr__(self) -> str:  # compact in debug dumps
        return f"{self.kind}:{self.ref}"


@dataclass(frozen=True)
class OutCall:
    """A method call on a non-``self`` receiver."""

    bases: frozenset[Origin]
    method: str
    in_loop: bool
    mutator: bool  # method name is an in-place container mutator
    lineno: int


@dataclass
class MethodFacts:
    """Facts for one method body (inherited bodies re-analyzed per
    concrete class, so attribute origins reflect the subclass)."""

    name: str
    lineno: int
    read_only_marked: bool
    mutates_self: bool = False
    out_calls: list[OutCall] = field(default_factory=list)
    #: (callee name, in_loop) same-class calls
    self_calls: list[tuple[str, bool]] = field(default_factory=list)
    subordinate_creates: list[tuple[str, bool]] = field(default_factory=list)
    returns: set[Origin] = field(default_factory=set)


@dataclass
class ClassFacts:
    """Facts for one concrete component class."""

    info: ClassInfo
    class_attrs: set[str] = field(default_factory=set)
    #: self.<attr> -> union of origins ever stored there (container
    #: structure flattened)
    attr_origins: dict[str, set[Origin]] = field(default_factory=dict)
    #: __init__ parameter name -> positional index (0-based, after self)
    init_params: dict[str, int] = field(default_factory=dict)
    #: non-__init__ methods
    methods: dict[str, MethodFacts] = field(default_factory=dict)
    init: MethodFacts | None = None


def class_facts(info: ClassInfo) -> ClassFacts:
    facts = ClassFacts(info=info)
    for node in info.node.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    facts.class_attrs.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            facts.class_attrs.add(node.target.id)
    for base in info.ancestors():
        for node in base.node.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        facts.class_attrs.add(target.id)

    for name, method in info.all_methods().items():
        is_init = name == "__init__"
        if is_init:
            args = method.node.args
            for index, arg in enumerate(args.args[1:]):
                facts.init_params[arg.arg] = index
        extractor = _MethodExtractor(info, facts, method.node, is_init)
        method_facts = extractor.run()
        method_facts.read_only_marked = method.read_only
        method_facts.lineno = method.lineno
        if is_init:
            facts.init = method_facts
        else:
            facts.methods[name] = method_facts
    return facts


class _MethodExtractor:
    def __init__(
        self,
        info: ClassInfo,
        cls_facts: ClassFacts,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        is_init: bool,
    ):
        self.info = info
        self.cls = cls_facts
        self.func = func
        self.is_init = is_init
        self.env: dict[str, set[Origin]] = {}
        if is_init:
            for name, index in cls_facts.init_params.items():
                self.env[name] = {Origin("param", str(index))}
        self.facts = MethodFacts(
            name=func.name, lineno=func.lineno, read_only_marked=False
        )

    def run(self) -> MethodFacts:
        self._walk(self.func.body, in_loop=False)
        return self.facts

    # -- statements ----------------------------------------------------
    def _walk(self, body: list[ast.stmt], in_loop: bool) -> None:
        for node in body:
            self._stmt(node, in_loop)

    def _stmt(self, node: ast.stmt, in_loop: bool) -> None:
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, in_loop)
            for target in node.targets:
                self._assign(target, value, in_loop)
        elif isinstance(node, ast.AnnAssign):
            value = (
                self._eval(node.value, in_loop) if node.value else set()
            )
            self._assign(node.target, value, in_loop)
        elif isinstance(node, ast.AugAssign):
            self._eval(node.value, in_loop)
            if self._self_attr_root(node.target) is not None:
                self._mark_mutation()
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if self._self_attr_root(target) is not None:
                    self._mark_mutation()
        elif isinstance(node, ast.Expr):
            self._eval(node.value, in_loop)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.facts.returns |= self._eval(node.value, in_loop)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            origins = self._eval(node.iter, in_loop)
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    self.env.setdefault(name.id, set()).update(origins)
            self._walk(node.body, True)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.While):
            self._eval(node.test, in_loop)
            self._walk(node.body, True)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.If):
            self._eval(node.test, in_loop)
            self._walk(node.body, in_loop)
            self._walk(node.orelse, in_loop)
        elif isinstance(node, ast.Try):
            self._walk(node.body, in_loop)
            for handler in node.handlers:
                self._walk(handler.body, in_loop)
            self._walk(node.orelse, in_loop)
            self._walk(node.finalbody, in_loop)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._eval(item.context_expr, in_loop)
            self._walk(node.body, in_loop)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc, in_loop)
        # nested defs/classes are out of scope for component facts

    def _assign(
        self, target: ast.expr, value: set[Origin], in_loop: bool
    ) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(value)
            return
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._assign(element, value, in_loop)
            return
        attr = self._self_attr_root(target)
        if attr is not None:
            self.cls.attr_origins.setdefault(attr, set()).update(value)
            # storing into an existing attribute (or a slot of one)
            # outside __init__ mutates the component
            if not self.is_init:
                self._mark_mutation()

    def _mark_mutation(self) -> None:
        if not self.is_init:
            self.facts.mutates_self = True

    @staticmethod
    def _self_attr_root(node: ast.expr) -> str | None:
        """``self.X``, ``self.X[...]``, ``self.X[...][...]`` -> ``X``."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr, in_loop: bool) -> set[Origin]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return {Origin("attr", node.attr)}
            # deeper attribute chains on locals: pass the base through
            return self._eval(node.value, in_loop)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice, in_loop)
            return self._eval(node.value, in_loop)
        if isinstance(node, ast.Call):
            return self._eval_call(node, in_loop)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, in_loop)
            return self._eval(node.body, in_loop) | self._eval(
                node.orelse, in_loop
            )
        if isinstance(node, ast.BoolOp):
            out: set[Origin] = set()
            for value in node.values:
                out |= self._eval(value, in_loop)
            return out
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self._eval(element, in_loop)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                if value is not None:
                    out |= self._eval(value, in_loop)
            return out
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                origins = self._eval(generator.iter, in_loop)
                for name in ast.walk(generator.target):
                    if isinstance(name, ast.Name):
                        self.env.setdefault(name.id, set()).update(origins)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, True)
                return self._eval(node.value, True)
            return self._eval(node.elt, True)
        if isinstance(node, (ast.BinOp, ast.Compare, ast.UnaryOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, in_loop)
            return set()
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return set()
        if isinstance(node, ast.Starred):
            return self._eval(node.value, in_loop)
        return set()

    def _eval_call(self, node: ast.Call, in_loop: bool) -> set[Origin]:
        for keyword in node.keywords:
            self._eval(keyword.value, in_loop)
        func = node.func
        # self.m(...) — same-class call
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            if func.attr == "new_subordinate" and node.args:
                target = dotted_parts(node.args[0])
                for arg in node.args[1:]:
                    self._eval(arg, in_loop)
                if target is not None:
                    cls_name = target[-1]
                    self.facts.subordinate_creates.append(
                        (cls_name, in_loop)
                    )
                    return {Origin("sub", cls_name)}
                return set()
            for arg in node.args:
                self._eval(arg, in_loop)
            self.facts.self_calls.append((func.attr, in_loop))
            return {Origin("ret", func.attr)}
        if isinstance(func, ast.Attribute):
            bases = self._eval(func.value, in_loop)
            for arg in node.args:
                self._eval(arg, in_loop)
            if func.attr in ACCESSOR_METHODS:
                # container access: elements share the container's
                # origins (structure is flattened), no call recorded
                return bases
            if bases:
                self.facts.out_calls.append(
                    OutCall(
                        bases=frozenset(bases),
                        method=func.attr,
                        in_loop=in_loop,
                        mutator=func.attr in MUTATOR_METHODS,
                        lineno=node.lineno,
                    )
                )
            return set()
        if isinstance(func, ast.Name):
            arg_origins: set[Origin] = set()
            for arg in node.args:
                arg_origins |= self._eval(arg, in_loop)
            if func.id in TRANSPARENT_CALLS:
                return arg_origins
            return set()
        self._eval(func, in_loop)
        for arg in node.args:
            self._eval(arg, in_loop)
        return set()
