"""Whole-program component-type inference and static force-cost model.

Submodules:

* :mod:`~repro.analysis.infer.facts` — per-class purity/escape facts
  extracted from the AST;
* :mod:`~repro.analysis.infer.wiring` — abstract interpretation of the
  deployment functions (``create_component``/``spawn_process``);
* :mod:`~repro.analysis.infer.engine` — the fixpoint classifier and
  PHX010/PHX011/PHX012 findings;
* :mod:`~repro.analysis.infer.costmodel` — predicted forces/records per
  exported call path under Algorithms 2–5, and the per-method force
  bounds the TRC106 trace cross-check consumes.
"""

from __future__ import annotations

from .costmodel import CostModel, ForceBounds, SpanBound, build_cost_model
from .engine import ClassReport, Engine, InferenceResult, run_inference
from .wiring import Instantiation, Wiring, build_wiring

__all__ = [
    "ClassReport",
    "CostModel",
    "Engine",
    "ForceBounds",
    "InferenceResult",
    "Instantiation",
    "SpanBound",
    "Wiring",
    "build_cost_model",
    "build_wiring",
    "run_inference",
]
