"""Static determinism/durability lint (stdlib ``ast``, no dependencies).

The linter parses each target file (it never imports it), finds the
component classes — classes carrying a ``@persistent`` / ``@subordinate``
/ ``@functional`` / ``@read_only`` decorator, or (transitively)
inheriting from ``PersistentComponent``, including bases defined in
*other* modules of the linted set — and checks their methods for
constructs that break the paper's guarantees.  Module-level rules
(PHX004/PHX005) apply to the whole file.

Component detection and import resolution live in the shared
:mod:`repro.analysis.model`; ``lint_paths`` builds one
:class:`~repro.analysis.model.ProgramModel` across every given file so
cross-module inheritance resolves (the original per-module fixpoint
silently missed it).

Suppression: a ``# phx: disable=PHX001`` (comma-separated IDs, or bare
``# phx: disable`` for all rules) comment on the offending line, or on
the ``def`` line of the enclosing function, silences the finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from .model import ModuleInfo, ProgramModel, dotted_parts
from .rules import RULES

#: fully-resolved call targets that are nondeterministic (PHX001)
_NONDET_PREFIXES = ("random.", "secrets.", "numpy.random.")
_NONDET_EXACT = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: fully-resolved call targets that are direct I/O (PHX002)
_IO_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.",
    "http.client.",
    "requests.",
    "shutil.",
)
_IO_EXACT = {
    "open",
    "input",
    "print",
    "io.open",
    "os.open",
    "os.read",
    "os.write",
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.replace",
    "os.mkdir",
    "os.makedirs",
    "os.rmdir",
    "os.listdir",
    "os.system",
    "os.popen",
}

#: constructors whose direct use bypasses LogManager (PHX004)
_STABLE_CONSTRUCTORS = {"StableStore", "StableFile", "DurableLog"}

#: ``x.log.<method>(...)`` calls that bypass the process hooks (PHX005)
_RAW_LOG_METHODS = {"append", "force", "append_and_force"}

_STATELESS_TYPES = {"functional", "read_only"}


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        fixit = RULES[self.rule_id].fixit
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"{self.message} [fix: {fixit}]"
        )

    def to_dict(self) -> dict:
        """Machine-readable form (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "fixit": RULES[self.rule_id].fixit,
            "paper_ref": RULES[self.rule_id].paper_ref,
        }


class _ModuleLinter:
    """Per-module rule pass over a parsed :class:`ModuleInfo`.

    ``component_types`` comes from the whole-program model, so a class
    inheriting a component base from another linted module is checked
    under the declared type it actually runs as.
    """

    def __init__(
        self, module: ModuleInfo, component_types: dict[str, str | None]
    ):
        self.module = module
        self.path = module.path
        self.tree = module.tree
        self.component_types = component_types
        self.findings: list[Finding] = []

    def _resolve(self, node: ast.expr) -> str | None:
        return self.module.resolve_dotted(node)

    # -- reporting -----------------------------------------------------
    def _report(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
    ) -> None:
        lines = [node.lineno]
        if func is not None:
            lines.append(func.lineno)
        if self.module.suppressed(rule_id, *lines):
            return
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, rule_id, message)
        )

    # -- the pass ------------------------------------------------------
    def run(self) -> list[Finding]:
        self._check_module_rules()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self.component_types:
                continue
            declared = self.component_types[node.name]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_method(node, declared, item)
        self.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return self.findings

    # PHX004 / PHX005 apply everywhere in a linted file, not only inside
    # component classes: infrastructure code can bypass the log manager
    # too.
    def _check_module_rules(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            func = self._enclosing_function(node)
            if parts[-1] in _STABLE_CONSTRUCTORS:
                self._report(
                    "PHX004",
                    node,
                    f"direct construction of {parts[-1]} bypasses "
                    "LogManager",
                    func,
                )
            elif "stable_store" in parts[:-1]:
                self._report(
                    "PHX004",
                    node,
                    f"direct stable-store call {'.'.join(parts)}() "
                    "bypasses LogManager",
                    func,
                )
            if (
                len(parts) >= 2
                and parts[-1] in _RAW_LOG_METHODS
                and parts[-2] == "log"
            ):
                self._report(
                    "PHX005",
                    node,
                    f"{'.'.join(parts)}() bypasses the process "
                    "log_append/log_force hooks",
                    func,
                )

    def _enclosing_function(
        self, target: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        # ast has no parent links; a positional scan is cheap enough for
        # lint-sized files and only used to honor def-line pragmas.
        best = None
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    node.lineno <= target.lineno
                    and target in set(ast.walk(node))
                ):
                    if best is None or node.lineno > best.lineno:
                        best = node
        return best

    def _check_method(
        self,
        cls: ast.ClassDef,
        declared: str | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        read_only_method = any(
            (parts := dotted_parts(decorator)) is not None
            and parts[-1] == "read_only_method"
            for decorator in func.decorator_list
        )
        set_vars = self._set_valued_locals(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                self._check_call(cls, func, node)
            elif isinstance(node, ast.For):
                self._check_iteration(func, node.iter, set_vars)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    self._check_iteration(func, generator.iter, set_vars)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._check_self_mutation(
                    cls, declared, func, node, read_only_method
                )

    def _check_call(
        self,
        cls: ast.ClassDef,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Call,
    ) -> None:
        resolved = self._resolve(node.func)
        if resolved is None:
            return
        if resolved in _NONDET_EXACT or resolved.startswith(_NONDET_PREFIXES):
            self._report(
                "PHX001",
                node,
                f"{resolved}() is nondeterministic; replay of "
                f"{cls.name}.{func.name} would diverge",
                func,
            )
        elif resolved in _IO_EXACT or resolved.startswith(_IO_PREFIXES):
            self._report(
                "PHX002",
                node,
                f"{resolved}() performs direct I/O inside "
                f"{cls.name}.{func.name}",
                func,
            )

    @staticmethod
    def _is_set_expression(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _set_valued_locals(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_set_expression(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _check_iteration(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        iterable: ast.expr,
        set_vars: set[str],
    ) -> None:
        flagged = self._is_set_expression(iterable) or (
            isinstance(iterable, ast.Name) and iterable.id in set_vars
        )
        if flagged:
            self._report(
                "PHX003",
                iterable,
                "iteration over an unordered set; element order differs "
                "between the original run and replay",
                func,
            )

    def _check_self_mutation(
        self,
        cls: ast.ClassDef,
        declared: str | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Assign | ast.AugAssign | ast.AnnAssign,
        read_only_method: bool,
    ) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        mutates_self = any(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in targets
        )
        if not mutates_self:
            return
        if read_only_method:
            self._report(
                "PHX007",
                node,
                f"@read_only_method {cls.name}.{func.name} assigns to "
                "self; Algorithm 5 would not replay the mutation",
                func,
            )
        if declared in _STATELESS_TYPES and func.name != "__init__":
            self._report(
                "PHX006",
                node,
                f"@{declared} component {cls.name} mutates self in "
                f"{func.name}(); stateless components are never "
                "recovered",
                func,
            )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """The one canonical finding order — (file, line, rule id, col) —
    so CI diffs and clean-tree pins are byte-stable across filesystems
    and traversal orders."""
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.col))
    return findings


def lint_model(model: ProgramModel) -> list[Finding]:
    """Lint every module of an already-built program model."""
    findings: list[Finding] = []
    for module in model.modules.values():
        types = model.component_types_for(module)
        findings.extend(_ModuleLinter(module, types).run())
    return sort_findings(findings)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text."""
    return lint_model(ProgramModel.from_source(source, path))


def lint_file(path: str | Path) -> list[Finding]:
    return lint_model(ProgramModel.from_paths([path]))


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint files and (recursively) directories of ``.py`` files.

    All files are resolved against one shared model, so component
    classes whose base lives in a different module are recognized.
    """
    return lint_model(ProgramModel.from_paths(paths))
