"""``python -m repro.analysis`` == ``repro-analyze``."""

import sys

from .cli import main

sys.exit(main())
