"""``repro-analyze``: the conformance analyzer's command line.

Subcommands:

* ``lint [paths...] [--format text|json|sarif]`` — run the static
  determinism/durability lint (default targets: ``src/repro/apps`` and
  ``src/repro/core``); exits non-zero when findings remain.
* ``infer [paths...] [--check] [--format text|json]`` — whole-program
  component-type inference: classify every component class into the
  cheapest safe type and report PHX010/PHX011/PHX012 disagreements
  with the declarations.  ``--check`` is the CI gate: exit non-zero on
  any finding.
* ``cost [paths...] [--format json|text]`` — the static force/record
  cost model: predicted logging cost per exported call path under
  Algorithms 1-5 and the Section 3.5 multi-call rule.
* ``sites [paths...] [--format text|json|sarif]`` — PHX013: every
  FaultPlane durability site family must be covered by a registered
  scheduler yield point (or carry an exemption) so the schedule
  explorer can reach it; also flags unregistered yield-tag literals.
* ``plan [paths...] [--check] [--write] [--format json|text|sarif]``
  — the static shard-placement & logging-strategy planner: build the
  priced component-interaction graph, partition it into log shards,
  assign each component its cheapest safe logging strategy and emit
  the deterministic ``LogPlan`` JSON artifact.  ``--check`` is the CI
  gate: rebuild the plan under the committed plan's configuration,
  byte-compare, and report PHX014/PHX015/PHX016.  ``--write`` commits
  the rebuilt plan to ``--against`` (default
  ``plans/apps.logplan.json``).
* ``rules`` — list every PHX lint rule and TRC trace invariant with its
  paper reference.
* ``trace-demo`` — run a small crash/recover workload and print the
  trace checker's verdict over the resulting logs, as an end-to-end
  smoke test of the invariant checker.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .lint import lint_paths
from .rules import RULES
from .trace_check import INVARIANTS

_DEFAULT_TARGETS = ("src/repro/apps", "src/repro/core")
#: inference/cost work on deployed components; core has none
_DEFAULT_INFER_TARGETS = ("src/repro/apps",)
#: the PHX013 site scan covers everything that can hit a crash site
_DEFAULT_SITES_TARGETS = ("src/repro",)
#: the committed shard/strategy plan artifact
DEFAULT_PLAN_PATH = "plans/apps.logplan.json"


def _resolve_paths(raw: list[str], defaults: tuple[str, ...]) -> list[Path] | None:
    paths = [Path(p) for p in (raw or defaults)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-analyze: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return None
    return paths


def _sarif(findings) -> dict:
    """Minimal SARIF 2.1.0 document for editor/CI ingestion."""
    rule_ids = sorted({finding.rule_id for finding in findings})
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "informationUri": "https://example.invalid/repro-analyze",
                "rules": [
                    {
                        "id": rule_id,
                        "shortDescription": {"text": RULES[rule_id].title},
                        "help": {"text": RULES[rule_id].fixit},
                    }
                    for rule_id in rule_ids
                    if rule_id in RULES
                ],
            }},
            "results": [
                {
                    "ruleId": finding.rule_id,
                    "level": "error",
                    "message": {"text": finding.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": str(finding.path)},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        },
                    }],
                }
                for finding in findings
            ],
        }],
    }


def _emit_findings(findings, fmt: str, clean_message: str) -> int:
    if fmt == "json":
        print(json.dumps(
            {"findings": [finding.to_dict() for finding in findings]},
            indent=2,
        ))
        return 1 if findings else 0
    if fmt == "sarif":
        print(json.dumps(_sarif(findings), indent=2))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(clean_message)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = _resolve_paths(args.paths, _DEFAULT_TARGETS)
    if paths is None:
        return 2
    findings = lint_paths(paths)
    return _emit_findings(
        findings, args.format, f"clean: {', '.join(map(str, paths))}"
    )


def _cmd_infer(args: argparse.Namespace) -> int:
    from .infer import run_inference
    from .model import ProgramModel, iter_py_files

    paths = _resolve_paths(args.paths, _DEFAULT_INFER_TARGETS)
    if paths is None:
        return 2
    model = ProgramModel.from_paths(list(iter_py_files(paths)))
    result = run_inference(model)
    if args.format == "sarif":
        # SARIF carries only the findings (PHX010-013 family); the
        # classification table stays text/json
        return _emit_findings(result.findings, "sarif", "")
    if args.check:
        for finding in result.findings:
            print(finding.render())
        if result.findings:
            print(
                f"infer --check: {len(result.findings)} finding(s) over "
                f"{', '.join(map(str, paths))}",
                file=sys.stderr,
            )
            return 1
        print(
            f"infer --check: clean — {len(result.reports)} component "
            f"class(es) match their declarations"
        )
        return 0
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 1 if result.findings else 0
    header = (
        f"{'class':32s} {'declared':12s} {'inferred':12s} "
        f"{'agrees':6s} processes"
    )
    print(header)
    print("-" * len(header))
    for report in result.reports:
        print(
            f"{report.info.name:32s} {report.declared or '-':12s} "
            f"{report.inferred:12s} "
            f"{'yes' if report.agrees else 'NO':6s} "
            f"{', '.join(sorted(report.processes)) or '-'}"
        )
    print()
    for finding in result.findings:
        print(finding.render())
    disagreeing = sum(1 for report in result.reports if not report.agrees)
    if result.findings:
        print(
            f"{len(result.findings)} finding(s), {disagreeing} "
            "class(es) disagree with their declaration",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(result.reports)} component class(es) agree with "
        "their declarations"
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from .infer.costmodel import build_cost_model
    from .model import ProgramModel, iter_py_files

    paths = _resolve_paths(args.paths, _DEFAULT_INFER_TARGETS)
    if paths is None:
        return 2
    cost_model = build_cost_model(
        ProgramModel.from_paths(list(iter_py_files(paths)))
    )
    report = cost_model.report()
    report["force_bounds"] = cost_model.force_bounds().to_dict()
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0
    header = (
        f"{'entry path':44s} {'baseline':>10s} {'optimized':>10s} "
        f"{'multicall':>10s} loops"
    )
    print(header)
    print("-" * len(header))
    for path in report["paths"]:
        name = f"{path['entry']}.{path['method']}()"
        baseline = path["baseline"]
        optimized = path["optimized"]
        print(
            f"{name:44s} "
            f"{baseline['forces']:>4d}f/{baseline['records']:>3d}r "
            f"{optimized['forces']:>4d}f/{optimized['records']:>3d}r "
            f"{-path['multicall_saved_forces']:>+9d}f "
            f"{path['loop_edges']}"
        )
    print(
        "\nper one external invocation; loop edges priced for a single "
        "iteration\nmulticall column: forces saved per call when "
        "Section 3.5 is enabled"
    )
    return 0


def _parse_overrides(raw: list[str]) -> dict[str, str] | None:
    from .plan import ASSIGNABLE

    overrides: dict[str, str] = {}
    for item in raw:
        name, _, strategy = item.partition("=")
        if not name or strategy not in ASSIGNABLE:
            print(
                f"repro-analyze plan: bad --force-strategy {item!r} "
                f"(want NAME={'|'.join(ASSIGNABLE)})",
                file=sys.stderr,
            )
            return None
        overrides[name] = strategy
    return overrides


def _plan_text(plan) -> None:
    header = (
        f"{'component':28s} {'type':12s} {'strategy':9s} "
        f"{'planner':9s} {'forces':>7s} shard"
    )
    print(header)
    print("-" * len(header))
    for entry in plan.components:
        print(
            f"{entry['name']:28s} {entry['type']:12s} "
            f"{entry['strategy']:9s} {entry['planner_strategy']:9s} "
            f"{entry['predicted']['forces']:>7g} "
            f"{entry['shard'] or '-'}"
        )
    print()
    for shard in plan.shards:
        print(
            f"shard {shard['id']}: {len(shard['components'])} "
            f"component(s), message load {shard['force_load']:g}, "
            f"planned budget {shard['planned_force_budget']:g}"
        )
    cut = [e for e in plan.edges if e["cross_shard"]]
    print(
        f"{len(plan.edges)} edge(s), {len(cut)} cross-shard "
        f"(cut weight {sum(e['weight'] for e in cut):g})"
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    from .model import ProgramModel, iter_py_files
    from .plan import (
        LogPlan,
        PlanConfig,
        build_plan,
        drift_findings,
        plan_findings,
    )

    paths = _resolve_paths(args.paths, _DEFAULT_INFER_TARGETS)
    if paths is None:
        return 2
    overrides = _parse_overrides(args.force_strategy or [])
    if overrides is None:
        return 2

    against = Path(args.against)
    committed: LogPlan | None = None
    if args.check:
        if not against.exists():
            print(
                f"repro-analyze plan --check: no committed plan at "
                f"{against} (run plan --write first)",
                file=sys.stderr,
            )
            return 2
        committed_text = against.read_text()
        committed = LogPlan.loads(committed_text)
        # rebuild under the committed configuration so the comparison
        # is apples-to-apples; CLI strategy overrides stack on top
        config = committed.config
        config.overrides.update(overrides)
    else:
        config = PlanConfig(
            shards=args.shards,
            loop_weight=args.loop_weight,
            cut_threshold=args.cut_threshold,
            overrides=overrides,
        )

    model = ProgramModel.from_paths(list(iter_py_files(paths)))
    plan = build_plan(model, config)
    findings = plan_findings(plan)
    if committed is not None:
        findings.extend(drift_findings(plan, committed, str(against)))
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.col))

    if args.write:
        against.parent.mkdir(parents=True, exist_ok=True)
        plan.write(against)

    if args.format == "sarif":
        return _emit_findings(findings, "sarif", "")
    if args.check:
        byte_identical = (
            committed is not None
            and not overrides
            and plan.dumps() == committed_text
        )
        for finding in findings:
            print(finding.render())
        if findings or not (byte_identical or overrides or args.write):
            if not findings:
                print(
                    f"plan --check: {against} is stale (byte diff vs "
                    "the rebuilt plan); run plan --write",
                    file=sys.stderr,
                )
            else:
                print(
                    f"plan --check: {len(findings)} finding(s)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"plan --check: clean — {against} matches the wiring "
            f"({len(plan.components)} component(s), "
            f"{len(plan.shards)} shard(s))"
        )
        return 0
    if args.format == "json":
        # the canonical artifact bytes — two runs over one tree are
        # byte-identical
        sys.stdout.write(plan.dumps())
    else:
        _plan_text(plan)
    for finding in findings:
        print(finding.render(), file=sys.stderr)
    return 1 if findings else 0


def _cmd_sites(args: argparse.Namespace) -> int:
    # Imported lazily: sites.py reads the yield-tag registry from
    # repro.concurrency, which the core analysis modules must not pull
    # in at import time.
    from .sites import scan_paths

    paths = _resolve_paths(args.paths, _DEFAULT_SITES_TARGETS)
    if paths is None:
        return 2
    findings = scan_paths(paths)
    return _emit_findings(
        findings, args.format,
        "clean: every durability site family has a covering yield "
        "point (or a registered exemption)",
    )


def _cmd_rules(_args: argparse.Namespace) -> int:
    print("Static lint rules:")
    for rule in RULES.values():
        print(f"  {rule.rule_id}  {rule.title}")
        print(f"          paper: {rule.paper_ref}")
    print("Trace invariants:")
    for invariant_id, title in INVARIANTS.items():
        print(f"  {invariant_id}  {title}")
    return 0


def _cmd_trace_demo(_args: argparse.Namespace) -> int:
    # Imported here: the demo needs the full runtime, which the analysis
    # modules themselves deliberately do not depend on.
    from ..core.attributes import persistent
    from ..core.component import PersistentComponent
    from ..core.runtime import PhoenixRuntime
    from .trace_check import check_process

    @persistent
    class Account(PersistentComponent):
        def __init__(self):
            self.balance = 0

        def deposit(self, amount):
            self.balance += amount
            return self.balance

    runtime = PhoenixRuntime()
    process = runtime.spawn_process("demo", machine="alpha")
    account = process.create_component(Account)
    for amount in (10, 20, 30):
        account.deposit(amount)
    runtime.crash_process(process)
    final = account.deposit(40)  # auto-recovers, replays, goes live
    violations = check_process(process)
    events = process.protocol_trace.events()
    print(
        f"demo: {process.recovery_count} recovery, "
        f"{len(events)} traced decisions, final balance={final}"
    )
    if violations:
        for violation in violations:
            print(f"  {violation.render()}")
        return 1
    print("  log conforms to Algorithms 2-5 commit conditions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Phoenix/App protocol-conformance analyzer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser("lint", help="run the static lint")
    lint_parser.add_argument("paths", nargs="*", help="files or dirs")
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    infer_parser = sub.add_parser(
        "infer", help="whole-program component-type inference"
    )
    infer_parser.add_argument("paths", nargs="*", help="files or dirs")
    infer_parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit non-zero on any PHX010/011/012 finding",
    )
    infer_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif emits findings only)",
    )
    infer_parser.set_defaults(func=_cmd_infer)

    cost_parser = sub.add_parser(
        "cost", help="static force/record cost model per call path"
    )
    cost_parser.add_argument("paths", nargs="*", help="files or dirs")
    cost_parser.add_argument(
        "--format",
        choices=("json", "text"),
        default="json",
        help="output format (default: json; machine-readable)",
    )
    cost_parser.set_defaults(func=_cmd_cost)

    plan_parser = sub.add_parser(
        "plan", help="static shard-placement & logging-strategy planner"
    )
    plan_parser.add_argument("paths", nargs="*", help="files or dirs")
    plan_parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: rebuild under the committed plan's config, "
             "byte-compare, and report PHX014/PHX015/PHX016",
    )
    plan_parser.add_argument(
        "--write",
        action="store_true",
        help="write the rebuilt plan to --against",
    )
    plan_parser.add_argument(
        "--format",
        choices=("json", "text", "sarif"),
        default="json",
        help="output format (default: json — the canonical artifact "
             "bytes; sarif emits findings only)",
    )
    plan_parser.add_argument(
        "--against",
        default=DEFAULT_PLAN_PATH,
        help=f"committed plan artifact (default: {DEFAULT_PLAN_PATH})",
    )
    plan_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="target shard count (default: one per process signature)",
    )
    plan_parser.add_argument(
        "--loop-weight",
        type=int,
        default=4,
        help="assumed iterations when pricing loop edges (default: 4)",
    )
    plan_parser.add_argument(
        "--cut-threshold",
        type=float,
        default=8.0,
        help="PHX015 fires on cuttable cross-shard edges pricing more "
             "forces per sweep than this (default: 8.0)",
    )
    plan_parser.add_argument(
        "--force-strategy",
        action="append",
        metavar="NAME=STRATEGY",
        help="declare a component's strategy (message|state|command); "
             "PHX014 prices disagreements with the planner's choice "
             "and TRC109 budgets take the declaration at its word",
    )
    plan_parser.set_defaults(func=_cmd_plan)

    sites_parser = sub.add_parser(
        "sites", help="PHX013: durability-site yield-point coverage"
    )
    sites_parser.add_argument("paths", nargs="*", help="files or dirs")
    sites_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    sites_parser.set_defaults(func=_cmd_sites)

    rules_parser = sub.add_parser("rules", help="list rules/invariants")
    rules_parser.set_defaults(func=_cmd_rules)

    demo_parser = sub.add_parser(
        "trace-demo", help="run the trace checker on a demo workload"
    )
    demo_parser.set_defaults(func=_cmd_trace_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
