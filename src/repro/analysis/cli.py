"""``repro-analyze``: the conformance analyzer's command line.

Subcommands:

* ``lint [paths...]`` — run the static determinism/durability lint
  (default targets: ``src/repro/apps`` and ``src/repro/core``); exits
  non-zero when findings remain.
* ``rules`` — list every PHX lint rule and TRC trace invariant with its
  paper reference.
* ``trace-demo`` — run a small crash/recover workload and print the
  trace checker's verdict over the resulting logs, as an end-to-end
  smoke test of the invariant checker.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lint import lint_paths
from .rules import RULES
from .trace_check import INVARIANTS

_DEFAULT_TARGETS = ("src/repro/apps", "src/repro/core")


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in (args.paths or _DEFAULT_TARGETS)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-analyze: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"clean: {', '.join(map(str, paths))}")
    return 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    print("Static lint rules:")
    for rule in RULES.values():
        print(f"  {rule.rule_id}  {rule.title}")
        print(f"          paper: {rule.paper_ref}")
    print("Trace invariants:")
    for invariant_id, title in INVARIANTS.items():
        print(f"  {invariant_id}  {title}")
    return 0


def _cmd_trace_demo(_args: argparse.Namespace) -> int:
    # Imported here: the demo needs the full runtime, which the analysis
    # modules themselves deliberately do not depend on.
    from ..core.attributes import persistent
    from ..core.component import PersistentComponent
    from ..core.runtime import PhoenixRuntime
    from .trace_check import check_process

    @persistent
    class Account(PersistentComponent):
        def __init__(self):
            self.balance = 0

        def deposit(self, amount):
            self.balance += amount
            return self.balance

    runtime = PhoenixRuntime()
    process = runtime.spawn_process("demo", machine="alpha")
    account = process.create_component(Account)
    for amount in (10, 20, 30):
        account.deposit(amount)
    runtime.crash_process(process)
    final = account.deposit(40)  # auto-recovers, replays, goes live
    violations = check_process(process)
    events = process.protocol_trace.events()
    print(
        f"demo: {process.recovery_count} recovery, "
        f"{len(events)} traced decisions, final balance={final}"
    )
    if violations:
        for violation in violations:
            print(f"  {violation.render()}")
        return 1
    print("  log conforms to Algorithms 2-5 commit conditions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Phoenix/App protocol-conformance analyzer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser("lint", help="run the static lint")
    lint_parser.add_argument("paths", nargs="*", help="files or dirs")
    lint_parser.set_defaults(func=_cmd_lint)

    rules_parser = sub.add_parser("rules", help="list rules/invariants")
    rules_parser.set_defaults(func=_cmd_rules)

    demo_parser = sub.add_parser(
        "trace-demo", help="run the trace checker on a demo workload"
    )
    demo_parser.set_defaults(func=_cmd_trace_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
