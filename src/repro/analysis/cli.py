"""``repro-analyze``: the conformance analyzer's command line.

Subcommands:

* ``lint [paths...] [--format text|json|sarif]`` — run the static
  determinism/durability lint (default targets: ``src/repro/apps`` and
  ``src/repro/core``); exits non-zero when findings remain.
* ``infer [paths...] [--check] [--format text|json]`` — whole-program
  component-type inference: classify every component class into the
  cheapest safe type and report PHX010/PHX011/PHX012 disagreements
  with the declarations.  ``--check`` is the CI gate: exit non-zero on
  any finding.
* ``cost [paths...] [--format json|text]`` — the static force/record
  cost model: predicted logging cost per exported call path under
  Algorithms 1-5 and the Section 3.5 multi-call rule.
* ``sites [paths...] [--format text|json|sarif]`` — PHX013: every
  FaultPlane durability site family must be covered by a registered
  scheduler yield point (or carry an exemption) so the schedule
  explorer can reach it; also flags unregistered yield-tag literals.
* ``rules`` — list every PHX lint rule and TRC trace invariant with its
  paper reference.
* ``trace-demo`` — run a small crash/recover workload and print the
  trace checker's verdict over the resulting logs, as an end-to-end
  smoke test of the invariant checker.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .lint import lint_paths
from .rules import RULES
from .trace_check import INVARIANTS

_DEFAULT_TARGETS = ("src/repro/apps", "src/repro/core")
#: inference/cost work on deployed components; core has none
_DEFAULT_INFER_TARGETS = ("src/repro/apps",)
#: the PHX013 site scan covers everything that can hit a crash site
_DEFAULT_SITES_TARGETS = ("src/repro",)


def _resolve_paths(raw: list[str], defaults: tuple[str, ...]) -> list[Path] | None:
    paths = [Path(p) for p in (raw or defaults)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-analyze: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return None
    return paths


def _sarif(findings) -> dict:
    """Minimal SARIF 2.1.0 document for editor/CI ingestion."""
    rule_ids = sorted({finding.rule_id for finding in findings})
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "informationUri": "https://example.invalid/repro-analyze",
                "rules": [
                    {
                        "id": rule_id,
                        "shortDescription": {"text": RULES[rule_id].title},
                        "help": {"text": RULES[rule_id].fixit},
                    }
                    for rule_id in rule_ids
                    if rule_id in RULES
                ],
            }},
            "results": [
                {
                    "ruleId": finding.rule_id,
                    "level": "error",
                    "message": {"text": finding.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": str(finding.path)},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        },
                    }],
                }
                for finding in findings
            ],
        }],
    }


def _emit_findings(findings, fmt: str, clean_message: str) -> int:
    if fmt == "json":
        print(json.dumps(
            {"findings": [finding.to_dict() for finding in findings]},
            indent=2,
        ))
        return 1 if findings else 0
    if fmt == "sarif":
        print(json.dumps(_sarif(findings), indent=2))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(clean_message)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = _resolve_paths(args.paths, _DEFAULT_TARGETS)
    if paths is None:
        return 2
    findings = lint_paths(paths)
    return _emit_findings(
        findings, args.format, f"clean: {', '.join(map(str, paths))}"
    )


def _cmd_infer(args: argparse.Namespace) -> int:
    from .infer import run_inference
    from .model import ProgramModel, iter_py_files

    paths = _resolve_paths(args.paths, _DEFAULT_INFER_TARGETS)
    if paths is None:
        return 2
    model = ProgramModel.from_paths(list(iter_py_files(paths)))
    result = run_inference(model)
    if args.check:
        for finding in result.findings:
            print(finding.render())
        if result.findings:
            print(
                f"infer --check: {len(result.findings)} finding(s) over "
                f"{', '.join(map(str, paths))}",
                file=sys.stderr,
            )
            return 1
        print(
            f"infer --check: clean — {len(result.reports)} component "
            f"class(es) match their declarations"
        )
        return 0
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 1 if result.findings else 0
    header = (
        f"{'class':32s} {'declared':12s} {'inferred':12s} "
        f"{'agrees':6s} processes"
    )
    print(header)
    print("-" * len(header))
    for report in result.reports:
        print(
            f"{report.info.name:32s} {report.declared or '-':12s} "
            f"{report.inferred:12s} "
            f"{'yes' if report.agrees else 'NO':6s} "
            f"{', '.join(sorted(report.processes)) or '-'}"
        )
    print()
    for finding in result.findings:
        print(finding.render())
    disagreeing = sum(1 for report in result.reports if not report.agrees)
    if result.findings:
        print(
            f"{len(result.findings)} finding(s), {disagreeing} "
            "class(es) disagree with their declaration",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(result.reports)} component class(es) agree with "
        "their declarations"
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from .infer.costmodel import build_cost_model
    from .model import ProgramModel, iter_py_files

    paths = _resolve_paths(args.paths, _DEFAULT_INFER_TARGETS)
    if paths is None:
        return 2
    cost_model = build_cost_model(
        ProgramModel.from_paths(list(iter_py_files(paths)))
    )
    report = cost_model.report()
    report["force_bounds"] = cost_model.force_bounds().to_dict()
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0
    header = (
        f"{'entry path':44s} {'baseline':>10s} {'optimized':>10s} "
        f"{'multicall':>10s} loops"
    )
    print(header)
    print("-" * len(header))
    for path in report["paths"]:
        name = f"{path['entry']}.{path['method']}()"
        baseline = path["baseline"]
        optimized = path["optimized"]
        print(
            f"{name:44s} "
            f"{baseline['forces']:>4d}f/{baseline['records']:>3d}r "
            f"{optimized['forces']:>4d}f/{optimized['records']:>3d}r "
            f"{-path['multicall_saved_forces']:>+9d}f "
            f"{path['loop_edges']}"
        )
    print(
        "\nper one external invocation; loop edges priced for a single "
        "iteration\nmulticall column: forces saved per call when "
        "Section 3.5 is enabled"
    )
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    # Imported lazily: sites.py reads the yield-tag registry from
    # repro.concurrency, which the core analysis modules must not pull
    # in at import time.
    from .sites import scan_paths

    paths = _resolve_paths(args.paths, _DEFAULT_SITES_TARGETS)
    if paths is None:
        return 2
    findings = scan_paths(paths)
    return _emit_findings(
        findings, args.format,
        "clean: every durability site family has a covering yield "
        "point (or a registered exemption)",
    )


def _cmd_rules(_args: argparse.Namespace) -> int:
    print("Static lint rules:")
    for rule in RULES.values():
        print(f"  {rule.rule_id}  {rule.title}")
        print(f"          paper: {rule.paper_ref}")
    print("Trace invariants:")
    for invariant_id, title in INVARIANTS.items():
        print(f"  {invariant_id}  {title}")
    return 0


def _cmd_trace_demo(_args: argparse.Namespace) -> int:
    # Imported here: the demo needs the full runtime, which the analysis
    # modules themselves deliberately do not depend on.
    from ..core.attributes import persistent
    from ..core.component import PersistentComponent
    from ..core.runtime import PhoenixRuntime
    from .trace_check import check_process

    @persistent
    class Account(PersistentComponent):
        def __init__(self):
            self.balance = 0

        def deposit(self, amount):
            self.balance += amount
            return self.balance

    runtime = PhoenixRuntime()
    process = runtime.spawn_process("demo", machine="alpha")
    account = process.create_component(Account)
    for amount in (10, 20, 30):
        account.deposit(amount)
    runtime.crash_process(process)
    final = account.deposit(40)  # auto-recovers, replays, goes live
    violations = check_process(process)
    events = process.protocol_trace.events()
    print(
        f"demo: {process.recovery_count} recovery, "
        f"{len(events)} traced decisions, final balance={final}"
    )
    if violations:
        for violation in violations:
            print(f"  {violation.render()}")
        return 1
    print("  log conforms to Algorithms 2-5 commit conditions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Phoenix/App protocol-conformance analyzer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser("lint", help="run the static lint")
    lint_parser.add_argument("paths", nargs="*", help="files or dirs")
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    infer_parser = sub.add_parser(
        "infer", help="whole-program component-type inference"
    )
    infer_parser.add_argument("paths", nargs="*", help="files or dirs")
    infer_parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit non-zero on any PHX010/011/012 finding",
    )
    infer_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    infer_parser.set_defaults(func=_cmd_infer)

    cost_parser = sub.add_parser(
        "cost", help="static force/record cost model per call path"
    )
    cost_parser.add_argument("paths", nargs="*", help="files or dirs")
    cost_parser.add_argument(
        "--format",
        choices=("json", "text"),
        default="json",
        help="output format (default: json; machine-readable)",
    )
    cost_parser.set_defaults(func=_cmd_cost)

    sites_parser = sub.add_parser(
        "sites", help="PHX013: durability-site yield-point coverage"
    )
    sites_parser.add_argument("paths", nargs="*", help="files or dirs")
    sites_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    sites_parser.set_defaults(func=_cmd_sites)

    rules_parser = sub.add_parser("rules", help="list rules/invariants")
    rules_parser.set_defaults(func=_cmd_rules)

    demo_parser = sub.add_parser(
        "trace-demo", help="run the trace checker on a demo workload"
    )
    demo_parser.set_defaults(func=_cmd_trace_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
