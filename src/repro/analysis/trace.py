"""The protocol trace: an ordered journal of logging decisions.

The stable log alone cannot witness the commit conditions — forces and
record-less sends (Algorithm 2 writes nothing for messages 2 and 3)
leave no mark in the stream.  Every :class:`~repro.core.process.AppProcess`
therefore carries a :class:`ProtocolTrace`, and the
:class:`~repro.core.policy.LoggingPolicy` appends one :class:`TraceEvent`
per message it handles, snapshotting the decision it made and the log's
``end_lsn``/``stable_lsn`` immediately after.  The trace is pure
observation: it writes nothing, forces nothing, and advances no clocks,
so force counts and simulated times are untouched.

A process crash discards the log's volatile buffer and *reuses* its LSNs
(see ``LogManager.wipe_volatile``); :meth:`ProtocolTrace.note_crash`
records the stable boundary at the crash so the checker can tell which
traced records were lost rather than missing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.messages import MessageKind
from ..common.types import ComponentType

#: mirrors ``repro.core.tables.NO_LSN`` (kept local: analysis modules do
#: not import ``repro.core``, which imports them)
NO_LSN = -1


@dataclass(frozen=True)
class TraceEvent:
    """One logging decision, as the policy made it.

    Defaults describe the common case (an optimized persistent context)
    so tests can construct events tersely.
    """

    kind: MessageKind
    context_id: int = 1
    context_type: ComponentType = ComponentType.PERSISTENT
    #: the peer's component type: the client for messages 1/2, the
    #: server for messages 3/4 (``None`` = unknown, treated persistent)
    peer_type: ComponentType | None = None
    method_read_only: bool = False
    #: config snapshot (the expected algorithm depends on it)
    optimized: bool = True
    read_only_opt: bool = True
    #: Section 3.5: this send skipped its force under the multi-call
    #: optimization (the server's last-call table holds the reply)
    multicall_skip: bool = False
    #: the decision
    wrote_record: bool = False
    forced: bool = False
    short: bool = False
    record_lsn: int = NO_LSN
    #: log boundaries immediately after the decision executed
    end_lsn: int = 0
    stable_lsn: int = 0
    #: a crash unwound out of this decision's force: the record (if any)
    #: was appended but the message never left the process
    interrupted: bool = False
    #: the called method, for call messages (1 and 3); replies carry
    #: ``None``.  TRC106 keys its per-span force bounds on this.
    method: str | None = None
    #: the deterministic-scheduler session serving this decision
    #: (``None`` under the serial runtime); TRC106 partitions its span
    #: walk by session so interleaved calls don't look nested
    session: int | None = None
    #: the end-LSN this decision's force was asked to make stable,
    #: captured *before* forcing — under group commit the stable stream
    #: may advance past it (a rider's write carries later appends), so
    #: TRC101 checks stability against this rather than ``end_lsn``
    commit_lsn: int | None = None
    #: the serving session's vector clock at the decision, frozen as a
    #: sorted ``((session, ticks), ...)`` tuple (``None`` under the
    #: serial runtime); TRC107/TRC108 derive happens-before from it
    vc: tuple[tuple[int, int], ...] | None = None
    #: the decision happened while the context was replaying logged
    #: calls during recovery — a reconstruction of pre-crash history,
    #: exempt from the causal invariants (the CrashMark already
    #: separates the incarnations)
    replaying: bool = False


@dataclass(frozen=True)
class CrashMark:
    """The process crashed; volatile records at/above ``stable_lsn``
    were lost and their LSNs will be reused."""

    stable_lsn: int


class ProtocolTrace:
    """Ordered journal of :class:`TraceEvent` and :class:`CrashMark`."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[TraceEvent | CrashMark] = []

    def record(self, event: TraceEvent) -> None:
        self.entries.append(event)

    def note_crash(self, stable_lsn: int) -> None:
        self.entries.append(CrashMark(stable_lsn))

    def events(self) -> list[TraceEvent]:
        """All events, in decision order (crash marks elided)."""
        return [e for e in self.entries if isinstance(e, TraceEvent)]

    def surviving_events(self) -> list[TraceEvent]:
        """Events whose written records still exist in the stable
        stream: a crash drops every earlier event whose record sat in
        the wiped volatile buffer (its LSN is reused afterwards)."""
        survivors: list[TraceEvent] = []
        for entry in self.entries:
            if isinstance(entry, CrashMark):
                survivors = [
                    event
                    for event in survivors
                    if not (
                        event.wrote_record
                        and event.record_lsn >= entry.stable_lsn
                    )
                ]
            else:
                survivors.append(entry)
        return survivors
