"""Shared static program model for the analyzers (stdlib ``ast``).

Both the determinism lint (:mod:`repro.analysis.lint`) and the type
inference engine (:mod:`repro.analysis.infer`) need the same ground
facts about a set of source files: which classes are component classes,
what type each declares, which methods carry ``@read_only_method``, and
how names imported from other modules resolve.  This module computes
those facts once, over the *whole* file set, so a class inheriting a
component base defined in another module is recognized (the original
per-module fixpoint in ``lint.py`` silently missed cross-module
inheritance).

Nothing here imports the analyzed code — everything is parsed, never
executed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: class decorators that mark a component class -> declared type
TYPE_DECORATORS = {
    "persistent": "persistent",
    "subordinate": "subordinate",
    "functional": "functional",
    "read_only": "read_only",
}

STATELESS_TYPES = frozenset({"functional", "read_only"})

COMPONENT_BASE = "PersistentComponent"

PRAGMA = re.compile(r"#\s*phx:\s*disable(?:\s*=\s*(?P<ids>[A-Z0-9_,\s]+))?")


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def suppression_table(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule IDs (``None`` = all rules)."""
    table: dict[int, frozenset[str] | None] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            table[number] = None
        else:
            table[number] = frozenset(
                token.strip() for token in ids.split(",") if token.strip()
            )
    return table


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for a source path.

    Files under a ``repro`` package root get their real dotted name
    (so relative imports resolve); anything else is named by its stem.
    """
    parts = [part for part in path.parts]
    stem = path.stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


@dataclass
class MethodInfo:
    """One method of a component class (AST only, never executed)."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    read_only: bool  # carries @read_only_method


@dataclass
class ClassInfo:
    """One class definition, with cross-module resolution results."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: this class's own decorator type, if any
    declared: str | None
    #: resolved after :meth:`ProgramModel.resolve`
    is_component: bool = False
    #: own decorator, else the nearest base's (mirrors ``declared_type``'s
    #: ``getattr`` lookup at runtime); None for undecorated roots
    effective_declared: str | None = None
    #: bases that resolved to classes in the model, in definition order
    base_classes: list["ClassInfo"] = field(default_factory=list)
    #: a base resolved (by name) to ``PersistentComponent`` itself
    inherits_root: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"

    def own_methods(self) -> dict[str, MethodInfo]:
        methods: dict[str, MethodInfo] = {}
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                read_only = any(
                    (parts := dotted_parts(decorator)) is not None
                    and parts[-1] == "read_only_method"
                    for decorator in item.decorator_list
                )
                methods[item.name] = MethodInfo(
                    name=item.name,
                    node=item,
                    lineno=item.lineno,
                    read_only=read_only,
                )
        return methods

    def ancestors(self) -> list["ClassInfo"]:
        """All resolved base classes, transitively, nearest first."""
        seen: list[ClassInfo] = []
        queue = list(self.base_classes)
        while queue:
            base = queue.pop(0)
            if base in seen or base is self:
                continue
            seen.append(base)
            queue.extend(base.base_classes)
        return seen

    def all_methods(self) -> dict[str, MethodInfo]:
        """Own methods plus inherited ones (nearest definition wins)."""
        methods = dict(self.own_methods())
        for base in self.ancestors():
            for name, info in base.own_methods().items():
                methods.setdefault(name, info)
        return methods


@dataclass
class ModuleInfo:
    """One parsed module: imports, classes, suppressions."""

    path: str
    name: str
    source: str
    tree: ast.Module
    #: alias -> imported module path (``import x.y as z``)
    modules: dict[str, str] = field(default_factory=dict)
    #: local name -> dotted origin (``from m import n as k``)
    names: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    suppressions: dict[int, frozenset[str] | None] = field(
        default_factory=dict
    )

    def resolve_dotted(self, node: ast.expr) -> str | None:
        """Resolve an attribute chain to a fully-qualified dotted name."""
        parts = dotted_parts(node)
        if parts is None:
            return None
        root = parts[0]
        if root in self.names:
            return ".".join([self.names[root], *parts[1:]])
        if root in self.modules:
            return ".".join([self.modules[root], *parts[1:]])
        return ".".join(parts)

    def suppressed(self, rule_id: str, *lines: int) -> bool:
        for line in lines:
            if line not in self.suppressions:
                continue
            ids = self.suppressions[line]
            if ids is None or rule_id in ids:
                return True
        return False


def _parse_module(path: str, source: str, name: str) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(
        path=path,
        name=name,
        source=source,
        tree=tree,
        suppressions=suppression_table(source),
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.modules[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            origin_module = _absolute_import(name, node)
            for alias in node.names:
                origin = (
                    f"{origin_module}.{alias.name}"
                    if origin_module
                    else alias.name
                )
                module.names[alias.asname or alias.name] = origin
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            declared = None
            for decorator in node.decorator_list:
                parts = dotted_parts(decorator)
                if parts and parts[-1] in TYPE_DECORATORS:
                    declared = TYPE_DECORATORS[parts[-1]]
            # nested/duplicate class names: first definition wins, which
            # matches the original lint's ``ast.walk`` order
            module.classes.setdefault(
                node.name,
                ClassInfo(
                    name=node.name,
                    module=module,
                    node=node,
                    declared=declared,
                ),
            )
    return module


def _absolute_import(module_name: str, node: ast.ImportFrom) -> str:
    """Resolve a (possibly relative) ``from`` import to a dotted path."""
    if node.level == 0:
        return node.module or ""
    package_parts = module_name.split(".")[:-1]
    if node.level > 1:
        package_parts = package_parts[: len(package_parts) - (node.level - 1)]
    base = ".".join(part for part in package_parts if part)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base


class ProgramModel:
    """A set of parsed modules with cross-module class resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_paths(cls, paths: list[str | Path]) -> "ProgramModel":
        model = cls()
        for file in iter_py_files(paths):
            model.add_file(file)
        model.resolve()
        return model

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>"
    ) -> "ProgramModel":
        model = cls()
        model.add_source(source, path)
        model.resolve()
        return model

    def add_file(self, path: str | Path) -> ModuleInfo:
        path = Path(path)
        return self.add_source(path.read_text(), str(path))

    def add_source(self, source: str, path: str) -> ModuleInfo:
        name = module_name_for(Path(path))
        module = _parse_module(path, source, name)
        if name in self.modules:  # same stem twice: keep both reachable
            name = f"{name}@{len(self.modules)}"
            module.name = name
        self.modules[name] = module
        return module

    # -- resolution ----------------------------------------------------
    def find_class(self, dotted: str) -> ClassInfo | None:
        """Look up ``pkg.module.Class`` (or a re-exported alias) in the
        model, following one level of ``from x import Y`` indirection."""
        module_path, _, class_name = dotted.rpartition(".")
        module = self.modules.get(module_path)
        if module is not None:
            found = module.classes.get(class_name)
            if found is not None:
                return found
            # re-export: the origin module imports the class itself
            origin = module.names.get(class_name)
            if origin is not None and origin != dotted:
                return self.find_class(origin)
        return None

    def resolve(self) -> None:
        """Resolve bases cross-module and run the component fixpoint."""
        all_classes = [
            info
            for module in self.modules.values()
            for info in module.classes.values()
        ]
        for info in all_classes:
            info.base_classes = []
            info.inherits_root = False
            for base in info.node.bases:
                parts = dotted_parts(base)
                if parts is None:
                    continue
                resolved = None
                dotted = info.module.resolve_dotted(base)
                if dotted is not None:
                    resolved = self.find_class(dotted)
                if resolved is None and parts[-1] in info.module.classes:
                    resolved = info.module.classes[parts[-1]]
                if resolved is not None and resolved is not info:
                    info.base_classes.append(resolved)
                    if resolved.name == COMPONENT_BASE:
                        info.inherits_root = True
                elif parts[-1] == COMPONENT_BASE:
                    info.inherits_root = True

        # Component detection to a fixpoint over ALL modules: a class is
        # a component if it declares a type, names PersistentComponent as
        # a base, or inherits (transitively, cross-module) a component.
        changed = True
        while changed:
            changed = False
            for info in all_classes:
                if info.is_component:
                    continue
                is_component = (
                    info.declared is not None
                    or info.inherits_root
                    or any(base.is_component for base in info.base_classes)
                )
                if is_component:
                    info.is_component = True
                    changed = True

        # Effective declared type mirrors the runtime's getattr lookup:
        # own decorator wins, else the nearest decorated ancestor.
        for info in all_classes:
            info.effective_declared = info.declared
            if info.effective_declared is None:
                for base in info.ancestors():
                    if base.declared is not None:
                        info.effective_declared = base.declared
                        break

    # -- views ----------------------------------------------------------
    def component_classes(self) -> list[ClassInfo]:
        return [
            info
            for module in self.modules.values()
            for info in module.classes.values()
            if info.is_component
        ]

    def component_types_for(self, module: ModuleInfo) -> dict[str, str | None]:
        """Per-module ``class name -> declared type`` map (lint view).

        Uses the *effective* declared type so a subclass of a decorated
        class (possibly in another module) is checked under the type it
        actually runs as.
        """
        return {
            name: info.effective_declared
            for name, info in module.classes.items()
            if info.is_component
        }


def iter_py_files(paths: list[str | Path]) -> list[Path]:
    """Files and (recursively, sorted) directories of ``.py`` files."""
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out
