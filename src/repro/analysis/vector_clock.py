"""Vector clocks for the concurrent trace checker.

The deterministic scheduler (docs/internals.md section 11) runs N
sessions cooperatively: exactly one session executes between two yield
points.  A vector clock per session — ticked at every yield point,
merged across the synchronisation edges the runtime actually has
(context admission, group-commit batches, ``spawn``) — gives the trace
checker a *causal* order over trace events, strictly weaker than the
total trace order.  TRC107 (causal prefix stable at commit) and TRC108
(cross-session state race detection) in ``trace_check.py`` are built on
this module; the scheduler itself maintains the live clocks.

Two representations are used:

* **live clocks** are plain ``dict[int, int]`` (session index -> tick
  count), mutated in place by the scheduler;
* **snapshots** are sorted ``tuple[tuple[int, int], ...]`` frozen onto
  ``TraceEvent.vc`` at the moment a logging decision is traced.  A
  missing session entry means zero ticks observed.

The happens-before rule is the standard one, with a trace-order
tiebreak: for events ``f`` (earlier in trace order) and ``e``,
``hb(f, e)`` iff ``f``'s own component in its clock is <= ``e``'s view
of ``f``'s session.  Trace order supplies the direction; the component
comparison supplies (non-)causality.  Events recorded outside any
session (``vc is None``) are totally ordered with every session event,
because the main thread only runs while no scheduler run is active.
"""

from __future__ import annotations

Snapshot = tuple[tuple[int, int], ...]


def fresh_clock() -> dict[int, int]:
    """A new, empty live clock (all components implicitly zero)."""
    return {}


def tick(clock: dict[int, int], session: int) -> None:
    """Advance ``session``'s own component in its live clock."""
    clock[session] = clock.get(session, 0) + 1


def merge_into(dst: dict[int, int], src: dict[int, int]) -> None:
    """Pointwise max of ``src`` into ``dst`` (a synchronisation edge)."""
    for session, count in src.items():
        if count > dst.get(session, 0):
            dst[session] = count


def snapshot(clock: dict[int, int]) -> Snapshot:
    """Freeze a live clock into the form stored on ``TraceEvent.vc``."""
    return tuple(sorted(clock.items()))


def component(vc: Snapshot, session: int) -> int:
    """``session``'s entry in a snapshot (zero when absent)."""
    for who, count in vc:
        if who == session:
            return count
    return 0


def happens_before(f_vc: Snapshot | None, f_session: int | None,
                   e_vc: Snapshot | None) -> bool:
    """Is the earlier trace event ``f`` causally before the later ``e``?

    Both events' snapshots are as recorded; ``f`` must precede ``e`` in
    trace order (the caller guarantees this — this function only settles
    causality, not direction).  Serial events (``vc is None``) are
    ordered with everything: the main thread never overlaps a scheduler
    run.
    """
    if f_vc is None or e_vc is None:
        return True
    if f_session is None:
        return True
    return component(f_vc, f_session) <= component(e_vc, f_session)
