"""Static shard-placement & logging-strategy planner.

Builds a weighted component-interaction graph from the interprocedural
inference engine (:mod:`repro.analysis.infer`), prices its edges with
the force-cost model, partitions it into log shards, assigns each
component its cheapest safe logging strategy, and emits the declarative
:class:`LogPlan` JSON artifact the future multi-log runtime (ROADMAP
item 1) implements against.  Diagnostics: PHX014 (suboptimal declared
strategy), PHX015 (hot cross-shard edge), PHX016 (plan drift), and the
TRC109 trace invariant (observed forces within plan budgets).

Entry points: ``repro-analyze plan`` and ``make plan``; the committed
artifact lives in ``plans/apps.logplan.json``.
"""

from .conformance import (
    check_plan_trace,
    check_runtime_plan,
    span_accounting,
)
from .graph import GraphEdge, GraphNode, InteractionGraph, build_graph
from .lints import drift_findings, plan_findings
from .partition import Shard, partition
from .planner import (
    PLAN_VERSION,
    LogPlan,
    PlanConfig,
    build_plan,
    committed_plans,
    load_plan,
)
from .strategy import (
    ASSIGNABLE,
    StrategyCost,
    cheapest_safe,
    message_load,
    strategy_costs,
)

__all__ = [
    "ASSIGNABLE",
    "GraphEdge",
    "GraphNode",
    "InteractionGraph",
    "LogPlan",
    "PLAN_VERSION",
    "PlanConfig",
    "Shard",
    "StrategyCost",
    "build_graph",
    "build_plan",
    "cheapest_safe",
    "check_plan_trace",
    "check_runtime_plan",
    "committed_plans",
    "drift_findings",
    "load_plan",
    "message_load",
    "partition",
    "plan_findings",
    "span_accounting",
    "strategy_costs",
]
