"""Planner diagnostics: PHX014, PHX015, PHX016.

* **PHX014** — a component's *declared* strategy (a plan override)
  disagrees with the statically cheapest safe strategy; the finding
  prices the difference from the plan's per-strategy cost table.
* **PHX015** — a cross-shard edge between co-shardable components
  (same process signature) whose priced force traffic exceeds the
  plan's cut threshold: the partition is paying avoidable cross-log
  traffic.
* **PHX016** — plan drift: the committed plan disagrees with what the
  planner derives from the current ``apps/*/deploy`` wiring (component
  set, process placement, shard membership, or strategy).
"""

from __future__ import annotations

from ..lint import Finding
from .planner import LogPlan


def plan_findings(plan: LogPlan) -> list[Finding]:
    """PHX014 + PHX015 over one plan."""
    out: list[Finding] = []
    for entry in plan.components:
        if not entry["override"]:
            continue
        declared = entry["strategy"]
        choice = entry["planner_strategy"]
        declared_cost = entry["costs"].get(declared)
        choice_cost = entry["costs"][choice]
        if declared_cost is None:
            out.append(Finding(
                entry["path"], entry["line"], 0, "PHX014",
                f"declared logging strategy '{declared}' for "
                f"{entry['name']} is statically unsafe (re-execution "
                "could escape the shard's recovery scope); the "
                f"cheapest safe strategy is '{choice}' "
                f"(~{choice_cost['forces']:g} forces per sweep). "
                f"Fix: drop the override or assign "
                f"--force-strategy {entry['name']}={choice}",
            ))
            continue
        if declared == choice:
            continue
        saved_forces = declared_cost["forces"] - choice_cost["forces"]
        saved_records = (
            declared_cost["records"] - choice_cost["records"]
        )
        out.append(Finding(
            entry["path"], entry["line"], 0, "PHX014",
            f"declared logging strategy '{declared}' for "
            f"{entry['name']} is statically suboptimal: '{choice}' is "
            f"safe and saves ~{saved_forces:g} forces "
            f"({saved_records:+g} records) per sweep "
            f"(declared {declared_cost['forces']:g}f/"
            f"{declared_cost['records']:g}r vs planned "
            f"{choice_cost['forces']:g}f/{choice_cost['records']:g}r). "
            f"Fix: assign --force-strategy {entry['name']}={choice}",
        ))

    threshold = plan.config.cut_threshold
    by_name = {entry["name"]: entry for entry in plan.components}
    for edge in plan.edges:
        if not edge["cross_shard"] or not edge["cuttable"]:
            continue
        if edge["subordinate"]:
            continue
        if edge["weight"] <= threshold:
            continue
        src = by_name.get(edge["src"])
        if src is None:
            continue
        out.append(Finding(
            src["path"], src["line"], 0, "PHX015",
            f"hot cross-shard edge {edge['src']} -> {edge['dst']} "
            f"prices {edge['weight']:g} forces per sweep across the "
            f"shard cut (threshold {threshold:g}); co-shard the pair "
            "(fewer --shards, or adjust the partition) or raise "
            "--cut-threshold if the cut is deliberate",
        ))
    out.sort(key=lambda f: (f.path, f.line, f.rule_id, f.col))
    return out


def drift_findings(
    fresh: LogPlan, committed: LogPlan, plan_path: str
) -> list[Finding]:
    """PHX016: committed plan vs the wiring-derived plan."""
    out: list[Finding] = []
    fresh_by_name = {e["name"]: e for e in fresh.components}
    committed_by_name = {e["name"]: e for e in committed.components}
    for name in sorted(set(fresh_by_name) - set(committed_by_name)):
        entry = fresh_by_name[name]
        out.append(Finding(
            entry["path"], entry["line"], 0, "PHX016",
            f"component {name} is deployed by the wiring but missing "
            f"from the committed plan {plan_path}. Fix: regenerate the "
            "plan (make plan-write)",
        ))
    for name in sorted(set(committed_by_name) - set(fresh_by_name)):
        out.append(Finding(
            plan_path, 1, 0, "PHX016",
            f"component {name} is in the committed plan but no longer "
            "deployed by any apps/*/deploy wiring. Fix: regenerate the "
            "plan (make plan-write)",
        ))
    # Shard membership lists are serialized separately from the
    # per-component entries, so a deploy rename (or a hand-edit) can
    # leave a shard referencing a component name the wiring no longer
    # defines while every per-component entry looks consistent.  The
    # router would silently route nothing to that shard's stream for
    # the stale name — make it a hard drift finding.  Names that are
    # still in the committed component table are already reported by
    # the committed-minus-fresh check above.
    for shard in committed.shards:
        stale = (
            set(shard["components"])
            - set(fresh_by_name)
            - set(committed_by_name)
        )
        for name in sorted(stale):
            out.append(Finding(
                plan_path, 1, 0, "PHX016",
                f"shard {shard['id']} of the committed plan "
                f"{plan_path} lists component {name}, which no "
                "apps/*/deploy wiring defines (renamed or removed "
                "after the plan was committed); sharded logging would "
                "silently route nothing to its stream. Fix: regenerate "
                "the plan (make plan-write)",
            ))
    for name in sorted(set(fresh_by_name) & set(committed_by_name)):
        fresh_entry = fresh_by_name[name]
        committed_entry = committed_by_name[name]
        for key, label in (
            ("processes", "process placement"),
            ("shard", "shard"),
            ("strategy", "logging strategy"),
            ("type", "component type"),
        ):
            if fresh_entry[key] != committed_entry[key]:
                out.append(Finding(
                    fresh_entry["path"], fresh_entry["line"], 0,
                    "PHX016",
                    f"plan drift for {name}: the wiring derives "
                    f"{label} {fresh_entry[key]!r} but the committed "
                    f"plan {plan_path} records "
                    f"{committed_entry[key]!r}. Fix: regenerate the "
                    "plan (make plan-write) or fix the deploy wiring",
                ))
    out.sort(key=lambda f: (f.path, f.line, f.rule_id, f.col))
    return out
