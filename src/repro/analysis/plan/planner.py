"""Build the declarative :class:`LogPlan` artifact.

A plan is a plain-JSON contract between the static planner and the
future multi-log runtime (ROADMAP item 1): per-shard placement, per-
component logging strategy, and the predicted force budgets the TRC109
trace check replays recorded executions against.

Two strategy columns per component:

``planner_strategy``
    the cheapest statically safe strategy (what the future runtime
    should implement);
``strategy``
    what the plan *declares* the runtime does — a ``--force-strategy``
    override when present, else the planner's choice.  PHX014 flags a
    declared strategy that disagrees with the planner's.

``budget_strategy`` drives the TRC109 span budgets and is deliberately
conservative: today's runtime implements only message logging, so every
component's budget prices ``message`` *unless an override asserts
otherwise* — an override is a claim about the running system and is
taken at its word, which is exactly how a mis-declared strategy trips
TRC109 on a real trace (the observed message-logging forces exceed the
tighter declared budget).

Serialization is canonical — ``sort_keys``, two-space indent, trailing
newline, no timestamps — so two runs over one tree are byte-identical.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..infer.costmodel import CostModel, _RATIO
from ..model import ProgramModel
from .graph import build_graph
from .partition import partition
from .strategy import ASSIGNABLE, cheapest_safe, strategy_costs

PLAN_VERSION = 1
#: covered strategies whose budget skips the caller's pre-send force
_SERVER_DURABLE = ("state", "command")


@dataclass
class PlanConfig:
    shards: int | None = None
    loop_weight: int = 4
    cut_threshold: float = 8.0
    #: component name -> declared strategy (``--force-strategy``)
    overrides: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "loop_weight": self.loop_weight,
            "cut_threshold": self.cut_threshold,
            "overrides": dict(sorted(self.overrides.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanConfig":
        return cls(
            shards=data.get("shards"),
            loop_weight=data.get("loop_weight", 4),
            cut_threshold=data.get("cut_threshold", 8.0),
            overrides=dict(data.get("overrides", {})),
        )


class LogPlan:
    """The emitted artifact; a thin typed wrapper over plain JSON."""

    def __init__(self, payload: dict):
        self.payload = payload

    # -- views ---------------------------------------------------------
    @property
    def config(self) -> PlanConfig:
        return PlanConfig.from_dict(self.payload["config"])

    @property
    def components(self) -> list[dict]:
        return self.payload["components"]

    @property
    def shards(self) -> list[dict]:
        return self.payload["shards"]

    @property
    def edges(self) -> list[dict]:
        return self.payload["edges"]

    @property
    def span_budgets(self) -> list[dict]:
        return self.payload["span_budgets"]

    def component(self, name: str) -> dict | None:
        for entry in self.components:
            if entry["name"] == name:
                return entry
        return None

    def budget_for(self, process: str, method: str) -> dict | None:
        for entry in self.span_budgets:
            if entry["process"] == process and entry["method"] == method:
                return entry
        return None

    # -- serialization -------------------------------------------------
    def dumps(self) -> str:
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "LogPlan":
        return cls(json.loads(text))


def load_plan(path: str | Path) -> LogPlan:
    return LogPlan.loads(Path(path).read_text())


_REPO_ROOT = Path(__file__).resolve().parents[4]


def _artifact_path(path: str) -> str:
    """Repo-relative POSIX path for the plan artifact, so the emitted
    bytes do not depend on whether the model was built from absolute
    or cwd-relative inputs.  Paths outside the repo pass through."""
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return str(path)


_COMMITTED: list[LogPlan] | None = None


def committed_plans() -> list[LogPlan]:
    """The repo's committed plans (``plans/*.logplan.json``), loaded
    once per process.  The ``REPRO_LOG_PLANS`` environment variable
    overrides the search: an ``os.pathsep``-separated list of plan
    files, or the empty string to disable plan conformance entirely.
    Unreadable files are skipped silently here — ``repro-analyze plan
    --check`` is the gate that reports them."""
    global _COMMITTED
    if _COMMITTED is not None:
        return _COMMITTED
    env = os.environ.get("REPRO_LOG_PLANS")
    if env is not None:
        paths = [Path(p) for p in env.split(os.pathsep) if p]
    else:
        repo_root = Path(__file__).resolve().parents[4]
        paths = sorted((repo_root / "plans").glob("*.logplan.json"))
    plans: list[LogPlan] = []
    for path in paths:
        try:
            plans.append(load_plan(path))
        except (OSError, ValueError):
            continue
    _COMMITTED = plans
    return plans


def _budget_strategy(entry: dict) -> str:
    """The strategy this component's TRC109 budget prices."""
    if entry["type"] in ("functional", "read_only"):
        return "none"
    if entry["type"] == "subordinate":
        return "inlined"
    return entry["strategy"] if entry["override"] else "message"


def _span_budgets(
    cost: CostModel,
    budget_strategies: dict[str, str],
    shard_of: dict[str, str],
) -> list[dict]:
    """Strategy-adjusted per-(process, entry-method) force budgets.

    Same linear-in-events shape as TRC106 (``entry + ratio × events``),
    with two tightenings where a component's budget strategy makes the
    server side durable on its own: edges whose every resolved target
    is state/command-logged contribute ratio 0 (the caller skips its
    pre-send force), and a state/command-logged *entry* needs a single
    forced record for the whole exchange (entry budget 1 instead of
    Algorithm 3's 2).
    """
    def ratio(edge) -> float:
        if edge.category in ("functional", "read_only"):
            return 0.0
        if edge.targets == ("?",):
            return _RATIO[edge.category]
        if all(
            budget_strategies.get(target) in _SERVER_DURABLE
            for target in edge.targets
        ):
            return 0.0
        return _RATIO[edge.category]

    table: dict[tuple[str, str], dict] = {}
    for class_name, method_name in cost.entries():
        for process in sorted(
            cost.engine.wiring.processes_for(class_name)
        ):
            ratios = []
            for ro_opt in (True, False):
                edges = cost.collect_edges(
                    class_name, method_name,
                    ro_opt=ro_opt, process=process,
                )
                ratios.append(max(
                    (ratio(edge) for edge in edges), default=0.0,
                ))
            entry_budget = (
                1
                if budget_strategies.get(class_name) in _SERVER_DURABLE
                else None
            )
            entry = {
                "process": process,
                "method": method_name,
                "classes": [class_name],
                "entry_budget": entry_budget,
                "ratio_ro_on": ratios[0],
                "ratio_ro_off": ratios[1],
                "shards": sorted(
                    {shard_of[class_name]}
                    if class_name in shard_of
                    else set()
                ),
            }
            key = (process, method_name)
            existing = table.get(key)
            if existing is None:
                table[key] = entry
                continue
            # merge: loosest bound wins (several classes may answer the
            # same method name on one process)
            existing["classes"] = sorted(
                set(existing["classes"]) | {class_name}
            )
            existing["ratio_ro_on"] = max(
                existing["ratio_ro_on"], entry["ratio_ro_on"]
            )
            existing["ratio_ro_off"] = max(
                existing["ratio_ro_off"], entry["ratio_ro_off"]
            )
            if existing["entry_budget"] is None or entry_budget is None:
                existing["entry_budget"] = None
            else:
                existing["entry_budget"] = max(
                    existing["entry_budget"], entry_budget
                )
            existing["shards"] = sorted(
                set(existing["shards"]) | set(entry["shards"])
            )
    return [table[key] for key in sorted(table)]


def build_plan(model: ProgramModel, config: PlanConfig) -> LogPlan:
    graph, engine = build_graph(model, loop_weight=config.loop_weight)
    shards = partition(graph, config.shards)
    shard_of = {
        member: shard.shard_id
        for shard in shards
        for member in shard.members
    }

    components: list[dict] = []
    planned_budget: dict[str, float] = {
        shard.shard_id: 0.0 for shard in shards
    }
    for name in sorted(graph.nodes):
        node = graph.nodes[name]
        costs = strategy_costs(graph, node, shard_of)
        planner_choice, planner_cost = cheapest_safe(costs)
        override = config.overrides.get(name)
        if override is not None and (
            node.ctype not in ("persistent",)
            or override not in ASSIGNABLE
        ):
            override = None  # only persistent components take overrides
        strategy = override or planner_choice
        declared_cost = costs.get(strategy)
        safe = declared_cost is not None
        entry = {
            "name": name,
            "type": node.ctype,
            "processes": list(node.processes),
            "shard": shard_of.get(name),
            "strategy": strategy,
            "planner_strategy": planner_choice,
            "override": override is not None,
            "safe": safe,
            "costs": {
                strat: (cost.to_dict() if cost is not None else None)
                for strat, cost in sorted(costs.items())
            },
            "predicted": (
                declared_cost.to_dict()
                if declared_cost is not None
                else planner_cost.to_dict()
            ),
            "path": _artifact_path(node.path),
            "line": node.line,
            "attr_count": node.attr_count,
            "multicall_saved": node.multicall_saved,
        }
        entry["budget_strategy"] = _budget_strategy(entry)
        components.append(entry)
        shard_id = shard_of.get(name)
        if shard_id is not None:
            planned_budget[shard_id] += (
                declared_cost or planner_cost
            ).forces

    shard_entries = []
    for shard in shards:
        data = shard.to_dict()
        data["planned_force_budget"] = planned_budget[shard.shard_id]
        shard_entries.append(data)

    edge_entries = []
    for key in sorted(graph.edges):
        edge = graph.edges[key]
        data = edge.to_dict()
        src_sig = graph.nodes[edge.src].processes
        dst_sig = graph.nodes[edge.dst].processes
        data["cross_shard"] = (
            shard_of.get(edge.src) != shard_of.get(edge.dst)
        )
        # an edge is *cuttable* (PHX015's subject) only when both ends
        # could legally co-shard; cross-process traffic is the paper's
        # distributed deployment, not a planning mistake
        data["cuttable"] = src_sig == dst_sig
        edge_entries.append(data)

    budget_strategies = {
        entry["name"]: entry["budget_strategy"] for entry in components
    }
    cost = CostModel(engine)
    payload = {
        "version": PLAN_VERSION,
        "config": config.to_dict(),
        "components": components,
        "shards": shard_entries,
        "edges": edge_entries,
        "span_budgets": _span_budgets(
            cost, budget_strategies, shard_of
        ),
    }
    return LogPlan(payload)
