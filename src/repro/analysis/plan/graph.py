"""The weighted component-interaction graph the planner partitions.

Nodes are the deployed component classes (plus subordinate-only classes,
which inherit their parents' process signature); directed edges are the
*intercepted* proxy calls between them, aggregated per ``(caller,
callee)`` pair and priced by the PR-4 force-cost model
(:class:`~repro.analysis.infer.costmodel.CostModel`):

* every edge carries the per-call record/force cost split into its
  client (message 3/4) and server (message 1/2) sides, so the planner
  can attribute savings to whichever end a strategy changes;
* edges sitting inside loops are priced per-iteration and multiplied by
  a configurable ``loop_weight`` (static analysis cannot know the trip
  count; the weight is the planner's assumed iterations);
* the Section 3.5 multi-call discount — within one context execution,
  distinct server processes after the first need no pre-send force —
  is computed per entry method and recorded on the *caller* node, since
  the skipped force belongs to no single edge;
* ``new_subordinate`` children get a zero-weight *affinity* edge from
  their parent: subordinate calls are never intercepted, so the pair
  must land in one shard.

Edge collection is deliberately *context-local*: for each node, every
public method is walked through its own self-calls and subordinates
(one uniform invocation each — the planner's load model), but recursion
stops at proxied targets — the callee's own fan-out is priced when the
callee node is walked.  This keeps every intercepted call counted
exactly once across the graph, unlike the whole-application mode of
``CostModel.collect_edges`` which re-prices shared subtrees per entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import ProgramModel
from ..infer.costmodel import _RATIO, CostModel, Edge
from ..infer.engine import Engine


@dataclass
class GraphNode:
    """One component class, with its uniform-sweep entry pricing."""

    name: str
    ctype: str  #: functional | read_only | subordinate | persistent
    processes: tuple[str, ...]
    path: str
    line: int
    #: persisted ``self`` attributes — the state-record size proxy
    attr_count: int
    entry_methods: tuple[str, ...] = ()
    #: Algorithm 3 cost of one external invocation of each entry method
    entry_forces: int = 0
    entry_records: int = 0
    #: Section 3.5 forces saved per sweep across this node's fan-out
    multicall_saved: int = 0
    subordinate_parents: tuple[str, ...] = ()
    #: intercepted calls whose target never resolved (Section 3.4:
    #: priced persistent; they block command logging)
    unknown_out_calls: int = 0
    unknown_out_forces: float = 0.0
    unknown_out_records: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.ctype,
            "processes": list(self.processes),
            "path": self.path,
            "line": self.line,
            "attr_count": self.attr_count,
            "entry_methods": list(self.entry_methods),
            "entry_forces": self.entry_forces,
            "entry_records": self.entry_records,
            "multicall_saved": self.multicall_saved,
            "subordinate_parents": list(self.subordinate_parents),
            "unknown_out_calls": self.unknown_out_calls,
            "unknown_out_forces": self.unknown_out_forces,
            "unknown_out_records": self.unknown_out_records,
        }


@dataclass
class GraphEdge:
    """Aggregated intercepted calls from ``src`` to ``dst``."""

    src: str
    dst: str
    calls: int = 0  #: loop-weighted intercepted call count per sweep
    client_forces: float = 0.0
    client_records: float = 0.0
    server_forces: float = 0.0
    server_records: float = 0.0
    #: zero-weight new_subordinate affinity (never intercepted, never cut)
    subordinate: bool = False
    lines: tuple[int, ...] = ()

    @property
    def weight(self) -> float:
        """Force traffic the edge prices per sweep (both sides)."""
        return self.client_forces + self.server_forces

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "calls": self.calls,
            "client_forces": self.client_forces,
            "client_records": self.client_records,
            "server_forces": self.server_forces,
            "server_records": self.server_records,
            "subordinate": self.subordinate,
            "weight": self.weight,
            "lines": list(self.lines),
        }


@dataclass
class InteractionGraph:
    nodes: dict[str, GraphNode] = field(default_factory=dict)
    edges: dict[tuple[str, str], GraphEdge] = field(default_factory=dict)

    def out_edges(self, name: str) -> list[GraphEdge]:
        return [
            self.edges[key] for key in sorted(self.edges)
            if key[0] == name and not self.edges[key].subordinate
        ]

    def in_edges(self, name: str) -> list[GraphEdge]:
        return [
            self.edges[key] for key in sorted(self.edges)
            if key[1] == name and not self.edges[key].subordinate
        ]

    def affinity_edges(self) -> list[GraphEdge]:
        return [
            self.edges[key] for key in sorted(self.edges)
            if self.edges[key].subordinate
        ]


def _split_edge_cost(
    ctx_declared: str | None, category: str
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Per-call ``((client records, forces), (server records, forces))``
    — the two-sided split of ``CostModel.edge_cost`` (the sum is
    asserted equal in the planner tests)."""
    if category == "functional":
        return (0, 0), (0, 0)  # Algorithm 4: nothing either side
    if category == "read_only":
        if ctx_declared in ("functional", "read_only"):
            return (0, 0), (0, 0)
        return (1, 0), (0, 0)  # Algorithm 5: unforced msg-4 record
    # persistent or unknown target (Section 3.4: priced persistent)
    if ctx_declared == "read_only":
        return (0, 0), (0, 0)
    if ctx_declared == "functional":
        return (0, 0), (1, 1)  # server msg-1 record + pre-reply force
    # persistent caller: msg-3 force + msg-4 record (client side),
    # msg-1 record + msg-2 force (server side)
    return (1, 1), (1, 1)


def edge_ratio(category: str) -> float:
    """TRC106's forces-per-event ratio for an edge category."""
    return _RATIO[category]


class _LocalCollector:
    """Context-local edge walk: self-calls and subordinate calls are
    inlined (they run in the caller's context), proxied calls emit an
    edge and stop."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._cost = CostModel(engine)

    def edges(self, class_name: str, method_name: str) -> list[Edge]:
        out: list[Edge] = []
        self._walk(
            class_name, class_name, method_name,
            in_loop=False, seen=set(), out=out,
        )
        return out

    def _walk(self, ctx, impl, method_name, in_loop, seen, out):
        key = (impl, method_name)
        if key in seen:
            return
        seen.add(key)
        facts = self.engine.facts.get(impl)
        if facts is None:
            return
        method = facts.methods.get(method_name)
        if method is None:
            return
        for callee, loop in method.self_calls:
            self._walk(ctx, impl, callee, in_loop or loop, seen, out)
        for call in method.out_calls:
            resolution = self.engine.resolve(facts, call.bases)
            loop = in_loop or call.in_loop
            for sub in sorted(resolution.subordinate):
                self._walk(ctx, sub, call.method, loop, seen, out)
            if not resolution.proxied and not resolution.unknown:
                continue
            category = self.engine_category(resolution, call.method)
            out.append(Edge(
                context=ctx,
                method=call.method,
                targets=tuple(sorted(resolution.proxied)) or ("?",),
                category=category,
                in_loop=loop,
                lineno=call.lineno,
            ))

    def engine_category(self, resolution, method_name: str) -> str:
        return self._cost._category(resolution, method_name, ro_opt=True)


def build_graph(
    model: ProgramModel, loop_weight: int = 4
) -> tuple[InteractionGraph, Engine]:
    """Build the priced interaction graph (and return the engine so the
    planner can reuse its wiring and fixpoints)."""
    engine = Engine(model)
    engine.run_fixpoints()
    graph = InteractionGraph()

    deployed = sorted(
        (engine.wiring.instantiated_classes() | set(engine.sub_parents))
        & set(engine.by_name)
    )
    for name in deployed:
        info = engine.by_name[name]
        facts = engine.facts[name]
        sub_only = engine.subordinate_only(name)
        parents = tuple(sorted(engine.sub_parents.get(name, ())))
        if sub_only:
            processes: set[str] = set()
            for parent in parents:
                processes |= engine.wiring.processes_for(parent)
            ctype = "subordinate"
        else:
            processes = engine.wiring.processes_for(name)
            ctype = info.effective_declared or engine.infer_type(name)
        graph.nodes[name] = GraphNode(
            name=name,
            ctype=ctype,
            processes=tuple(sorted(processes)),
            path=info.module.path,
            line=info.node.lineno,
            attr_count=len(facts.attr_origins) or 1,
            subordinate_parents=parents,
        )

    collector = _LocalCollector(engine)
    for name in deployed:
        node = graph.nodes[name]
        if node.ctype == "subordinate":
            # a subordinate's calls execute inside its parent's context
            # and are already collected through the parent's walk
            for parent in node.subordinate_parents:
                key = (parent, name)
                edge = graph.edges.get(key)
                if edge is None:
                    edge = graph.edges[key] = GraphEdge(
                        src=parent, dst=name, subordinate=True,
                    )
            continue
        facts = engine.facts[name]
        entry_methods = tuple(
            m for m in sorted(facts.methods) if not m.startswith("_")
        )
        node.entry_methods = entry_methods
        declared = node.ctype
        for method_name in entry_methods:
            method = facts.methods[method_name]
            if declared in ("functional", "read_only"):
                pass  # Algorithms 4/5: stateless entry logs nothing
            elif method.read_only_marked:
                pass  # Algorithm 5
            else:
                node.entry_forces += 2  # Algorithm 3 forces msgs 1+2
                node.entry_records += 2
            local = collector.edges(name, method_name)
            # Section 3.5: within this one entry execution, distinct
            # server processes after the first skip the pre-send force
            multicall_processes: set[str] = set()
            for edge in local:
                count = loop_weight if edge.in_loop else 1
                (c_rec, c_force), (s_rec, s_force) = _split_edge_cost(
                    declared, edge.category
                )
                if (
                    edge.category in ("persistent", "unknown")
                    and not edge.in_loop
                ):
                    for target in edge.targets:
                        multicall_processes |= (
                            engine.wiring.processes_for(target)
                        )
                for target in sorted(set(edge.targets)):
                    if target == "?" or target not in graph.nodes:
                        node.unknown_out_calls += count
                        node.unknown_out_forces += c_force * count
                        node.unknown_out_records += c_rec * count
                        continue
                    key = (name, target)
                    agg = graph.edges.get(key)
                    if agg is None:
                        agg = graph.edges[key] = GraphEdge(
                            src=name, dst=target,
                        )
                    agg.calls += count
                    agg.client_records += c_rec * count
                    agg.client_forces += c_force * count
                    agg.server_records += s_rec * count
                    agg.server_forces += s_force * count
                    if edge.lineno not in agg.lines:
                        agg.lines = tuple(
                            sorted(set(agg.lines) | {edge.lineno})
                        )
            node.multicall_saved += max(0, len(multicall_processes) - 1)
    return graph, engine
