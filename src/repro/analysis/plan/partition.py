"""Deterministic shard partitioning of the interaction graph.

Constraints and objective:

* a shard never spans processes — recovery replays one log against one
  process's components, so nodes are first grouped by *process
  signature* (the sorted tuple of processes the wiring deploys them
  to);
* subordinate affinity edges are contracted up front (union-find): a
  parent and its ``new_subordinate`` children always co-shard, their
  calls being invisible to the interceptor;
* the default shard count is one per signature group — the cut then
  contains only unavoidable cross-process traffic;
* ``shards=K`` with ``K`` larger splits the heaviest groups by greedy
  bipartition: clusters are placed heaviest-first onto the side that
  maximizes ``(internal edge weight gained) - balance × (load
  imbalance created)``, followed by bounded refinement sweeps that
  move a cluster across the cut when doing so strictly reduces
  ``(cut weight, load imbalance)``.

Everything ties-breaks on names, so the partition is a pure function
of the graph — byte-identical across runs and filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import InteractionGraph
from .strategy import message_load

#: weight of load imbalance against cut weight in the greedy objective
_BALANCE = 0.5
_REFINE_SWEEPS = 8


@dataclass
class Shard:
    shard_id: str
    processes: tuple[str, ...]
    members: tuple[str, ...]
    load: float = 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.shard_id,
            "processes": list(self.processes),
            "components": list(self.members),
            "force_load": self.load,
        }


@dataclass
class _Cluster:
    """An affinity-contracted unit of placement."""

    name: str  #: min member name (deterministic identity)
    members: tuple[str, ...]
    signature: tuple[str, ...]
    load: float = 0.0
    #: symmetric cluster-to-cluster force weights (by cluster name)
    adj: dict[str, float] = field(default_factory=dict)


def _clusters(graph: InteractionGraph) -> list[_Cluster]:
    parent: dict[str, str] = {name: name for name in graph.nodes}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # deterministic: smaller name becomes the root
            lo, hi = sorted((ra, rb))
            parent[hi] = lo

    for edge in graph.affinity_edges():
        union(edge.src, edge.dst)

    groups: dict[str, list[str]] = {}
    for name in sorted(graph.nodes):
        groups.setdefault(find(name), []).append(name)

    clusters: list[_Cluster] = []
    for root in sorted(groups):
        members = tuple(sorted(groups[root]))
        signature: set[str] = set()
        load = 0.0
        for member in members:
            node = graph.nodes[member]
            signature |= set(node.processes)
            load += message_load(graph, node)
        clusters.append(_Cluster(
            name=members[0],
            members=members,
            signature=tuple(sorted(signature)),
            load=load,
        ))
    by_name = {c.name: c for c in clusters}
    member_cluster = {
        m: c.name for c in clusters for m in c.members
    }
    for (src, dst), edge in sorted(graph.edges.items()):
        if edge.subordinate:
            continue
        ca, cb = member_cluster[src], member_cluster[dst]
        if ca == cb:
            continue
        by_name[ca].adj[cb] = by_name[ca].adj.get(cb, 0.0) + edge.weight
        by_name[cb].adj[ca] = by_name[cb].adj.get(ca, 0.0) + edge.weight
    return clusters


def _bipartition(clusters: list[_Cluster]) -> tuple[list, list]:
    """Greedy min-cut split of one signature group's clusters."""
    ordered = sorted(
        clusters, key=lambda c: (-c.load, c.name)
    )
    sides: tuple[list[_Cluster], list[_Cluster]] = ([ordered[0]], [])
    if len(ordered) > 1:
        sides[1].append(ordered[1])
    loads = [sides[0][0].load, sides[1][0].load if sides[1] else 0.0]
    names = [{c.name for c in side} for side in sides]
    for cluster in ordered[2:]:
        scores = []
        for index in (0, 1):
            gain = sum(
                weight
                for other, weight in cluster.adj.items()
                if other in names[index]
            )
            imbalance = abs(
                (loads[index] + cluster.load) - loads[1 - index]
            )
            scores.append(gain - _BALANCE * imbalance)
        # higher score wins; tie -> lighter side; tie -> side 0
        if scores[1] > scores[0] or (
            scores[1] == scores[0] and loads[1] < loads[0]
        ):
            index = 1
        else:
            index = 0
        sides[index].append(cluster)
        loads[index] += cluster.load
        names[index].add(cluster.name)

    for _ in range(_REFINE_SWEEPS):
        moved = False
        for cluster in sorted(
            sides[0] + sides[1], key=lambda c: c.name
        ):
            here = 0 if cluster.name in names[0] else 1
            there = 1 - here
            if len(sides[here]) == 1:
                continue  # never empty a side
            stay_gain = sum(
                w for o, w in cluster.adj.items() if o in names[here]
            )
            move_gain = sum(
                w for o, w in cluster.adj.items() if o in names[there]
            )
            cut_delta = stay_gain - move_gain  # move adds this to cut
            imb_now = abs(loads[0] - loads[1])
            if here == 0:
                imb_after = abs(
                    (loads[0] - cluster.load)
                    - (loads[1] + cluster.load)
                )
            else:
                imb_after = abs(
                    (loads[0] + cluster.load)
                    - (loads[1] - cluster.load)
                )
            if (cut_delta, imb_after) < (0.0, imb_now):
                sides[here].remove(cluster)
                sides[there].append(cluster)
                names[here].discard(cluster.name)
                names[there].add(cluster.name)
                loads[here] -= cluster.load
                loads[there] += cluster.load
                moved = True
        if not moved:
            break
    return sides[0], sides[1]


def partition(
    graph: InteractionGraph, shards: int | None = None
) -> list[Shard]:
    """Partition the graph; returns shards sorted by id."""
    clusters = _clusters(graph)
    groups: dict[tuple[str, ...], list[_Cluster]] = {}
    for cluster in clusters:
        groups.setdefault(cluster.signature, []).append(cluster)

    parts: list[tuple[tuple[str, ...], list[_Cluster]]] = [
        (signature, groups[signature]) for signature in sorted(groups)
    ]
    target = max(shards or 0, len(parts))
    while len(parts) < target:
        # split the heaviest part that still has >= 2 clusters
        candidates = [
            (index, sum(c.load for c in part))
            for index, (_, part) in enumerate(parts)
            if len(part) >= 2
        ]
        if not candidates:
            break
        index = max(candidates, key=lambda item: (item[1], -item[0]))[0]
        signature, part = parts[index]
        left, right = _bipartition(part)
        parts[index:index + 1] = [(signature, left), (signature, right)]

    # deterministic naming: signature joined by '+', then sub-index in
    # min-member order
    by_signature: dict[tuple[str, ...], list[list[_Cluster]]] = {}
    for signature, part in parts:
        by_signature.setdefault(signature, []).append(part)
    out: list[Shard] = []
    for signature in sorted(by_signature):
        sub_parts = sorted(
            by_signature[signature],
            key=lambda part: min(c.name for c in part),
        )
        for index, part in enumerate(sub_parts):
            label = "+".join(signature) or "<unplaced>"
            if len(sub_parts) > 1:
                label = f"{label}/{index}"
            members = tuple(sorted(
                m for cluster in part for m in cluster.members
            ))
            out.append(Shard(
                shard_id=label,
                processes=signature,
                members=members,
                load=sum(c.load for c in part),
            ))
    return sorted(out, key=lambda s: s.shard_id)
