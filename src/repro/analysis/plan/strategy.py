"""Per-component logging-strategy lattice and pricing.

The paper logs every persistent interaction as *messages* (Algorithms
2/3).  *Adaptive Logging for Distributed In-memory Databases*
(PAPERS.md) shows a priced cost model can pick a cheaper strategy per
unit of work; the planner makes the same choice per component:

``none``
    Stateless components (functional/read-only) log nothing
    (Algorithms 4/5) — there is nothing to choose.
``inlined``
    Subordinates log through their parent's context (Section 3.2.1);
    their calls are never intercepted.
``message``
    The paper's strategy and the only one today's runtime implements:
    per intercepted call the server logs a forced context record pair
    and the *caller* pays a pre-send force (Algorithm 2).
``state``
    A forced context-record (state snapshot) per incoming call.  The
    snapshot makes the exchange durable on the server alone, so
    *internal* callers skip their pre-send force — the saving grows
    with fan-in — at the price of snapshot-sized records (one full
    state image, ``attr_count`` record units, per call).  Safe for any
    persistent component: the snapshot subsumes replay.
``command``
    A forced command record per incoming call; recovery *re-executes*
    the command.  Same fan-in saving as ``state`` with unit-sized
    records, plus co-sharded outgoing calls need no pre-send force
    (re-execution is contained in one log's recovery scope).  Safe
    only when every persistent outgoing edge is co-sharded and no
    edge resolves to an unknown target — re-executing a call that
    escaped the shard could double-apply it.

External entries always keep their Algorithm 3 forces: the client is
outside every shard, so the window-of-vulnerability argument
(Section 3.1.2) is unaffected by the server's strategy choice.

Costs are (forces, records) per uniform sweep (one invocation of every
entry method of every component).  Ties break toward the *simpler*
strategy: message < state < command.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import GraphNode, InteractionGraph

#: simpler-first tie-break order
STRATEGY_RANK = {"none": 0, "inlined": 0, "message": 0, "state": 1,
                 "command": 2}

#: strategies a component may be pinned to via ``--force-strategy``
ASSIGNABLE = ("message", "state", "command")


@dataclass(frozen=True)
class StrategyCost:
    forces: float
    records: float

    def to_dict(self) -> dict:
        return {"forces": self.forces, "records": self.records}


def strategy_costs(
    graph: InteractionGraph,
    node: GraphNode,
    shard_of: dict[str, str],
) -> dict[str, StrategyCost | None]:
    """Price every strategy for one node (``None`` = statically unsafe).

    ``shard_of`` maps node name -> shard id; ``command`` consults it to
    decide which outgoing edges are co-sharded.
    """
    if node.ctype in ("functional", "read_only"):
        return {"none": StrategyCost(0.0, 0.0)}
    if node.ctype == "subordinate":
        return {"inlined": StrategyCost(0.0, 0.0)}

    in_edges = graph.in_edges(node.name)
    out_edges = graph.out_edges(node.name)
    in_server_forces = sum(e.server_forces for e in in_edges)
    in_server_records = sum(e.server_records for e in in_edges)
    in_client_forces = sum(e.client_forces for e in in_edges)
    out_client_forces = (
        sum(e.client_forces for e in out_edges)
        + node.unknown_out_forces
    )
    out_client_records = (
        sum(e.client_records for e in out_edges)
        + node.unknown_out_records
    )
    out_client_forces = max(
        0.0, out_client_forces - node.multicall_saved
    )
    incoming_calls = (
        sum(e.calls for e in in_edges) + len(node.entry_methods)
    )

    costs: dict[str, StrategyCost | None] = {
        "message": StrategyCost(
            forces=(
                node.entry_forces + in_server_forces + out_client_forces
            ),
            records=(
                node.entry_records
                + in_server_records
                + out_client_records
            ),
        ),
        "state": StrategyCost(
            forces=(
                node.entry_forces
                + in_server_forces
                + out_client_forces
                - in_client_forces
            ),
            records=(
                node.entry_records + node.attr_count * incoming_calls
            ),
        ),
    }

    unsafe_command = False
    cross_client_forces = 0.0
    my_shard = shard_of.get(node.name)
    for edge in out_edges:
        target = graph.nodes.get(edge.dst)
        target_type = target.ctype if target else "persistent"
        if target_type in ("functional", "read_only"):
            continue
        if shard_of.get(edge.dst) != my_shard:
            cross_client_forces += edge.client_forces
    if node.unknown_out_calls:
        # re-executing a call whose target cannot be placed could
        # double-apply it outside the shard's recovery scope
        unsafe_command = True
    if "<unknown>" in node.processes or my_shard is None:
        unsafe_command = True
    if unsafe_command:
        costs["command"] = None
    else:
        costs["command"] = StrategyCost(
            forces=(
                node.entry_forces
                + in_server_forces
                + min(cross_client_forces, out_client_forces)
                - in_client_forces
            ),
            records=node.entry_records + incoming_calls,
        )
    return costs


def cheapest_safe(
    costs: dict[str, StrategyCost | None],
) -> tuple[str, StrategyCost]:
    """The planner's choice: min (forces, records, rank)."""
    best_name = None
    best_cost = None
    for name in sorted(costs, key=lambda n: STRATEGY_RANK.get(n, 9)):
        cost = costs[name]
        if cost is None:
            continue
        if best_cost is None or (
            (cost.forces, cost.records)
            < (best_cost.forces, best_cost.records)
        ):
            best_name, best_cost = name, cost
    assert best_name is not None and best_cost is not None
    return best_name, best_cost


def message_load(graph: InteractionGraph, node: GraphNode) -> float:
    """The node's force load per sweep under today's message logging —
    the partitioner's balancing weight."""
    if node.ctype in ("functional", "read_only", "subordinate"):
        return 0.0
    out_client = (
        sum(e.client_forces for e in graph.out_edges(node.name))
        + node.unknown_out_forces
    )
    return (
        node.entry_forces
        + sum(e.server_forces for e in graph.in_edges(node.name))
        + max(0.0, out_client - node.multicall_saved)
    )
