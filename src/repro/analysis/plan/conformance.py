"""TRC109: replay a recorded trace against a :class:`LogPlan`.

Reuses TRC106's span machinery (:func:`_top_level_spans` partitions a
process trace into closed top-level call spans per session) but takes
its budgets from the *plan* instead of the raw cost model, which adds
two things:

* strategy awareness — a span's force limit uses the plan's
  strategy-adjusted ratio and, when the entry component's declared
  strategy makes the server durable on its own (state/command), the
  plan's tighter ``entry_budget`` of one forced record;
* per-shard accounting — each span's observed forces and limit are
  attributed to the entry component's shard (when the span's method
  resolves to exactly one shard) and the cumulative totals must stay
  within the shard budget as well.

Violations carry a replayable trace reference: the span's entry method,
its anchor LSN and its session, enough to re-locate the exact span in
the recorded :class:`~repro.analysis.trace.ProtocolTrace`.
"""

from __future__ import annotations

from ..trace import NO_LSN, ProtocolTrace
from ..trace_check import (
    MessageKind,
    Violation,
    _entry_force_bound,
    _top_level_spans,
)
from .planner import LogPlan

_EPS = 1e-9


def span_accounting(
    trace: ProtocolTrace, plan: LogPlan, process_name: str
) -> list[dict]:
    """Per-span budget accounting for one process trace: for every
    closed top-level span whose entry method the plan budgets, the
    observed force count next to the plan's limit.  The TRC109 check
    and the predicted-vs-observed bench table both consume this."""
    budgets = {
        (entry["process"], entry["method"]): entry
        for entry in plan.span_budgets
    }
    spans: list[dict] = []
    for index, (entry_event, events) in enumerate(
        _top_level_spans(trace.entries)
    ):
        method = entry_event.method
        if method is None:
            continue
        budget = budgets.get((process_name, method))
        if budget is None:
            continue  # not a planned entry point on this process
        if entry_event.replaying:
            continue  # recovery reconstruction, not live traffic
        if not entry_event.optimized:
            # Algorithm 1 forces every message; the plan's strategy
            # budgets only constrain the optimized system
            ratio, cold, entry_budget = 1.0, 0, None
        else:
            ratio = (
                budget["ratio_ro_on"]
                if entry_event.read_only_opt
                else budget["ratio_ro_off"]
            )
            # Section 3.4 cold-start conservatism: a forced send to a
            # peer whose type is still unknown is legitimate
            cold = sum(
                1
                for event in events
                if event.kind is MessageKind.OUTGOING_CALL
                and event.peer_type is None
                and event.forced
            )
            entry_budget = budget["entry_budget"]
        entry_limit = (
            entry_budget
            if entry_budget is not None
            else _entry_force_bound(entry_event)
        )
        limit = entry_limit + cold + ratio * max(
            0, len(events) - 2 - 2 * cold
        )
        observed = sum(1 for event in events if event.forced)
        anchor = (
            entry_event.record_lsn
            if entry_event.record_lsn != NO_LSN
            else entry_event.end_lsn
        )
        spans.append({
            "index": index,
            "method": method,
            "session": entry_event.session,
            "anchor": anchor,
            "events": len(events),
            "observed": observed,
            "limit": limit,
            "entry_limit": entry_limit,
            "ratio": ratio,
            "classes": budget["classes"],
            "shards": budget.get("shards") or [],
        })
    return spans


def check_plan_trace(
    trace: ProtocolTrace, plan: LogPlan, process_name: str
) -> list[Violation]:
    """TRC109 over one process trace."""
    violations: list[Violation] = []
    #: shard id -> [observed, limit, last anchor lsn, span count]
    shard_totals: dict[str, list[float]] = {}
    for span in span_accounting(trace, plan, process_name):
        observed, limit = span["observed"], span["limit"]
        anchor = span["anchor"]
        if observed > limit + _EPS:
            session = (
                f"session {span['session']}"
                if span["session"] is not None
                else "serial"
            )
            violations.append(Violation(
                "TRC109", anchor,
                f"span #{span['index']} {span['method']}() on "
                f"{process_name} ({session}, entered at LSN {anchor}): "
                f"{observed} forces over {span['events']} events "
                f"exceeds the plan budget {limit:g} (entry budget "
                f"{span['entry_limit']:g}, ratio {span['ratio']:g}, "
                f"strategy of {'/'.join(span['classes'])} per plan)",
            ))
        if len(span["shards"]) == 1:
            totals = shard_totals.setdefault(
                span["shards"][0], [0.0, 0.0, 0, 0]
            )
            totals[0] += observed
            totals[1] += limit
            totals[2] = anchor
            totals[3] += 1
    for shard_id in sorted(shard_totals):
        observed_sum, limit_sum, last_anchor, spans = (
            shard_totals[shard_id]
        )
        if observed_sum > limit_sum + _EPS:
            violations.append(Violation(
                "TRC109", int(last_anchor),
                f"shard {shard_id}: {observed_sum:g} observed forces "
                f"across {int(spans)} spans on {process_name} exceed "
                f"the cumulative plan budget {limit_sum:g}",
            ))
    return violations


def check_runtime_plan(
    runtime, plan: LogPlan
) -> list[tuple[str, Violation]]:
    """TRC109 over every process of a runtime.

    Under sharded logging a process carries one trace per log stream;
    each is checked independently — a span's records and events all
    belong to its serving context and therefore to one stream, so spans
    stay whole per trace and the shard totals accumulate per stream's
    budget exactly as they did on the single legacy trace.
    """
    from ..trace_check import _process_traces

    problems: list[tuple[str, Violation]] = []
    for process in runtime.processes():
        for trace in _process_traces(process):
            for violation in check_plan_trace(trace, plan, process.name):
                problems.append((process.name, violation))
    return problems
