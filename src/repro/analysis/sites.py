"""PHX013: durability-site / yield-point coverage cross-check.

The schedule explorer can only interleave sessions — and compose
crashes with schedules — at the scheduler's yield points.  A FaultPlane
durability site (``site_hit``/``flush_cut``) with *no* covering yield
family is a crash boundary the model checker can never branch at:
schedules around it are silently unexplored.

This scan walks the source AST and collects:

* every ``site_hit(...)`` / ``flush_cut(...)`` first-argument literal
  (plain strings and f-strings whose leading chunk is a literal, e.g.
  ``f"log.force.before:{name}"`` → family ``log.force.before``), and
* every ``sched_yield(...)`` / ``yield_point(...)`` tag literal.

Each site family must appear in some registered yield tag's ``covers``
tuple or in ``EXEMPT_SITE_FAMILIES`` (with a rationale) — both live in
:mod:`repro.concurrency.tags`, the same registry the scheduler
validates live tags against.  Each statically visible yield tag must
name a registered family, so the lint catches the typo before the
scheduler's runtime check does.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .lint import Finding, sort_findings

#: Callables whose first argument is a durability site name.
_SITE_CALLS = {"site_hit", "flush_cut"}
#: Callables whose first argument is a scheduler yield tag.
_YIELD_CALLS = {"sched_yield", "yield_point"}


def _called_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_prefix(node: ast.expr) -> str | None:
    """The leading literal text of a string argument: the whole value
    for a plain constant, the first chunk of an f-string when it is a
    literal.  None when nothing is statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _family(text: str) -> str:
    """``family:process`` (or a bare f-string prefix ``family:``) →
    ``family``."""
    return text.split(":", 1)[0]


def scan_paths(paths: list[Path]) -> list[Finding]:
    from ..concurrency.tags import (
        EXEMPT_SITE_FAMILIES,
        YIELD_TAGS,
        covered_site_families,
    )

    covered = covered_site_families()
    findings: list[Finding] = []
    for path in sorted(_python_files(paths)):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            findings.append(Finding(
                path=str(path), line=exc.lineno or 1, col=0,
                rule_id="PHX013",
                message=f"unparseable file: {exc.msg}",
            ))
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = _called_name(node)
            if name in _SITE_CALLS:
                text = _literal_prefix(node.args[0])
                if text is None:
                    continue
                family = _family(text)
                if family in covered or family in EXEMPT_SITE_FAMILIES:
                    continue
                findings.append(Finding(
                    path=str(path), line=node.lineno, col=node.col_offset,
                    rule_id="PHX013",
                    message=(
                        f"durability site family {family!r} has no "
                        "covering scheduler yield point and no exemption "
                        "— schedule exploration cannot reach this crash "
                        "boundary"
                    ),
                ))
            elif name in _YIELD_CALLS:
                text = _literal_prefix(node.args[0])
                if text is None:
                    continue
                family = _family(text)
                if family not in YIELD_TAGS:
                    findings.append(Finding(
                        path=str(path), line=node.lineno,
                        col=node.col_offset, rule_id="PHX013",
                        message=(
                            f"yield tag family {family!r} is not in the "
                            "registered yield-tag registry "
                            "(repro.concurrency.tags)"
                        ),
                    ))
    return sort_findings(findings)


def _python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
    return files
