"""Post-hoc log/trace invariant checker.

Consumes a finished :class:`~repro.log.log_manager.LogManager` stable
stream (via ``scan``, which rides the PR-1 LSN index) plus the process's
:class:`~repro.analysis.trace.ProtocolTrace` and asserts the paper's
commit conditions after the fact:

* **TRC101** — Algorithm 2 (Section 3.1.1): a persistent context's
  receive messages are logged (long, unforced) and nothing leaves the
  context until the log is stable through the send point: at every
  committing send event, ``stable_lsn >= end_lsn``.  In the baseline
  (Algorithm 1) every message is a forced long record.
* **TRC102** — Algorithm 3 (Section 3.1.2): an external client's
  message 1 is a forced long record and its message 2 a forced short
  record, in that order; a short message-2 record with no preceding
  external message-1 record in its context is a protocol break.
* **TRC103** — Algorithms 4/5 (Sections 3.2.2-3.3): stateless
  (functional/read-only) contexts log nothing; calls to functional
  servers log nothing on either side; a read-only call logs only
  message 4, long and unforced.
* **TRC104** — the trace and the stream must agree: every surviving
  traced record decodes at its LSN with the traced kind/shortness, and
  every stable ``MessageRecord`` is claimed by a surviving decision.
* **TRC105** — replay determinism (Section 2): records carrying the
  same call ID and kind (a retry or replay re-log) must be identical;
  :func:`record_signature` additionally fingerprints a whole stream for
  run-vs-run comparison.
* **TRC107** — the *causal* commit condition: at every committing send,
  every record in the send's happens-before cone (per the scheduler's
  vector clocks) is stable.  Strictly weaker than TRC101's whole-log
  prefix — the exact invariant a pipelined/per-session force relaxation
  must preserve.
* **TRC108** — cross-session race freedom: two sessions touching one
  context's state are ordered by a real synchronisation edge (context
  admission, group-commit batch, spawn).

TRC107/TRC108 activate only on vector-clocked (concurrent) traces;
serial traces carry ``vc=None`` and are covered by TRC101-106 alone.

Violations carry the invariant ID and the LSN they anchor to.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..common.messages import MessageKind
from ..common.types import ComponentType
from ..log.records import MessageRecord
from . import vector_clock
from .trace import NO_LSN, CrashMark, ProtocolTrace, TraceEvent

INVARIANTS: dict[str, str] = {
    "TRC101": "Algorithm 2: log receives unforced; force before sends",
    "TRC102": "Algorithm 3: external message 1/2 forced, in order",
    "TRC103": "Algorithms 4/5: stateless peers log only message 4, "
              "unforced",
    "TRC104": "trace and stable stream agree record-for-record",
    "TRC105": "replay/retry regenerates identical records",
    "TRC106": "observed forces per call span stay within the static "
              "cost-model bound",
    "TRC107": "every send's *causal* prefix (happens-before-ordered "
              "records) is stable at its commit point",
    "TRC108": "no two sessions touch one context's state without an "
              "intervening happens-before edge",
    "TRC109": "observed per-span and per-shard force counts stay "
              "within the committed LogPlan's strategy budgets",
}


@dataclass(frozen=True)
class Violation:
    invariant: str
    lsn: int
    message: str

    def render(self) -> str:
        return f"{self.invariant} @ LSN {self.lsn}: {self.message}"


# ----------------------------------------------------------------------
# per-event conformance (TRC101/TRC102/TRC103)
# ----------------------------------------------------------------------
def _event_violations(event: TraceEvent) -> list[Violation]:
    if event.interrupted:
        # A crash unwound out of this decision's force: no message left
        # the process, so the commit conditions are vacuous here.  The
        # cross-check below still verifies the appended record (if it
        # survived the crash) against the decision.
        return []
    out: list[Violation] = []
    anchor = event.record_lsn if event.record_lsn != NO_LSN else event.end_lsn
    kind = event.kind

    def bad(invariant: str, message: str) -> None:
        out.append(Violation(invariant, anchor, message))

    def expect_nothing(invariant: str, why: str) -> None:
        if event.wrote_record or event.forced:
            bad(invariant, f"message {kind.value} must log nothing ({why}) "
                           f"but wrote_record={event.wrote_record} "
                           f"forced={event.forced}")

    def expect_record(invariant: str, short: bool, why: str) -> None:
        if not event.wrote_record or event.short is not short:
            shape = "short" if short else "long"
            bad(invariant, f"message {kind.value} requires a {shape} "
                           f"record ({why}) but wrote_record="
                           f"{event.wrote_record} short={event.short}")

    def expect_stable(invariant: str, why: str) -> None:
        # Under concurrent sessions ``end_lsn`` can include *another*
        # session's appends sitting after our force; the decision's own
        # commit point is what must be stable.  Serial decisions carry
        # ``commit_lsn is None`` (or equal to ``end_lsn``), so this is
        # the old check there.
        target = (
            event.commit_lsn
            if event.commit_lsn is not None
            else event.end_lsn
        )
        if event.stable_lsn < target:
            bad(invariant, f"message {kind.value} left with "
                           f"{target - event.stable_lsn} unforced "
                           f"bytes (stable {event.stable_lsn} < commit "
                           f"point {target}): {why}")

    def expect_unforced(invariant: str) -> None:
        if event.forced:
            bad(invariant, f"message {kind.value} was forced but the "
                           "algorithm logs it without forcing")

    if not event.optimized:
        # Algorithm 1: every message is a forced long record.
        expect_record("TRC101", short=False, why="Algorithm 1 baseline")
        if not event.forced:
            bad("TRC101", f"baseline message {kind.value} was not forced")
        expect_stable("TRC101", "Algorithm 1 forces every message")
        return out

    ro_peer = event.peer_type is ComponentType.READ_ONLY or (
        event.method_read_only and event.read_only_opt
    )
    if event.context_type.is_stateless:
        expect_nothing(
            "TRC103", "the context is stateless and never recovered"
        )
        return out

    if kind is MessageKind.INCOMING_CALL:
        if ro_peer:
            expect_nothing("TRC103", "read-only call, Algorithm 5")
        elif event.peer_type is ComponentType.EXTERNAL:
            expect_record("TRC102", short=False, why="Algorithm 3")
            expect_stable("TRC102", "Algorithm 3 forces message 1")
        else:
            expect_record("TRC101", short=False, why="Algorithm 2 receive")
            expect_unforced("TRC101")
    elif kind is MessageKind.REPLY_TO_INCOMING:
        if ro_peer:
            expect_nothing("TRC103", "read-only call, Algorithm 5")
        elif event.peer_type is ComponentType.EXTERNAL:
            expect_record("TRC102", short=True, why="Algorithm 3")
            expect_stable("TRC102", "Algorithm 3 forces message 2")
        else:
            if event.wrote_record:
                bad("TRC101", "Algorithm 2 writes no record for "
                              "message 2 (replay re-creates the reply)")
            expect_stable(
                "TRC101", "the reply send commits the server's state"
            )
    elif kind is MessageKind.OUTGOING_CALL:
        if event.peer_type is ComponentType.FUNCTIONAL:
            expect_nothing("TRC103", "functional server, Algorithm 4")
        elif ro_peer:
            expect_nothing("TRC103", "read-only server, Algorithm 5")
        elif event.multicall_skip:
            expect_nothing(
                "TRC103", "multi-call skip, Section 3.5"
            )
        else:
            if event.wrote_record:
                bad("TRC101", "Algorithm 2 writes no record for "
                              "message 3")
            expect_stable(
                "TRC101", "the outgoing call commits the caller's state"
            )
    elif kind is MessageKind.REPLY_FROM_OUTGOING:
        if event.peer_type is ComponentType.FUNCTIONAL:
            expect_nothing("TRC103", "functional server, Algorithm 4")
        else:
            invariant = "TRC103" if ro_peer else "TRC101"
            expect_record(
                invariant,
                short=False,
                why="Algorithm 5 logs the unrepeatable reply"
                if ro_peer
                else "Algorithm 2 receive",
            )
            expect_unforced(invariant)
    return out


# ----------------------------------------------------------------------
# causal invariants over vector-clocked traces (TRC107/TRC108)
# ----------------------------------------------------------------------
def _commit_event(event: TraceEvent) -> bool:
    """Does this event's send commit state — i.e. would
    :func:`_event_violations` demand stability at it?  Mirrors the
    ``expect_stable`` branches exactly, with two extra exemptions:
    ``replaying`` decisions reconstruct pre-crash history (the
    CrashMark already separates the incarnations) and multi-call skips
    are recoverable through the server's last-call table (Section 3.5)
    even while their own message-4 record is volatile."""
    if event.interrupted or event.replaying:
        return False
    if not event.optimized:
        return True  # Algorithm 1 forces every message
    if event.context_type.is_stateless:
        return False
    ro_peer = event.peer_type is ComponentType.READ_ONLY or (
        event.method_read_only and event.read_only_opt
    )
    kind = event.kind
    if kind is MessageKind.INCOMING_CALL:
        return event.peer_type is ComponentType.EXTERNAL and not ro_peer
    if kind is MessageKind.REPLY_TO_INCOMING:
        return not ro_peer
    if kind is MessageKind.OUTGOING_CALL:
        return (
            event.peer_type is not ComponentType.FUNCTIONAL
            and not ro_peer
            and not event.multicall_skip
        )
    return False


class _CausalIndex:
    """Max surviving record LSN inside a happens-before cone.

    Per session, appends arrive with nondecreasing vector-clock
    components, so ``(component, running-max LSN)`` pairs support an
    O(log n) "max LSN among this session's appends visible at view v"
    query.  Serial appends (``vc is None``) happen only while no
    scheduler run is active, so they precede every later session event
    outright — one running max covers them.  A :class:`CrashMark` wipes
    volatile records, so the index rebuilds from the survivors.
    """

    def __init__(self) -> None:
        self._kept: list[TraceEvent] = []
        self._serial_max = NO_LSN
        self._comps: dict[int, list[int]] = {}
        self._maxes: dict[int, list[int]] = {}

    def add(self, event: TraceEvent) -> None:
        if not event.wrote_record or event.record_lsn == NO_LSN:
            return
        self._kept.append(event)
        self._index(event)

    def _index(self, event: TraceEvent) -> None:
        if event.vc is None or event.session is None:
            if event.record_lsn > self._serial_max:
                self._serial_max = event.record_lsn
            return
        comp = vector_clock.component(event.vc, event.session)
        comps = self._comps.setdefault(event.session, [])
        maxes = self._maxes.setdefault(event.session, [])
        prev = maxes[-1] if maxes else NO_LSN
        comps.append(comp)
        maxes.append(max(prev, event.record_lsn))

    def crash(self, mark: CrashMark) -> None:
        survivors = [
            event for event in self._kept
            if event.record_lsn < mark.stable_lsn
        ]
        self._kept = []
        self._serial_max = NO_LSN
        self._comps = {}
        self._maxes = {}
        for event in survivors:
            self._kept.append(event)
            self._index(event)

    def causal_max(self, vc: vector_clock.Snapshot) -> int:
        """Max record LSN among surviving appends happens-before a
        decision observed at snapshot ``vc``."""
        best = self._serial_max
        for session, view in vc:
            comps = self._comps.get(session)
            if not comps:
                continue
            idx = bisect_right(comps, view)
            if idx and self._maxes[session][idx - 1] > best:
                best = self._maxes[session][idx - 1]
        return best

    def witness(self, vc: vector_clock.Snapshot, lsn: int) -> TraceEvent | None:
        for event in self._kept:
            if event.record_lsn == lsn and vector_clock.happens_before(
                event.vc, event.session, vc
            ):
                return event
        return None


def _causal_violations(trace: ProtocolTrace) -> list[Violation]:
    """TRC107: at every committing send, every *causally prior* record
    of this process's log must already be stable.

    This is strictly weaker than TRC101's whole-log-prefix condition —
    records of causally unrelated sessions may stay volatile — and it is
    exactly the constraint ROADMAP item 3's pipelined/per-session forces
    must keep: recoverability only needs the happens-before cone of a
    send on disk (cf. partially constrained transaction logs).  Inert on
    serial traces (``vc is None``), where TRC101 subsumes it.
    """
    out: list[Violation] = []
    index = _CausalIndex()
    for item in trace.entries:
        if isinstance(item, CrashMark):
            index.crash(item)
            continue
        event = item
        if event.vc is not None and _commit_event(event):
            causal_max = index.causal_max(event.vc)
            if causal_max != NO_LSN and causal_max >= event.stable_lsn:
                anchor = (
                    event.record_lsn
                    if event.record_lsn != NO_LSN
                    else event.end_lsn
                )
                prior = index.witness(event.vc, causal_max)
                who = (
                    f"session {prior.session}'s message-"
                    f"{prior.kind.value} record"
                    if prior is not None
                    else "a record"
                )
                out.append(Violation(
                    "TRC107", anchor,
                    f"message {event.kind.value} (session {event.session}) "
                    f"committed while {who} at LSN {causal_max} in its "
                    f"causal prefix was still volatile (stable_lsn "
                    f"{event.stable_lsn})",
                ))
        # The event's own record joins the index *after* the check: its
        # stability is TRC101/TRC102's business, not its own prefix's.
        index.add(event)
    return out


def _race_violations(trace: ProtocolTrace) -> list[Violation]:
    """TRC108: two sessions touching one context's state must be
    ordered by happens-before (context admission, a group-commit batch,
    or a spawn edge) — a real race detector over the per-session exec
    stacks.  Serial accesses (main thread) are totally ordered with
    every session event and reset the tracking; a CrashMark wipes the
    process, so pre-crash accesses cannot race post-recovery ones.
    """
    out: list[Violation] = []
    last: dict[int, dict[int, TraceEvent]] = {}
    for item in trace.entries:
        if isinstance(item, CrashMark):
            last.clear()
            continue
        event = item
        if event.interrupted or event.replaying:
            continue
        if event.session is None or event.vc is None:
            # Main-thread access: the scheduler is not running, so this
            # is ordered with every session event on both sides.
            last[event.context_id] = {}
            continue
        peers = last.setdefault(event.context_id, {})
        for other, prior in peers.items():
            if other == event.session:
                continue
            if not vector_clock.happens_before(
                prior.vc, prior.session, event.vc
            ):
                anchor = (
                    event.record_lsn
                    if event.record_lsn != NO_LSN
                    else event.end_lsn
                )
                out.append(Violation(
                    "TRC108", anchor,
                    f"sessions {prior.session} and {event.session} both "
                    f"touch context {event.context_id} (message "
                    f"{prior.kind.value}, then message "
                    f"{event.kind.value}) with no happens-before edge "
                    "between them",
                ))
        peers[event.session] = event
    return out


# ----------------------------------------------------------------------
# stream-only checks (TRC102 ordering, TRC105 identity)
# ----------------------------------------------------------------------
def _stream_violations(
    records: list[tuple[int, object]], complete_history: bool = True
) -> list[Violation]:
    out: list[Violation] = []
    # TRC102: a short message-2 record pairs with a preceding external
    # message-1 record in the same context.  (Short records exist only
    # in the optimized system, so this is inert on baseline logs.)
    # Only checkable on a complete stream: log truncation legitimately
    # drops a message-1 record while its short reply survives.
    pending_external: dict[int, int | None] = {}
    # TRC105: same (kind, call_id) -> identical message payload.
    seen: dict[tuple, tuple[int, object]] = {}
    for lsn, record in records:
        if not isinstance(record, MessageRecord):
            continue
        context_id = record.context_id
        if (
            record.kind is MessageKind.INCOMING_CALL
            and record.message is not None
            and record.message.call_id is None
        ):
            pending_external[context_id] = lsn
        elif record.kind is MessageKind.REPLY_TO_INCOMING and record.short:
            if pending_external.get(context_id) is None and complete_history:
                out.append(Violation(
                    "TRC102", lsn,
                    f"short message-2 record in context {context_id} "
                    "has no preceding external message-1 record",
                ))
            else:
                pending_external[context_id] = None
        if record.message is not None:
            call_id = getattr(record.message, "call_id", None)
            if call_id is not None:
                key = (record.kind, call_id)
                if key in seen:
                    first_lsn, first_message = seen[key]
                    if first_message != record.message:
                        out.append(Violation(
                            "TRC105", lsn,
                            f"message {record.kind.value} for call "
                            f"{call_id} differs from the copy at LSN "
                            f"{first_lsn}; replay is not regenerating "
                            "identical messages",
                        ))
                else:
                    seen[key] = (lsn, record.message)
    return out


# ----------------------------------------------------------------------
# trace <-> stream cross-check (TRC104)
# ----------------------------------------------------------------------
def _cross_check(
    events: list[TraceEvent],
    records: list[tuple[int, object]],
    base_lsn: int,
    stable_lsn: int,
) -> list[Violation]:
    out: list[Violation] = []
    by_lsn = {
        lsn: record
        for lsn, record in records
        if isinstance(record, MessageRecord)
    }
    claimed: set[int] = set()
    for event in events:
        if not event.wrote_record or event.record_lsn == NO_LSN:
            continue
        if event.record_lsn < base_lsn:
            continue  # truncated away by log garbage collection
        if event.record_lsn >= stable_lsn:
            continue  # still volatile; nothing to check on disk
        record = by_lsn.get(event.record_lsn)
        if record is None:
            out.append(Violation(
                "TRC104", event.record_lsn,
                f"traced message-{event.kind.value} record is missing "
                "from the stable stream",
            ))
            continue
        claimed.add(event.record_lsn)
        if (
            record.kind is not event.kind
            or bool(record.short) is not event.short
            or record.context_id != event.context_id
        ):
            out.append(Violation(
                "TRC104", event.record_lsn,
                f"stable record (message {record.kind.value}, "
                f"short={record.short}, context {record.context_id}) "
                f"does not match the traced decision (message "
                f"{event.kind.value}, short={event.short}, context "
                f"{event.context_id})",
            ))
    for lsn, record in by_lsn.items():
        if lsn not in claimed:
            out.append(Violation(
                "TRC104", lsn,
                f"stable message-{record.kind.value} record was not "
                "produced by any surviving policy decision",
            ))
    return out


# ----------------------------------------------------------------------
# static force-bound cross-check (TRC106)
# ----------------------------------------------------------------------
def _top_level_spans(
    entries: list,
) -> list[tuple[TraceEvent, list[TraceEvent]]]:
    """Closed top-level call spans of one process trace.

    Under the deterministic concurrent scheduler one process trace
    interleaves decisions from several sessions; events within a session
    are still synchronous, so the trace is first partitioned by
    ``TraceEvent.session`` and the span walk runs per session.  A crash
    wipes the whole process, so each :class:`CrashMark` fans out to
    every session's stream.  Serial traces carry ``session=None``
    throughout — one group, identical behavior to the ungrouped walk.
    """
    groups: dict[int | None, list] = {}
    order: list[int | None] = []
    for item in entries:
        if isinstance(item, CrashMark):
            for key in order:
                groups[key].append(item)
            continue
        key = item.session
        group = groups.get(key)
        if group is None:
            group = groups[key] = []
            order.append(key)
        group.append(item)
    spans: list[tuple[TraceEvent, list[TraceEvent]]] = []
    for key in order:
        spans.extend(_session_spans(groups[key]))
    return spans


def _session_spans(
    entries: list,
) -> list[tuple[TraceEvent, list[TraceEvent]]]:
    """Span walk over one session's (or a serial trace's) entries: a
    span runs from an ``INCOMING_CALL`` at nesting depth zero to its
    matching ``REPLY_TO_INCOMING`` (same-process nested calls push and
    pop context frames in between).  Crashes and interrupted decisions
    unwind the open span, which is discarded: its force count is
    partial and the bound says nothing about it.
    """
    spans: list[tuple[TraceEvent, list[TraceEvent]]] = []
    stack: list[int] = []
    entry_event: TraceEvent | None = None
    current: list[TraceEvent] = []
    for item in entries:
        if isinstance(item, CrashMark):
            stack, entry_event, current = [], None, []
            continue
        event = item
        if entry_event is None:
            if (
                event.kind is MessageKind.INCOMING_CALL
                and not event.interrupted
            ):
                entry_event = event
                current = [event]
                stack = [event.context_id]
            continue
        current.append(event)
        if event.interrupted:
            stack, entry_event, current = [], None, []
            continue
        if event.kind is MessageKind.INCOMING_CALL:
            stack.append(event.context_id)
        elif event.kind is MessageKind.REPLY_TO_INCOMING:
            if not stack or stack[-1] != event.context_id:
                # mismatched nesting — give up on this span
                stack, entry_event, current = [], None, []
                continue
            stack.pop()
            if not stack:
                spans.append((entry_event, current))
                entry_event, current = None, []
    return spans


def _entry_force_bound(event: TraceEvent) -> int:
    """Max forces Algorithms 1-5 allow for the entry call's own
    message-1/message-2 pair, from the entry event's flags."""
    if not event.optimized:
        return 2  # Algorithm 1 forces both
    if event.context_type.is_stateless:
        return 0  # Algorithms 4/5: stateless server logs nothing
    if event.peer_type is ComponentType.READ_ONLY or (
        event.method_read_only and event.read_only_opt
    ):
        return 0  # Algorithm 5
    if event.peer_type is ComponentType.EXTERNAL:
        return 2  # Algorithm 3 forces messages 1 and 2
    return 1  # Algorithm 2: unforced receive, one pre-reply force


def check_force_bounds(
    trace: ProtocolTrace, bounds, process_name: str
) -> list[Violation]:
    """TRC106: replay the trace's call spans against the static cost
    model (``CostModel.force_bounds()``; any object with a
    ``for_span(process, method) -> ratios`` lookup works).

    Per closed span the sound bound is ``entry_forces + ratio ×
    (events - 2)`` — every intercepted call contributes at least two
    span events and at most ``ratio`` forces per event (0 for
    read-only/functional targets, 1/2 for persistent ones).  A forced
    outgoing call whose server type was still *unknown* is Section
    3.4's legitimate cold-start conservatism, not an over-force; each
    such event earns one extra allowed force (warm-started runs have
    none, so their bound is tighter).
    """
    violations: list[Violation] = []
    for entry_event, events in _top_level_spans(trace.entries):
        method = entry_event.method
        if method is None:
            continue
        span = bounds.for_span(process_name, method)
        if span is None:
            continue  # not a statically modeled entry point
        if not entry_event.optimized:
            # Algorithm 1 forces every message regardless of types:
            # one force per event, no cold-start concept
            ratio, cold = 1.0, 0
        else:
            if entry_event.read_only_opt:
                ratio = span.ratio_ro_on
            else:
                ratio = span.ratio_ro_off
            cold = sum(
                1
                for event in events
                if event.kind is MessageKind.OUTGOING_CALL
                and event.peer_type is None
                and event.forced
            )
        limit = (
            _entry_force_bound(entry_event)
            + cold
            + ratio * max(0, len(events) - 2 - 2 * cold)
        )
        observed = sum(1 for event in events if event.forced)
        if observed > limit + 1e-9:
            anchor = (
                entry_event.record_lsn
                if entry_event.record_lsn != NO_LSN
                else entry_event.end_lsn
            )
            violations.append(Violation(
                "TRC106", anchor,
                f"span {method}() on {process_name}: {observed} forces "
                f"over {len(events)} events exceeds the static bound "
                f"{limit:g} (ratio {ratio:g}, {cold} cold-start "
                "forces allowed)",
            ))
    return violations


def check_runtime_force_bounds(runtime, bounds) -> list[tuple[str, Violation]]:
    """TRC106 over every process of a runtime."""
    problems: list[tuple[str, Violation]] = []
    for process in runtime.processes():
        for trace in _process_traces(process):
            for violation in check_force_bounds(
                trace, bounds, process.name
            ):
                problems.append((process.name, violation))
    return problems


def _process_traces(process) -> list:
    """Every protocol trace of a process: one per log stream under
    sharded logging, the single legacy trace otherwise."""
    streams = getattr(process, "streams", None)
    if streams is None:
        trace = getattr(process, "protocol_trace", None)
        return [] if trace is None else [trace]
    return [stream.trace for stream in streams]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_log(log, trace: ProtocolTrace | None = None) -> list[Violation]:
    """Check one finished log (and its trace, when available)."""
    try:
        records = list(log.scan(log.base_lsn))
    except Exception:
        # A torn tail awaiting recovery's repair pass: the stream is not
        # finished, so there is nothing to assert yet.
        records = None
    violations: list[Violation] = []
    if records is not None:
        violations.extend(
            _stream_violations(records, complete_history=log.base_lsn == 0)
        )
    if trace is not None:
        for event in trace.events():
            violations.extend(_event_violations(event))
        violations.extend(_causal_violations(trace))
        violations.extend(_race_violations(trace))
        if records is not None:
            violations.extend(_cross_check(
                trace.surviving_events(), records,
                log.base_lsn, log.stable_lsn,
            ))
    violations.sort(key=lambda v: (v.lsn, v.invariant))
    return violations


def check_process(process) -> list[Violation]:
    streams = getattr(process, "streams", None)
    if streams is None:
        return check_log(
            process.log, getattr(process, "protocol_trace", None)
        )
    violations: list[Violation] = []
    for stream in streams:
        violations.extend(check_log(stream.log, stream.trace))
    return violations


def check_runtime(runtime) -> list[tuple[str, Violation]]:
    """Check every process of a runtime; returns (process name,
    violation) pairs."""
    problems: list[tuple[str, Violation]] = []
    for process in runtime.processes():
        for violation in check_process(process):
            problems.append((process.name, violation))
    return problems


def record_signature(log) -> tuple:
    """A deterministic fingerprint of a stable stream, for run-vs-run
    comparison: two identical executions must produce equal
    signatures."""
    signature = []
    for lsn, record in log.scan(log.base_lsn):
        if isinstance(record, MessageRecord):
            message = record.message
            signature.append((
                lsn,
                "Message",
                record.kind.value,
                bool(record.short),
                record.context_id,
                repr(getattr(message, "call_id", None)),
                getattr(message, "method", None),
            ))
        else:
            signature.append((lsn, type(record).__name__))
    return tuple(signature)
