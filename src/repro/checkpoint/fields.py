"""Component field capture and restore (paper Section 4.2).

The paper uses .NET reflection to obtain field types and values; here
the :class:`PersistentComponent` base-class contract means every
recoverable field lives in the instance ``__dict__``.  Capture filters
out the runtime's ``_phoenix_`` bookkeeping, swizzles component
references (proxy -> URI, local component -> component ID) and returns a
plain dict the log codec can serialize.  Restore reverses it onto an
instance created without running its constructor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.component import PHOENIX_FIELD_PREFIX, PersistentComponent
from ..core.swizzle import swizzle_for_state, unswizzle_for_state
from ..errors import SerializationError
from ..log.serialization import encode_value

if TYPE_CHECKING:  # pragma: no cover
    from ..core.context import Context


def capture_fields(
    component: PersistentComponent, context: "Context"
) -> dict:
    """Snapshot a component's recoverable fields.

    Raises :class:`SerializationError` (with the field named) if a field
    holds something the log cannot represent — the same contract .NET
    serialization imposed on the original system.
    """
    fields: dict = {}
    for name, value in vars(component).items():
        if name.startswith(PHOENIX_FIELD_PREFIX):
            continue
        try:
            swizzled = swizzle_for_state(value, context)
            encode_value(swizzled)  # validate eagerly, with a good error
        except SerializationError as exc:
            raise SerializationError(
                f"field {name!r} of {type(component).__name__} cannot be "
                f"checkpointed: {exc}"
            ) from None
        fields[name] = swizzled
    return fields


def restore_fields(
    component: PersistentComponent, fields: dict, context: "Context"
) -> None:
    """Apply captured fields onto a bare instance, resolving saved
    references back to proxies and subordinate handles."""
    for name, value in fields.items():
        setattr(component, name, unswizzle_for_state(value, context))
