"""Context state records (paper Section 4.2).

A context's state is saved only when the context is quiescent — after an
incoming call finishes and before the next is delivered — so component
state is exactly its field values.  Saving proceeds in two steps:

1. the replies of the context's last-call table entries that are not yet
   on the log are written as :class:`LastCallReplyRecord`s and their
   LSNs filled in (after restoring a state record, replay can no longer
   re-create replies of *earlier* incoming calls);
2. the component fields of the parent and every subordinate, plus the
   context metadata (outgoing-call counter, handled-call count, and the
   last-call entries with their reply LSNs), are combined into one
   :class:`ContextStateRecord` and appended — *not* forced; a later send
   message's force makes it stable for free.

Restoring applies the snapshots onto bare instances (no constructors)
and re-resolves reference fields.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.types import ComponentType
from ..core.component import PersistentComponent
from ..core.context import Context
from ..core.tables import NO_LSN
from ..errors import InvariantViolationError, RecoveryError
from ..log.records import (
    ComponentStateSnapshot,
    ContextStateRecord,
    LastCallEntrySnapshot,
    LastCallReplyRecord,
)
from .fields import capture_fields, restore_fields

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess


def save_context_state(context: Context) -> int:
    """Write a context state record; returns its LSN."""
    if context.busy and context.current_call is not None:
        # The interceptor calls this after processing, before the reply
        # is sent — the component is quiescent even though the call
        # technically has not returned yet (paper Section 4.2).
        pass
    process = context.process
    runtime = context.runtime
    if not context.component_type.is_persistent_family:
        raise InvariantViolationError(
            f"cannot checkpoint {context.component_type.value} context"
        )

    # Step 1: make the replies of this context's last calls durable.
    last_calls: list[LastCallEntrySnapshot] = []
    for entry in process.last_calls.entries_for_context(context.context_id):
        if entry.in_progress:
            current = context.current_call
            if current is not None and current.message is not None and (
                current.message.call_id == entry.call_id
            ):
                # The call being served right now; its reply is recorded
                # by the interceptor after this save returns.
                continue
            raise InvariantViolationError(
                f"last-call entry {entry.call_id} still in progress while "
                "saving context state"
            )
        if entry.reply_lsn == NO_LSN:
            if entry.reply is None:
                raise InvariantViolationError(
                    f"last-call entry {entry.call_id} has no reply to save"
                )
            entry.reply_lsn = process.log_append(
                LastCallReplyRecord(
                    context_id=context.context_id,
                    caller_key=entry.call_id.caller_key,
                    call_id=entry.call_id,
                    reply=entry.reply,
                )
            )
        last_calls.append(
            LastCallEntrySnapshot(
                caller_key=entry.call_id.caller_key,
                call_id=entry.call_id,
                reply_lsn=entry.reply_lsn,
            )
        )

    # Step 2: component fields + context metadata.
    snapshots = []
    for component in context.components():
        snapshots.append(
            ComponentStateSnapshot(
                component_lid=component._phoenix_lid,
                class_name=process.runtime.registry.name_of(type(component)),
                component_type=component._phoenix_type,
                fields=capture_fields(component, context),
                next_outgoing_seq=(
                    context.next_outgoing_seq
                    if component is context.parent
                    else 0
                ),
            )
        )
    record = ContextStateRecord(
        context_id=context.context_id,
        uri=context.uri,
        incoming_calls_handled=context.incoming_calls_handled,
        snapshots=tuple(snapshots),
        last_calls=tuple(sorted(last_calls, key=lambda e: e.caller_key)),
    )
    costs = runtime.costs
    runtime.clock.advance(
        costs.context_state_save
        + _extra_size_cost(
            record, costs.state_save_small_state_bytes,
            costs.state_save_per_extra_kb,
        )
    )
    lsn = process.log_append(record)
    process.context_table[context.context_id].state_record_lsn = lsn
    return lsn


def _extra_size_cost(record, small_bytes: int, per_extra_kb: float) -> float:
    """States beyond the paper's small-state regime pay a serialization
    rate (the paper: 'for many components, the states could be
    substantially larger')."""
    from ..log.records import encode_record

    size = len(encode_record(record))
    if size <= small_bytes:
        return 0.0
    return (size - small_bytes) / 1024.0 * per_extra_kb


def restore_context_state(
    process: "AppProcess", context: Context, record: ContextStateRecord
) -> None:
    """Rebuild a context's components from a state record.

    Instances are allocated without running constructors; fields are
    applied afterwards, in two passes so local references between the
    parent and subordinates resolve regardless of order.
    """
    runtime = process.runtime
    costs = runtime.costs
    runtime.clock.advance(
        costs.state_record_restore
        + _extra_size_cost(
            record, costs.state_save_small_state_bytes,
            costs.state_restore_per_extra_kb,
        )
    )
    if not record.snapshots:
        raise RecoveryError(
            f"state record for context {record.context_id} has no snapshots"
        )

    # Pass A: allocate all instances and attach runtime fields.
    by_snapshot: list[tuple[ComponentStateSnapshot, PersistentComponent]] = []
    for snapshot in record.snapshots:
        cls = runtime.registry.lookup(snapshot.class_name)
        component = process._attach_instance(
            context, cls, snapshot.component_lid, snapshot.component_type
        )
        by_snapshot.append((snapshot, component))

    # Pass B: restore fields (local refs now resolve).
    for snapshot, component in by_snapshot:
        restore_fields(component, snapshot.fields, context)
        if component is context.parent:
            context.next_outgoing_seq = snapshot.next_outgoing_seq

    context.incoming_calls_handled = record.incoming_calls_handled
    context.restore_subordinate_counter()

    # Last-call entries recorded with the state: LSN-only — actual reply
    # messages are read lazily when a duplicate call needs them
    # (Section 4.4).
    for entry in record.last_calls:
        process.last_calls.seed(
            entry.caller_key,
            entry.call_id,
            context.context_id,
            reply_lsn=entry.reply_lsn,
        )
