"""Checkpointing: context state records and process checkpoints."""

from .fields import capture_fields, restore_fields
from .policy import CheckpointAdvice, breakeven_interval
from .process_checkpoint import take_process_checkpoint
from .state_record import restore_context_state, save_context_state

__all__ = [
    "capture_fields",
    "restore_fields",
    "CheckpointAdvice",
    "breakeven_interval",
    "take_process_checkpoint",
    "restore_context_state",
    "save_context_state",
]
