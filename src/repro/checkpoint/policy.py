"""Checkpoint-frequency guidance.

Paper Section 5.4 derives the rule of thumb that a context state should
be saved "every 400 calls or more in the micro-benchmark": the 60 ms
cost of restoring a state record during recovery pays off once it saves
more than 60 ms / 0.15 ms-per-call of replay.

This module computes that break-even from whatever cost model is in
effect, so the rule tracks ablations, and provides the small helper the
examples use to pick an interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.costs import CostModel, DEFAULT_COSTS


@dataclass(frozen=True)
class CheckpointAdvice:
    """The break-even analysis behind the paper's ~400-call rule."""

    restore_cost_ms: float
    replay_cost_per_call_ms: float
    breakeven_calls: int
    recommended_interval: int

    def describe(self) -> str:
        return (
            f"state-record restore costs {self.restore_cost_ms:.0f} ms ≈ "
            f"replaying {self.breakeven_calls} calls at "
            f"{self.replay_cost_per_call_ms:.2f} ms/call; checkpoint "
            f"every {self.recommended_interval}+ calls"
        )


def breakeven_interval(costs: CostModel = DEFAULT_COSTS) -> CheckpointAdvice:
    """How many replayed calls one state-record restore is worth."""
    calls = costs.state_record_restore / costs.replay_per_call
    breakeven = max(1, math.ceil(calls))
    return CheckpointAdvice(
        restore_cost_ms=costs.state_record_restore,
        replay_cost_per_call_ms=costs.replay_per_call,
        breakeven_calls=breakeven,
        recommended_interval=breakeven,
    )
