"""Process checkpoints (paper Section 4.3).

A process checkpoint brackets an incremental dump of the process's
global tables between a begin and an end record:

* context-table entries (state-record LSNs — "akin to the recovery LSNs
  for pages in ARIES");
* the remote-component-type table;
* last-call table entries (IDs and reply LSNs only).

Tables are written in sub-ranges (the paper uses sub-range locks so
normal execution can proceed concurrently; the simulation is
synchronous, but the chunked record structure is preserved so recovery
reads exactly what a concurrent writer would have produced).

The checkpoint is *not* forced.  Once some later force flushes it, the
begin-checkpoint LSN is force-written to the process's well-known file;
recovery starts its first log pass there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.tables import NO_LSN
from ..faults import plane as faultplane
from ..log.records import (
    BeginCheckpointRecord,
    CheckpointContextEntry,
    CheckpointContextTableRecord,
    CheckpointLastCallRecord,
    CheckpointRemoteTypeRecord,
    EndCheckpointRecord,
    LastCallEntrySnapshot,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.process import AppProcess

#: Sub-range size for incremental table dumps.
CHUNK = 16


def _chunks(items: list, size: int = CHUNK):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def take_process_checkpoint(process: "AppProcess") -> tuple[int, int]:
    """Write a process checkpoint; returns (begin_lsn, end_lsn).

    The well-known file is updated lazily, once the checkpoint has been
    flushed by a later force (see ``AppProcess.set_pending_checkpoint``).
    """
    begin_lsn = process.log_append(BeginCheckpointRecord(context_id=-1))
    faultplane.site_hit(f"checkpoint.begin:{process.name}", process.name)

    context_entries = [
        CheckpointContextEntry(
            context_id=entry.context_id,
            uri=entry.uri,
            state_record_lsn=entry.state_record_lsn,
            creation_lsn=entry.creation_lsn,
        )
        for entry in sorted(
            process.context_table.values(), key=lambda e: e.context_id
        )
        if entry.creation_lsn != NO_LSN  # phoenix contexts only
    ]
    for chunk in _chunks(context_entries):
        process.log_append(
            CheckpointContextTableRecord(
                context_id=-1, entries=tuple(chunk)
            )
        )

    remote_entries = process.remote_types.snapshot()
    for chunk in _chunks(remote_entries):
        process.log_append(
            CheckpointRemoteTypeRecord(context_id=-1, entries=tuple(chunk))
        )

    last_call_entries = [
        LastCallEntrySnapshot(
            caller_key=key,
            call_id=entry.call_id,
            reply_lsn=entry.reply_lsn,
        )
        for key, entry in sorted(process.last_calls.all_entries())
        if not entry.in_progress
    ]
    for chunk in _chunks(last_call_entries):
        process.log_append(
            CheckpointLastCallRecord(context_id=-1, entries=tuple(chunk))
        )

    end_lsn = process.log_append(
        EndCheckpointRecord(context_id=-1, begin_lsn=begin_lsn)
    )
    faultplane.site_hit(f"checkpoint.end:{process.name}", process.name)
    process.set_pending_checkpoint(begin_lsn, end_lsn)
    return begin_lsn, end_lsn
