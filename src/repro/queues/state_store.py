"""Durable state store for stateless workers.

The "read state before processing, write it back after" half of the
TP-monitor model: a transactional key-value store whose writes commit
atomically with the queue operations of the same transaction.
"""

from __future__ import annotations

from ..errors import InvariantViolationError
from ..sim.machine import Machine
from .dlog import DurableLog
from .transaction import Transaction


class DurableStateStore:
    """A transactional, durable key-value store."""

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        self.log = DurableLog(machine, name)
        self._data: dict = {}
        self._staged: dict[int, dict] = {}
        self.reads = 0
        self._recover()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def get(self, key, default=None):
        """Read committed state (disk reads are not on the force path)."""
        self.reads += 1
        return self._data.get(key, default)

    def set(self, txn: Transaction, key, value) -> None:
        staged = self._staged.get(txn.txn_id)
        if staged is None:
            staged = self._staged[txn.txn_id] = {}
            txn.enlist(self)
        staged[key] = value

    def get_in_txn(self, txn: Transaction, key, default=None):
        """Read-your-writes within a transaction."""
        staged = self._staged.get(txn.txn_id, {})
        if key in staged:
            return staged[key]
        return self.get(key, default)

    # ------------------------------------------------------------------
    # participant protocol
    # ------------------------------------------------------------------
    def prepare(self, txn_id: int) -> None:
        staged = self._staged.get(txn_id, {})
        self.log.append("prepare", {"txn": txn_id, "writes": dict(staged)})
        self.log.force()

    def commit(self, txn_id: int, forced: bool) -> None:
        staged = self._staged.pop(txn_id, None)
        if staged is None:
            raise InvariantViolationError(
                f"store {self.name}: commit of unknown txn {txn_id}"
            )
        self.log.append("commit", {"txn": txn_id, "writes": dict(staged)})
        if forced:
            self.log.force()
        self._data.update(staged)

    def abort(self, txn_id: int) -> None:
        self._staged.pop(txn_id, None)

    # ------------------------------------------------------------------
    # crash & recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        self.log.wipe_volatile()
        self.log.repair_tail()
        self._staged.clear()
        self._data.clear()
        self._recover()

    def _recover(self) -> None:
        data: dict = {}
        self._in_doubt: dict[int, dict] = {}
        for tag, value in self.log.records():
            if tag == "prepare":
                self._in_doubt[value["txn"]] = value["writes"]
            elif tag == "commit":
                self._in_doubt.pop(value["txn"], None)
                data.update(value["writes"])
        self._data = data

    def resolve_in_doubt(self, coordinator) -> None:
        """Presumed-abort resolution: ask the coordinator about prepared
        transactions whose (lazy, unforced) commit record was lost."""
        committed = coordinator.committed_txns()
        for txn_id, writes in sorted(self._in_doubt.items()):
            if txn_id in committed:
                self.log.append("commit", {"txn": txn_id, "writes": writes})
                self._data.update(writes)
        self._in_doubt.clear()
        self.log.force()

    @property
    def total_forces(self) -> int:
        return self.log.forces

    def snapshot(self) -> dict:
        return dict(self._data)
