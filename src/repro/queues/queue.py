"""Recoverable message queues.

A durable FIFO participating in transactions: enqueues become visible,
and dequeues become permanent, only at commit; an abort or a crash
returns in-flight messages to the queue.  Contents are rebuilt from the
queue's own forced log — the "recoverable stateful message queues"
of the TP-monitor model the paper contrasts itself with.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from ..errors import InvariantViolationError
from ..sim.machine import Machine
from .dlog import DurableLog
from .transaction import Transaction


@dataclass(frozen=True)
class QueueRecord:
    """A message as stored in the queue."""

    msg_id: int
    payload: object


class RecoverableQueue:
    """A durable transactional FIFO."""

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        self.log = DurableLog(machine, name)
        self._ready: "OrderedDict[int, object]" = OrderedDict()
        self._next_msg_id = 1
        # staged per-transaction work: txn_id -> (enqueues, dequeues)
        self._staged: dict[int, tuple[list[QueueRecord], list[QueueRecord]]] = {}
        self._recover()

    # ------------------------------------------------------------------
    # transactional operations
    # ------------------------------------------------------------------
    def _stage(self, txn: Transaction):
        if txn.txn_id not in self._staged:
            self._staged[txn.txn_id] = ([], [])
            txn.enlist(self)
        return self._staged[txn.txn_id]

    def enqueue(self, txn: Transaction, payload: object) -> int:
        """Stage a message; it becomes visible at commit."""
        enqueues, __ = self._stage(txn)
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        enqueues.append(QueueRecord(msg_id, payload))
        return msg_id

    def dequeue(self, txn: Transaction) -> QueueRecord | None:
        """Remove the head message; permanent at commit, returned to the
        queue on abort.  Staged (uncommitted) enqueues of other
        transactions are invisible."""
        __, dequeues = self._stage(txn)
        if not self._ready:
            return None
        msg_id, payload = self._ready.popitem(last=False)
        record = QueueRecord(msg_id, payload)
        dequeues.append(record)
        return record

    def __len__(self) -> int:
        return len(self._ready)

    def peek_ids(self) -> list[int]:
        return list(self._ready)

    def peek_payloads(self) -> list[object]:
        """The committed, ready payloads in FIFO order (non-destructive;
        crash drivers use this to tell a lost operation from one whose
        commit record survived)."""
        return list(self._ready.values())

    # ------------------------------------------------------------------
    # participant protocol
    # ------------------------------------------------------------------
    def prepare(self, txn_id: int) -> None:
        enqueues, dequeues = self._staged.get(txn_id, ((), ()))
        self.log.append(
            "prepare",
            {
                "txn": txn_id,
                "enq": [(r.msg_id, r.payload) for r in enqueues],
                "deq": [r.msg_id for r in dequeues],
            },
        )
        self.log.force()

    def commit(self, txn_id: int, forced: bool) -> None:
        staged = self._staged.pop(txn_id, None)
        if staged is None:
            raise InvariantViolationError(
                f"queue {self.name}: commit of unknown txn {txn_id}"
            )
        enqueues, dequeues = staged
        self.log.append(
            "commit",
            {
                "txn": txn_id,
                "enq": [(r.msg_id, r.payload) for r in enqueues],
                "deq": [r.msg_id for r in dequeues],
            },
        )
        if forced:
            self.log.force()
        for record in enqueues:
            self._ready[record.msg_id] = record.payload
        # dequeues were already removed from _ready when staged

    def abort(self, txn_id: int) -> None:
        staged = self._staged.pop(txn_id, None)
        if staged is None:
            return
        __, dequeues = staged
        # return in-flight messages to the head, preserving order
        for record in reversed(dequeues):
            self._ready[record.msg_id] = record.payload
            self._ready.move_to_end(record.msg_id, last=False)

    # ------------------------------------------------------------------
    # crash & recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose everything volatile: staged work and unforced records."""
        self.log.wipe_volatile()
        self.log.repair_tail()
        self._staged.clear()
        self._ready.clear()
        self._recover()

    def _recover(self) -> None:
        """Rebuild contents from the log.  Prepared transactions whose
        (lazy) commit record is missing are *in doubt*: presumed-abort
        resolution (:meth:`resolve_in_doubt`) asks the coordinator."""
        ready: "OrderedDict[int, object]" = OrderedDict()
        self._in_doubt: dict[int, dict] = {}
        top_msg_id = 0
        for tag, value in self.log.records():
            if tag == "commit":
                self._in_doubt.pop(value["txn"], None)
                for msg_id, payload in value["enq"]:
                    ready[msg_id] = payload
                    top_msg_id = max(top_msg_id, msg_id)
                for msg_id in value["deq"]:
                    ready.pop(msg_id, None)
            elif tag == "prepare":
                self._in_doubt[value["txn"]] = value
                for msg_id, __ in value["enq"]:
                    top_msg_id = max(top_msg_id, msg_id)
        self._ready = ready
        self._next_msg_id = top_msg_id + 1

    def resolve_in_doubt(self, coordinator) -> None:
        """Apply in-doubt prepares the coordinator actually committed."""
        committed = coordinator.committed_txns()
        for txn_id, value in sorted(self._in_doubt.items()):
            if txn_id not in committed:
                continue  # presumed abort
            self.log.append("commit", value)
            for msg_id, payload in value["enq"]:
                self._ready[msg_id] = payload
            for msg_id in value["deq"]:
                self._ready.pop(msg_id, None)
        self._in_doubt.clear()
        self.log.force()

    @property
    def total_forces(self) -> int:
        return self.log.forces
