"""Transactions over queue/state resource managers.

The queued-stateless model's correctness rests on atomically committing
"dequeue request + update state + enqueue reply" (Bernstein, Hsu & Mann,
*Implementing Recoverable Requests Using Queues*, SIGMOD 1990).  When
the participating resource managers are distinct (distributed queues),
that atomicity needs a distributed commit — the expense the Phoenix/App
paper calls out in its introduction.

The coordinator implements standard presumed-abort two-phase commit:

* one **prepare** force per participant,
* one **commit** force at the coordinator (the commit point),
* lazy, unforced commit records at the participants.

A single-participant transaction short-circuits to one-phase commit
(one force at the participant, none at the coordinator).
"""

from __future__ import annotations

import enum
from typing import Protocol

from ..errors import InvariantViolationError
from ..sim.machine import Machine
from .dlog import DurableLog


class TransactionParticipant(Protocol):
    """What a resource manager must implement to join a transaction."""

    def prepare(self, txn_id: int) -> None: ...

    def commit(self, txn_id: int, forced: bool) -> None: ...

    def abort(self, txn_id: int) -> None: ...


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of atomic work across resource managers."""

    def __init__(self, coordinator: "TransactionCoordinator", txn_id: int):
        self.coordinator = coordinator
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._participants: list[TransactionParticipant] = []

    def enlist(self, participant: TransactionParticipant) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvariantViolationError(
                f"transaction {self.txn_id} is {self.state.value}"
            )
        if participant not in self._participants:
            self._participants.append(participant)

    @property
    def participant_count(self) -> int:
        return len(self._participants)

    def commit(self) -> None:
        self.coordinator._commit(self)

    def abort(self) -> None:
        self.coordinator._abort(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class TransactionCoordinator:
    """Presumed-abort 2PC coordinator with its own forced commit log."""

    def __init__(self, machine: Machine, name: str = "txn-coordinator"):
        self.machine = machine
        self.log = DurableLog(machine, name)
        self._next_txn_id = 1
        self.commits = 0
        self.aborts = 0
        self.one_phase_commits = 0
        self.two_phase_commits = 0

    def begin(self) -> Transaction:
        txn = Transaction(self, self._next_txn_id)
        self._next_txn_id += 1
        return txn

    # ------------------------------------------------------------------
    def _commit(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            raise InvariantViolationError(
                f"transaction {txn.txn_id} already {txn.state.value}"
            )
        participants = txn._participants
        if not participants:
            txn.state = TxnState.COMMITTED
            self.commits += 1
            return
        if len(participants) == 1:
            # One-phase: the single participant's force is the commit
            # point; the coordinator writes nothing.
            participants[0].commit(txn.txn_id, forced=True)
            self.one_phase_commits += 1
        else:
            # Phase 1: every participant forces a prepare record.
            for participant in participants:
                participant.prepare(txn.txn_id)
            # Commit point: the coordinator forces its decision.
            self.log.append("commit", txn.txn_id)
            self.log.force()
            # Phase 2: lazy, unforced commit records downstream.
            for participant in participants:
                participant.commit(txn.txn_id, forced=False)
            self.two_phase_commits += 1
        txn.state = TxnState.COMMITTED
        self.commits += 1

    def _abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            return
        for participant in txn._participants:
            participant.abort(txn.txn_id)
        txn.state = TxnState.ABORTED
        self.aborts += 1

    def crash(self) -> None:
        """Lose the volatile buffer; repair the log; resume transaction
        IDs past every decision on the stable log so a recovered
        coordinator never reuses an ID a participant may still hold an
        in-doubt prepare for."""
        self.log.wipe_volatile()
        self.log.repair_tail()
        committed = self.committed_txns()
        self._next_txn_id = max(
            self._next_txn_id, max(committed, default=0) + 1
        )

    def committed_txns(self) -> set[int]:
        """Transaction IDs with a forced commit decision on the log
        (used by participants for in-doubt resolution)."""
        return {
            value for tag, value in self.log.records() if tag == "commit"
        }

    @property
    def total_forces(self) -> int:
        return self.log.forces
