"""The stateless/queued comparison substrate (paper Section 1.1).

The paper motivates Phoenix/App against the then-standard way to build
highly available middle tiers: *stateless* components that communicate
through *recoverable message queues*, reading their state from durable
storage at every invocation and writing it back before replying — the
TP-monitor "string of beads" model of Bernstein/Hsu/Mann (SIGMOD 1990)
and Gray & Reuter.  The costs the paper calls out:

* "At every invocation, a component must read state information from a
  queue before processing and write it back after processing, which is
  an unnatural model."
* "And distributed commits for the distributed message queues are
  potentially expensive."

This package implements that model for real — durable queues, a durable
state store, a two-phase-commit coordinator, and a stateless worker
framework — so the claim can be *measured* against Phoenix/App on the
same simulated hardware (see ``benchmarks/bench_queue_comparison.py``).
"""

from .queue import QueueRecord, RecoverableQueue
from .state_store import DurableStateStore
from .transaction import TransactionCoordinator, TransactionParticipant
from .worker import QueuedClient, QueuedRequest, StatelessWorker, WorkerStats

__all__ = [
    "RecoverableQueue",
    "QueueRecord",
    "DurableStateStore",
    "TransactionCoordinator",
    "TransactionParticipant",
    "StatelessWorker",
    "QueuedClient",
    "QueuedRequest",
    "WorkerStats",
]
