"""The stateless worker — the TP-monitor "string of beads" model.

A worker holds **no** state between invocations.  For every request it:

1. dequeues the request from its input queue,
2. reads its state from the durable state store,
3. runs the application function,
4. writes the new state back,
5. enqueues the reply on the output queue,
6. commits — atomically, across queues and store (2PC when they are
   distinct resource managers).

Steps 2 and 4 are the "unnatural model" the Phoenix/App paper contrasts
with its natural stateful components; step 6 is the distributed-commit
cost its introduction calls "potentially expensive".  A worker crash
needs no recovery at all — that is the model's selling point — but
every single request pays the full transactional toll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..sim.machine import Machine
from .queue import RecoverableQueue
from .state_store import DurableStateStore
from .transaction import TransactionCoordinator


@dataclass(frozen=True)
class QueuedRequest:
    request_id: int
    operation: str
    args: tuple


@dataclass
class WorkerStats:
    requests: int = 0
    commits: int = 0
    replies: int = 0


class StatelessWorker:
    """Processes requests from an input queue against durable state."""

    def __init__(
        self,
        name: str,
        coordinator: TransactionCoordinator,
        input_queue: RecoverableQueue,
        output_queue: RecoverableQueue,
        state_store: DurableStateStore,
        handler: Callable,
        state_key: str = "state",
        initial_state: object = None,
    ):
        self.name = name
        self.coordinator = coordinator
        self.input_queue = input_queue
        self.output_queue = output_queue
        self.state_store = state_store
        self.handler = handler
        self.state_key = state_key
        self.initial_state = initial_state
        self.stats = WorkerStats()

    def process_one(self) -> bool:
        """Handle the next queued request; returns False if idle.

        The whole interaction — dequeue, state update, reply enqueue —
        commits atomically, which is what makes the stateless model
        exactly-once despite worker crashes.
        """
        with self.coordinator.begin() as txn:
            message = self.input_queue.dequeue(txn)
            if message is None:
                txn.abort()
                return False
            raw = message.payload
            request = QueuedRequest(
                raw["request_id"], raw["operation"], tuple(raw["args"])
            )
            state = self.state_store.get_in_txn(
                txn, self.state_key, self.initial_state
            )
            new_state, reply = self.handler(state, request)
            self.state_store.set(txn, self.state_key, new_state)
            self.output_queue.enqueue(
                txn, {"request_id": request.request_id, "reply": reply}
            )
        self.stats.requests += 1
        self.stats.commits += 1
        self.stats.replies += 1
        return True

    def drain(self) -> int:
        """Process until the input queue is empty; returns the count."""
        handled = 0
        while self.process_one():
            handled += 1
        return handled


class QueuedClient:
    """The client half: submits requests and collects replies, each in
    its own committed transaction (the request must be durable before
    the client can forget it; the reply dequeue must be durable before
    the client acts on it)."""

    def __init__(
        self,
        coordinator: TransactionCoordinator,
        request_queue: RecoverableQueue,
        reply_queue: RecoverableQueue,
    ):
        self.coordinator = coordinator
        self.request_queue = request_queue
        self.reply_queue = reply_queue
        self._next_request_id = 1

    def submit(self, operation: str, *args: object) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        with self.coordinator.begin() as txn:
            self.request_queue.enqueue(
                txn,
                {
                    "request_id": request_id,
                    "operation": operation,
                    "args": list(args),
                },
            )
        return request_id

    def collect_reply(self):
        with self.coordinator.begin() as txn:
            message = self.reply_queue.dequeue(txn)
            if message is None:
                txn.abort()
                return None
        return message.payload

    def call(self, worker: StatelessWorker, operation: str, *args: object):
        """Synchronous request/reply round trip through the queues."""
        self.submit(operation, *args)
        worker.process_one()
        reply = self.collect_reply()
        assert reply is not None, "worker produced no reply"
        return reply["reply"]
