"""A minimal durable record log for the queued substrate.

Each resource manager (queue, state store, transaction coordinator)
owns one of these: an append-only stable file of CRC-framed, tagged
records, forced on demand against the machine's rotational disk — the
same storage discipline Phoenix/App's log manager uses, without the
Phoenix record vocabulary.  It shares the log manager's zero-copy
framing helpers: records encode straight into the volatile buffer and
the flush hands the stable store a ``memoryview``.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import LogCorruptionError
from ..log.serialization import (
    Reader,
    Writer,
    begin_frame,
    end_frame,
    iter_frames,
)
from ..sim.machine import Machine


class DurableLog:
    """Append-only, forceable log of (tag, value) records."""

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        file_name = f"{name}.qlog"
        self._stable = machine.stable_store.open(file_name, create=True)
        if not machine.disk.has_file(file_name):
            machine.disk.create_file(file_name)
        self._disk_file = machine.disk.file(file_name)
        self._buffer = bytearray()
        self.forces = 0
        self.appends = 0

    def append(self, tag: str, value: object) -> None:
        header_at = begin_frame(self._buffer)
        writer = Writer(out=self._buffer)
        writer.text(tag)
        writer.value(value)
        end_frame(self._buffer, header_at)
        self.appends += 1

    def force(self) -> bool:
        """Flush buffered records with one unbuffered disk write."""
        if not self._buffer:
            return False
        self.machine.disk.write(self._disk_file, len(self._buffer))
        with memoryview(self._buffer) as view:
            self._stable.append(view)
        self._buffer.clear()
        self.forces += 1
        return True

    def wipe_volatile(self) -> None:
        """A crash loses whatever was not forced."""
        self._buffer.clear()

    def records(self) -> Iterator[tuple[str, object]]:
        """Replay the stable records (torn tails are skipped)."""
        try:
            for __, payload, ___ in iter_frames(self._stable.read()):
                reader = Reader(payload)
                yield reader.text(), reader.value()
        except LogCorruptionError:
            return  # torn tail
