"""A minimal durable record log for the queued substrate.

Each resource manager (queue, state store, transaction coordinator)
owns one of these: an append-only stable file of CRC-framed, tagged
records, forced on demand against the machine's rotational disk — the
same storage discipline Phoenix/App's log manager uses, without the
Phoenix record vocabulary.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import LogCorruptionError
from ..log.serialization import Reader, Writer, frame, read_frame
from ..sim.machine import Machine


class DurableLog:
    """Append-only, forceable log of (tag, value) records."""

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        file_name = f"{name}.qlog"
        self._stable = machine.stable_store.open(file_name, create=True)
        if not machine.disk.has_file(file_name):
            machine.disk.create_file(file_name)
        self._disk_file = machine.disk.file(file_name)
        self._buffer = bytearray()
        self.forces = 0
        self.appends = 0

    def append(self, tag: str, value: object) -> None:
        writer = Writer()
        writer.text(tag)
        writer.value(value)
        self._buffer.extend(frame(writer.getvalue()))
        self.appends += 1

    def force(self) -> bool:
        """Flush buffered records with one unbuffered disk write."""
        if not self._buffer:
            return False
        self.machine.disk.write(self._disk_file, len(self._buffer))
        self._stable.append(bytes(self._buffer))
        self._buffer.clear()
        self.forces += 1
        return True

    def wipe_volatile(self) -> None:
        """A crash loses whatever was not forced."""
        self._buffer.clear()

    def records(self) -> Iterator[tuple[str, object]]:
        """Replay the stable records (torn tails are skipped)."""
        data = self._stable.read()
        offset = 0
        while True:
            try:
                result = read_frame(data, offset)
            except LogCorruptionError:
                return  # torn tail
            if result is None:
                return
            payload, offset = result
            reader = Reader(payload)
            yield reader.text(), reader.value()
