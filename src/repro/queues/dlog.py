"""A minimal durable record log for the queued substrate.

Each resource manager (queue, state store, transaction coordinator)
owns one of these: an append-only stable file of CRC-framed, tagged
records, forced on demand against the machine's rotational disk — the
same storage discipline Phoenix/App's log manager uses, without the
Phoenix record vocabulary.  It shares the log manager's zero-copy
framing helpers: records encode straight into the volatile buffer and
the flush hands the stable store a ``memoryview``.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import LogCorruptionError, PartialWriteError
from ..faults import plane as faultplane
from ..log.serialization import (
    Reader,
    Writer,
    begin_frame,
    end_frame,
    iter_frames,
    repair_framed_tail,
)
from ..sim.machine import Machine


class DurableLog:
    """Append-only, forceable log of (tag, value) records."""

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        file_name = f"{name}.qlog"
        self._stable = machine.stable_store.open(file_name, create=True)
        if not machine.disk.has_file(file_name):
            machine.disk.create_file(file_name)
        self._disk_file = machine.disk.file(file_name)
        self._buffer = bytearray()
        self.forces = 0
        self.appends = 0

    def append(self, tag: str, value: object) -> None:
        header_at = begin_frame(self._buffer)
        writer = Writer(out=self._buffer)
        writer.text(tag)
        writer.value(value)
        end_frame(self._buffer, header_at)
        self.appends += 1

    def force(self) -> bool:
        """Flush buffered records with one unbuffered disk write."""
        if not self._buffer:
            return False
        nbytes = len(self._buffer)
        faultplane.site_hit(f"qforce.before:{self.name}")
        cut = faultplane.flush_cut(f"qlog.flush:{self.name}", nbytes)
        if cut is not None:
            self._stable.arm_partial_write(cut)
        self.machine.disk.write(self._disk_file, nbytes)
        try:
            with memoryview(self._buffer) as view:
                self._stable.append(view)
        except PartialWriteError:
            signal = faultplane.torn_signal(f"qlog.flush:{self.name}")
            if signal is None:
                raise
            raise signal from None
        self._buffer.clear()
        self.forces += 1
        faultplane.site_hit(f"qforce.after:{self.name}")
        return True

    def wipe_volatile(self) -> None:
        """A crash loses whatever was not forced."""
        self._buffer.clear()

    def repair_tail(self) -> int:
        """Truncate a torn tail left by a crash mid-force.

        Without this, a later append would land *after* the torn bytes
        and :meth:`records` — which stops at the first undecodable
        frame — would silently hide every record behind the tear.
        Resource managers call this on their crash path, before
        replaying the log.  Returns the repaired stable size.
        """
        return repair_framed_tail(self._stable)

    def records(self) -> Iterator[tuple[str, object]]:
        """Replay the stable records (torn tails are skipped)."""
        try:
            for __, payload, ___ in iter_frames(self._stable.read()):
                reader = Reader(payload)
                yield reader.text(), reader.value()
        except LogCorruptionError:
            return  # torn tail
