"""Deployment of the bookstore at the paper's three optimization levels.

Table 8 compares:

1. **baseline** — Algorithm 1 everywhere; every component persistent
   (except the BookBuyer, which is external);
2. **optimized_persistent** — Algorithms 2/3 for persistent components;
   still no specialized types or read-only methods;
3. **specialized** — component types (read-only PriceGrabber, functional
   TaxCalculator, subordinate baskets) and read-only methods.

As in the paper's experiment, the BookBuyer runs on one machine and all
server components run on the other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...core import AppProcess, PhoenixRuntime, RuntimeConfig
from ...errors import ConfigurationError
from .catalog import make_catalog
from .components import (
    BasketManager,
    BasketManagerPersistent,
    BookSeller,
    BookSellerRemoteBaskets,
    Bookstore,
    PriceGrabber,
    PriceGrabberPersistent,
    ShoppingBasketPersistent,
    TaxCalculator,
    TaxCalculatorPersistent,
)


class OptimizationLevel(enum.Enum):
    BASELINE = "baseline"
    OPTIMIZED_PERSISTENT = "optimized_persistent"
    SPECIALIZED = "specialized"

    @property
    def config(self) -> RuntimeConfig:
        if self is OptimizationLevel.BASELINE:
            return RuntimeConfig.baseline()
        if self is OptimizationLevel.OPTIMIZED_PERSISTENT:
            return RuntimeConfig.optimized(
                read_only_method_optimization=False
            )
        return RuntimeConfig.optimized()


@dataclass
class BookstoreApp:
    """Handles to a deployed bookstore."""

    runtime: PhoenixRuntime
    level: OptimizationLevel
    server_process: AppProcess
    stores: list = field(default_factory=list)
    price_grabber: object = None
    tax_calculator: object = None
    seller: object = None
    buyer_ids: tuple = ()

    def server_log_forces(self) -> int:
        return self.server_process.log.stats.forces_performed


def deploy_bookstore(
    level: OptimizationLevel | str = OptimizationLevel.SPECIALIZED,
    runtime: PhoenixRuntime | None = None,
    n_stores: int = 2,
    buyer_ids: tuple = ("buyer-1",),
    server_machine: str = "beta",
    buyer_machine: str = "alpha",
    catalog_size: int = 24,
    multicall: bool = False,
) -> BookstoreApp:
    """Deploy the bookstore; returns proxies for the buyer to drive.

    All server components share one process on ``server_machine`` (the
    paper runs them on one machine with the buyer on the other, so
    "logging is only on the server machine").
    """
    if isinstance(level, str):
        level = OptimizationLevel(level)
    if runtime is None:
        config = level.config
        if multicall:
            config = config.with_overrides(multicall_optimization=True)
        runtime = PhoenixRuntime(config=config)
    if n_stores < 1:
        raise ConfigurationError("need at least one bookstore")

    runtime.external_client_machine = buyer_machine
    process = runtime.spawn_process("bookstore-app", machine=server_machine)

    stores = [
        process.create_component(
            Bookstore, args=(make_catalog(i, catalog_size),)
        )
        for i in range(n_stores)
    ]

    specialized = level is OptimizationLevel.SPECIALIZED
    grabber_cls = PriceGrabber if specialized else PriceGrabberPersistent
    price_grabber = process.create_component(grabber_cls, args=(stores,))
    tax_cls = TaxCalculator if specialized else TaxCalculatorPersistent
    tax_calculator = process.create_component(tax_cls)

    if specialized:
        seller = process.create_component(BookSeller)
    else:
        managers = {}
        for buyer_id in buyer_ids:
            basket = process.create_component(ShoppingBasketPersistent)
            managers[buyer_id] = process.create_component(
                BasketManagerPersistent, args=(basket,)
            )
        seller = process.create_component(
            BookSellerRemoteBaskets, args=(managers,)
        )

    return BookstoreApp(
        runtime=runtime,
        level=level,
        server_process=process,
        stores=stores,
        price_grabber=price_grabber,
        tax_calculator=tax_calculator,
        seller=seller,
        buyer_ids=tuple(buyer_ids),
    )
