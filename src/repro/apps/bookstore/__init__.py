"""The paper's online bookstore application (Section 5.5)."""

from .buyer import BookBuyer, SessionReport
from .catalog import make_catalog, titles_matching
from .components import (
    BasketManager,
    BasketManagerPersistent,
    BookSeller,
    BookSellerRemoteBaskets,
    Bookstore,
    PriceGrabber,
    PriceGrabberPersistent,
    ShoppingBasket,
    ShoppingBasketPersistent,
    TaxCalculator,
    TaxCalculatorPersistent,
)
from .deploy import BookstoreApp, OptimizationLevel, deploy_bookstore

__all__ = [
    "BookBuyer",
    "SessionReport",
    "make_catalog",
    "titles_matching",
    "Bookstore",
    "PriceGrabber",
    "PriceGrabberPersistent",
    "TaxCalculator",
    "TaxCalculatorPersistent",
    "BasketManager",
    "BasketManagerPersistent",
    "ShoppingBasket",
    "ShoppingBasketPersistent",
    "BookSeller",
    "BookSellerRemoteBaskets",
    "BookstoreApp",
    "OptimizationLevel",
    "deploy_bookstore",
]
