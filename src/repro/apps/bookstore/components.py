"""The online bookstore's components (paper Section 5.5, Figure 10).

Six component kinds, with the optimized deployment's types shown as the
paper marks them in Figure 10:

* ``Bookstore`` (p) — per-store inventory; ``search`` is a read-only
  method;
* ``PriceGrabber`` (r) — keyword search across all bookstores;
* ``TaxCalculator`` (f) — pure sales-tax computation;
* ``BookSeller`` (p) — manages one BasketManager per buyer;
* ``BasketManager`` (s) + ``ShoppingBasket`` (s) — per-buyer basket
  state, subordinate to the seller;
* ``BookBuyer`` — external console client (see
  :mod:`repro.apps.bookstore.buyer`).

Each specialized component also has a ``...Persistent`` variant so the
application can be deployed at the paper's three optimization levels
(Table 8): the baseline and optimized-persistent levels run every
component as an ordinary persistent component in its own context, while
the specialized level uses the types above.
"""

from __future__ import annotations

from ...core import (
    PersistentComponent,
    functional,
    persistent,
    read_only,
    read_only_method,
    subordinate,
)
from ...errors import ApplicationError
from .catalog import titles_matching


# ----------------------------------------------------------------------
# Bookstore (persistent in every deployment)
# ----------------------------------------------------------------------
@persistent
class Bookstore(PersistentComponent):
    """Inventory of one store.  ``search``/``price`` are read-only
    methods; the read-only-method optimization only applies when the
    runtime config enables it (Section 3.3)."""

    def __init__(self, inventory: dict):
        self.inventory = dict(inventory)
        self.sold: dict[str, int] = {}

    @read_only_method
    def search(self, keyword: str) -> list:
        """Titles matching the keyword, with prices."""
        return [
            (title, self.inventory[title])
            for title in titles_matching(self.inventory, keyword)
        ]

    @read_only_method
    def price(self, title: str) -> float:
        try:
            return self.inventory[title]
        except KeyError:
            raise ApplicationError(f"no such title: {title!r}") from None

    def buy(self, title: str) -> float:
        """Record a sale; returns the price charged."""
        price = self.inventory.get(title)
        if price is None:
            raise ApplicationError(f"no such title: {title!r}")
        self.sold[title] = self.sold.get(title, 0) + 1
        return price


# ----------------------------------------------------------------------
# PriceGrabber: read-only in the specialized deployment
# ----------------------------------------------------------------------
class _PriceGrabberLogic(PersistentComponent):
    def __init__(self, stores: list):
        self.stores = list(stores)

    def search(self, keyword: str) -> list:
        """Keyword search across all bookstores.

        Returns (store_index, title, price) triples, cheapest first per
        title — the roll-up the paper's Section 5.5.2 describes."""
        hits = []
        for index, store in enumerate(self.stores):
            for title, price in store.search(keyword):
                hits.append((index, title, price))
        hits.sort(key=lambda hit: (hit[1], hit[2], hit[0]))
        return hits


@read_only
class PriceGrabber(_PriceGrabberLogic):
    """Stateless meta-search over the bookstores (type 'r')."""


@persistent
class PriceGrabberPersistent(_PriceGrabberLogic):  # phx: disable=PHX011
    """The same component deployed as ordinary persistent (levels 1-2).

    Deliberately costlier than necessary: this is the Table 8 baseline
    deployment the optimized variants are measured against, so the
    inferred ``read_only`` downgrade is suppressed on purpose."""


# ----------------------------------------------------------------------
# TaxCalculator: functional in the specialized deployment
# ----------------------------------------------------------------------
_TAX_RATES = {"wa": 0.095, "ca": 0.0725, "ny": 0.08875, "or": 0.0}


class _TaxLogic(PersistentComponent):
    def tax(self, subtotal: float, region: str) -> float:
        """Sales tax for a subtotal — purely functional."""
        rate = _TAX_RATES.get(region.lower(), 0.05)
        return round(subtotal * rate, 2)

    def total_with_tax(self, subtotal: float, region: str) -> float:
        return round(subtotal + self.tax(subtotal, region), 2)


@functional
class TaxCalculator(_TaxLogic):
    """Pure computation (type 'f'): nothing logged on either side."""


@persistent
class TaxCalculatorPersistent(_TaxLogic):  # phx: disable=PHX011
    """The same component deployed as ordinary persistent (levels 1-2);
    the ``functional`` downgrade is suppressed — Table 8 baseline."""


# ----------------------------------------------------------------------
# ShoppingBasket / BasketManager: subordinates of the seller
# ----------------------------------------------------------------------
class _ShoppingBasketLogic(PersistentComponent):
    def __init__(self):
        self.items: list = []  # (store_index, title, price)

    def add(self, store_index: int, title: str, price: float) -> int:
        self.items.append((store_index, title, price))
        return len(self.items)

    # The two accessors below are write-free, but @read_only_method is
    # deliberately withheld on the persistent basket variants: the
    # marking travels in serialized ReplyMessage bytes, which would
    # shift the calibrated Tables 4-8 log sizes for the baseline runs.
    def contents(self) -> list:  # phx: disable=PHX012
        return list(self.items)

    def subtotal(self) -> float:  # phx: disable=PHX012
        return round(sum(price for _, _, price in self.items), 2)

    def clear(self) -> int:
        removed = len(self.items)
        self.items = []
        return removed


@subordinate
class ShoppingBasket(_ShoppingBasketLogic):
    """Basket state, subordinate to the seller's context (type 's')."""


@persistent
class ShoppingBasketPersistent(_ShoppingBasketLogic):  # phx: disable=PHX011
    """Basket as an ordinary persistent component (levels 1-2); the
    ``subordinate`` downgrade is suppressed — Table 8 baseline."""


class _BasketManagerLogic(PersistentComponent):
    """Per-buyer basket manager; ``self.basket`` is set by subclasses."""

    basket = None

    def add(self, store_index: int, title: str, price: float) -> int:
        return self.basket.add(store_index, title, price)

    # Write-free but unmarked for the same reason as the basket
    # accessors: @read_only_method changes serialized reply bytes.
    def show(self) -> list:  # phx: disable=PHX012
        return self.basket.contents()

    def subtotal(self) -> float:  # phx: disable=PHX012
        return self.basket.subtotal()

    def clear(self) -> int:
        return self.basket.clear()


@subordinate
class BasketManager(_BasketManagerLogic):
    """Specialized deployment: manager and its basket are subordinates
    in the seller's context — their calls are never intercepted."""

    def __init__(self):
        self.basket = self.new_subordinate(ShoppingBasket)


@persistent
class BasketManagerPersistent(_BasketManagerLogic):  # phx: disable=PHX011
    """Levels 1-2: the manager is a parent component and the basket is a
    separate persistent component reached by proxy.  The ``subordinate``
    downgrade is suppressed — Table 8 baseline."""

    def __init__(self, basket_proxy):
        self.basket = basket_proxy


# ----------------------------------------------------------------------
# BookSeller
# ----------------------------------------------------------------------
class _BookSellerLogic(PersistentComponent):
    """Buyer-facing operations; `_basket` resolution differs per level."""

    def _basket(self, buyer_id: str):
        raise NotImplementedError

    def add_to_basket(
        self, buyer_id: str, store_index: int, title: str, price: float
    ) -> int:
        return self._basket(buyer_id).add(store_index, title, price)

    def show_basket(self, buyer_id: str) -> list:
        return self._basket(buyer_id).show()

    def basket_subtotal(self, buyer_id: str) -> float:
        return self._basket(buyer_id).subtotal()

    def clear_basket(self, buyer_id: str) -> int:
        return self._basket(buyer_id).clear()


@persistent
class BookSeller(_BookSellerLogic):
    """Specialized deployment: basket managers are created lazily as
    subordinates — creation happens inside the seller's own
    deterministic execution, so it replays without creation records."""

    def __init__(self):
        self.baskets: dict = {}

    def _basket(self, buyer_id: str):
        handle = self.baskets.get(buyer_id)
        if handle is None:
            handle = self.new_subordinate(BasketManager)
            self.baskets[buyer_id] = handle
        return handle


@persistent
class BookSellerRemoteBaskets(_BookSellerLogic):
    """Levels 1-2: basket managers are separate persistent components,
    pre-deployed and handed to the seller as proxies."""

    def __init__(self, basket_managers: dict):
        self.baskets = dict(basket_managers)

    def _basket(self, buyer_id: str):
        try:
            return self.baskets[buyer_id]
        except KeyError:
            raise ApplicationError(
                f"no basket manager deployed for {buyer_id!r}"
            ) from None
