"""The BookBuyer — the external console client (paper Section 5.5).

"BookBuyer runs in a console.  It displays text menus and communicates
with the PriceGrabber, BookSeller, and TaxCalculator to fulfil user
requests.  To test performance, we rewrote the BookBuyer client to
automatically generate inputs."

The automated session repeats the paper's operation mix:

  i)   search books with the keyword "recovery";
  ii)  add a book from each bookstore to the shopping basket;
  iii) show the shopping basket and compute the total price with tax;
  iv)  remove all books from the shopping basket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ComponentUnavailableError
from .deploy import BookstoreApp


@dataclass
class SessionReport:
    """What one automated buying session did and observed."""

    iterations: int = 0
    searches: int = 0
    hits_seen: int = 0
    books_added: int = 0
    totals: list = field(default_factory=list)
    elapsed_ms: float = 0.0
    forces: int = 0
    retries: int = 0


class BookBuyer:
    """External client driving the bookstore through proxies.

    External components get no exactly-once guarantee; the buyer's
    coping strategy is the obvious one — retry the operation — which is
    also how the tests exercise the paper's window-of-vulnerability
    analysis (Section 3.1.2).
    """

    def __init__(self, app: BookstoreApp, buyer_id: str = "buyer-1",
                 region: str = "wa", max_retries: int = 8):
        self.app = app
        self.buyer_id = buyer_id
        self.region = region
        self.max_retries = max_retries
        self._retries = 0

    # ------------------------------------------------------------------
    def _call(self, bound_method, *args):
        """Call with manual retry: the external client's condition 4."""
        attempts = 0
        while True:
            try:
                return bound_method(*args)
            except ComponentUnavailableError:
                attempts += 1
                self._retries += 1
                if attempts > self.max_retries:
                    raise

    # ------------------------------------------------------------------
    # the paper's operation mix
    # ------------------------------------------------------------------
    def run_iteration(self, keyword: str = "recovery") -> dict:
        app = self.app
        # i) keyword search through the PriceGrabber
        hits = self._call(app.price_grabber.search, keyword)

        # ii) buy one (the cheapest) matching book from each store: check
        # the price, record the sale at the store, add it to the basket
        added = []
        per_store: dict[int, tuple] = {}
        for store_index, title, price in hits:
            best = per_store.get(store_index)
            if best is None or price < best[2]:
                per_store[store_index] = (store_index, title, price)
        for store_index in sorted(per_store):
            store_index, title, price = per_store[store_index]
            store = app.stores[store_index]
            quoted = self._call(store.price, title)
            charged = self._call(store.buy, title)
            if abs(charged - quoted) > 1e-9:
                raise AssertionError("store changed the price mid-purchase")
            self._call(
                app.seller.add_to_basket,
                self.buyer_id, store_index, title, charged,
            )
            added.append((store_index, title, charged))

        # iii) show the basket; compute the total including tax
        contents = self._call(app.seller.show_basket, self.buyer_id)
        subtotal = self._call(app.seller.basket_subtotal, self.buyer_id)
        total = self._call(
            app.tax_calculator.total_with_tax, subtotal, self.region
        )

        # iv) remove all books
        removed = self._call(app.seller.clear_basket, self.buyer_id)

        return {
            "hits": len(hits),
            "added": added,
            "basket_size": len(contents),
            "subtotal": subtotal,
            "total": total,
            "removed": removed,
        }

    def run_session(
        self, iterations: int = 10, keyword: str = "recovery"
    ) -> SessionReport:
        """Run the op mix repeatedly; report elapsed time and forces the
        way Table 8 does."""
        runtime = self.app.runtime
        report = SessionReport()
        forces_before = self.app.server_log_forces()
        started = runtime.now
        for _ in range(iterations):
            outcome = self.run_iteration(keyword)
            report.iterations += 1
            report.searches += 1
            report.hits_seen += outcome["hits"]
            report.books_added += len(outcome["added"])
            report.totals.append(outcome["total"])
        report.elapsed_ms = runtime.now - started
        report.forces = self.app.server_log_forces() - forces_before
        report.retries = self._retries
        return report
