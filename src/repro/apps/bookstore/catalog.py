"""Synthetic book catalog.

The paper's demo searches for the keyword "recovery" — fitting, for a
recovery paper — so the generated titles are built from a small
database-systems vocabulary that guarantees keyword hits in every store.
Generation is deterministic (seeded by the store index): replay and
repeated runs always see the same inventory.
"""

from __future__ import annotations

_SUBJECTS = [
    "recovery", "logging", "transactions", "indexing", "replication",
    "checkpointing", "concurrency", "durability", "serialization",
    "messaging",
]
_QUALIFIERS = [
    "Principles of", "Advanced", "Practical", "A Primer on",
    "The Art of", "Foundations of", "Efficient", "Distributed",
]


def make_catalog(store_index: int, size: int = 24) -> dict[str, float]:
    """Inventory for one bookstore: title -> price.

    Prices differ between stores (store_index enters the formula) so the
    PriceGrabber's cross-store comparison is meaningful.
    """
    inventory: dict[str, float] = {}
    for i in range(size):
        subject = _SUBJECTS[i % len(_SUBJECTS)]
        qualifier = _QUALIFIERS[(i // len(_SUBJECTS)) % len(_QUALIFIERS)]
        title = f"{qualifier} {subject.title()} (vol. {i // len(_SUBJECTS) + 1})"
        price = round(19.0 + (i * 7 + store_index * 3) % 40 + 0.99, 2)
        inventory[title] = price
    return inventory


def titles_matching(inventory: dict[str, float], keyword: str) -> list[str]:
    needle = keyword.lower()
    return sorted(t for t in inventory if needle in t.lower())
