"""The BookBuyer console (paper Section 5.5).

"BookBuyer runs in a console.  It displays text menus and communicates
with the PriceGrabber, BookSeller, and TaxCalculator to fulfil user
requests."

Run interactively::

    python -m repro.apps.bookstore

or scripted (the paper "rewrote the BookBuyer client to automatically
generate inputs")::

    python -m repro.apps.bookstore --auto [iterations]

The console includes a ``crash`` command so you can kill the server
process mid-session and watch the shop carry on.
"""

from __future__ import annotations

import sys

from ...errors import ApplicationError, ComponentUnavailableError
from .buyer import BookBuyer
from .deploy import OptimizationLevel, deploy_bookstore

_MENU = """\
commands:
  search <keyword>      find books across all stores
  buy <store> <title>   buy a title and add it to your basket
  basket                show your basket
  total                 subtotal + tax for your basket
  clear                 empty your basket
  crash                 kill the server process (then keep shopping!)
  stats                 simulated time / forces / crashes
  quit
"""


class Console:
    def __init__(self, level: str = "specialized"):
        self.app = deploy_bookstore(level=OptimizationLevel(level))
        self.buyer_id = "console-buyer"
        self.region = "wa"

    def _guarded(self, bound, *args):
        try:
            return bound(*args)
        except ComponentUnavailableError:
            print("(the server crashed mid-request; retrying...)")
            return bound(*args)

    def cmd_search(self, keyword: str) -> None:
        hits = self._guarded(self.app.price_grabber.search, keyword)
        if not hits:
            print(f"no books match {keyword!r}")
            return
        for store, title, price in hits:
            print(f"  store {store}: {title}  ${price:.2f}")

    def cmd_buy(self, store_text: str, title: str) -> None:
        store_index = int(store_text)
        store = self.app.stores[store_index]
        try:
            price = self._guarded(store.buy, title)
        except ApplicationError as exc:
            print(f"  cannot buy: {exc}")
            return
        count = self._guarded(
            self.app.seller.add_to_basket,
            self.buyer_id, store_index, title, price,
        )
        print(f"  bought for ${price:.2f}; basket has {count} item(s)")

    def cmd_basket(self) -> None:
        contents = self._guarded(
            self.app.seller.show_basket, self.buyer_id
        )
        if not contents:
            print("  (empty)")
        for store, title, price in contents:
            print(f"  store {store}: {title}  ${price:.2f}")

    def cmd_total(self) -> None:
        subtotal = self._guarded(
            self.app.seller.basket_subtotal, self.buyer_id
        )
        total = self._guarded(
            self.app.tax_calculator.total_with_tax, subtotal, self.region
        )
        print(f"  subtotal ${subtotal:.2f}, with {self.region} tax "
              f"${total:.2f}")

    def cmd_clear(self) -> None:
        removed = self._guarded(self.app.seller.clear_basket, self.buyer_id)
        print(f"  removed {removed} item(s)")

    def cmd_crash(self) -> None:
        self.app.runtime.crash_process(self.app.server_process)
        print("  server process killed; your basket is on the log.")

    def cmd_stats(self) -> None:
        runtime = self.app.runtime
        process = self.app.server_process
        print(f"  simulated time: {runtime.now / 1000:.2f} s")
        print(f"  log forces:     {process.log.stats.forces_performed}")
        print(f"  crashes:        {process.crash_count} "
              f"(recoveries: {process.recovery_count})")

    def repl(self) -> None:
        print("Phoenix/App online bookstore — type 'help' for commands")
        while True:
            try:
                line = input("bookstore> ").strip()
            except EOFError:
                break
            if not line:
                continue
            command, *rest = line.split(" ", 2)
            if command in ("quit", "exit"):
                break
            if command == "help":
                print(_MENU)
            elif command == "search" and rest:
                self.cmd_search(rest[0])
            elif command == "buy" and len(rest) == 2:
                self.cmd_buy(rest[0], rest[1])
            elif command == "basket":
                self.cmd_basket()
            elif command == "total":
                self.cmd_total()
            elif command == "clear":
                self.cmd_clear()
            elif command == "crash":
                self.cmd_crash()
            elif command == "stats":
                self.cmd_stats()
            else:
                print("unrecognized; type 'help'")


def auto_session(iterations: int) -> int:
    app = deploy_bookstore()
    buyer = BookBuyer(app)
    report = buyer.run_session(iterations=iterations)
    print(f"{iterations} iterations of the Section 5.5 operation mix:")
    print(f"  elapsed: {report.elapsed_ms / iterations:.1f} ms/iteration")
    print(f"  forces:  {report.forces / iterations:.1f} per iteration")
    print(f"  receipts all equal: "
          f"{len(set(report.totals)) == 1} (${report.totals[0]})")
    return 0


def main(argv: list[str]) -> int:
    if "--auto" in argv:
        index = argv.index("--auto")
        iterations = int(argv[index + 1]) if len(argv) > index + 1 else 10
        return auto_session(iterations)
    Console().repl()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
