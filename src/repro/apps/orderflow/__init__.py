"""Order-processing pipeline — a second Phoenix/App application.

The bookstore (Section 5.5) is the paper's own demo; this application
exercises the component-type system on the paper's *motivating* domain
— "enterprise applications, such as web services and middleware
systems" (Section 1.1) — with a different interaction shape:

* every placed order fans out from one persistent orchestrator to
  several persistent servers (the Section 3.5 multi-call optimization's
  natural habitat);
* a read-only fraud screen reads persistent state owned by another
  component;
* a functional pricing engine computes totals;
* per-customer order books are subordinates of the orchestrator.
"""

from .components import (
    CustomerLedger,
    FraudScreen,
    Inventory,
    OrderBook,
    OrderDesk,
    PricingEngine,
)
from .deploy import OrderflowApp, deploy_orderflow

__all__ = [
    "OrderDesk",
    "OrderBook",
    "Inventory",
    "CustomerLedger",
    "PricingEngine",
    "FraudScreen",
    "OrderflowApp",
    "deploy_orderflow",
]
