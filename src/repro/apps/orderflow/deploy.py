"""Deployment of the order-processing pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core import AppProcess, PhoenixRuntime, RuntimeConfig

DEFAULT_STOCK = {"widget": 1_000, "gadget": 500, "gizmo": 40}


@dataclass
class OrderflowApp:
    runtime: PhoenixRuntime
    desk_process: AppProcess
    backend_process: AppProcess
    desk: object = None
    inventory: object = None
    ledger: object = None
    pricing: object = None
    fraud: object = None

    def total_forces(self) -> int:
        return (
            self.desk_process.log.stats.forces_performed
            + self.backend_process.log.stats.forces_performed
        )


def deploy_orderflow(
    runtime: PhoenixRuntime | None = None,
    stock: dict | None = None,
    credit_limit: float = 10_000.0,
    multicall: bool = False,
    desk_machine: str = "alpha",
    backend_machine: str = "beta",
) -> OrderflowApp:
    """Two processes: the order desk on one machine, the backend tier
    (inventory, ledger, pricing, fraud) on the other."""
    if runtime is None:
        config = RuntimeConfig.optimized(multicall_optimization=multicall)
        runtime = PhoenixRuntime(config=config)
    backend = runtime.spawn_process("orderflow-backend", machine=backend_machine)
    from .components import (
        CustomerLedger,
        FraudScreen,
        Inventory,
        OrderDesk,
        PricingEngine,
    )

    inventory = backend.create_component(
        Inventory, args=(dict(stock or DEFAULT_STOCK),)
    )
    ledger = backend.create_component(CustomerLedger, args=(credit_limit,))
    pricing = backend.create_component(PricingEngine)
    fraud = backend.create_component(FraudScreen, args=(ledger,))

    desk_process = runtime.spawn_process("orderflow-desk", machine=desk_machine)
    desk = desk_process.create_component(
        OrderDesk, args=(inventory, ledger, pricing, fraud)
    )
    return OrderflowApp(
        runtime=runtime,
        desk_process=desk_process,
        backend_process=backend,
        desk=desk,
        inventory=inventory,
        ledger=ledger,
        pricing=pricing,
        fraud=fraud,
    )
