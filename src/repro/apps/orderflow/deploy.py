"""Deployment of the order-processing pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core import AppProcess, PhoenixRuntime, RuntimeConfig

DEFAULT_STOCK = {"widget": 1_000, "gadget": 500, "gizmo": 40}


@dataclass
class OrderflowApp:
    runtime: PhoenixRuntime
    desk_process: AppProcess
    backend_process: AppProcess
    #: with ``split_backend`` the ledger tier's own process, else the
    #: shared ``backend_process``
    ledger_process: AppProcess = None
    desk: object = None
    inventory: object = None
    ledger: object = None
    pricing: object = None
    fraud: object = None

    def total_forces(self) -> int:
        total = (
            self.desk_process.log.stats.forces_performed
            + self.backend_process.log.stats.forces_performed
        )
        if self.ledger_process is not self.backend_process:
            total += self.ledger_process.log.stats.forces_performed
        return total


def deploy_orderflow(
    runtime: PhoenixRuntime | None = None,
    stock: dict | None = None,
    credit_limit: float = 10_000.0,
    multicall: bool = False,
    desk_machine: str = "alpha",
    backend_machine: str = "beta",
    split_backend: bool = False,
) -> OrderflowApp:
    """Two processes: the order desk on one machine, the backend tier
    (inventory, ledger, pricing, fraud) on the other.

    ``split_backend`` gives the ledger tier (ledger, pricing, fraud)
    its own process, so the desk's fan-out crosses two distinct server
    processes — the deployment shape the Section 3.5 multi-call skip
    applies to (co-hosted servers share one last-call slot per caller
    and must force every call).
    """
    if runtime is None:
        config = RuntimeConfig.optimized(multicall_optimization=multicall)
        runtime = PhoenixRuntime(config=config)
    backend = runtime.spawn_process("orderflow-backend", machine=backend_machine)
    from .components import (
        CustomerLedger,
        FraudScreen,
        Inventory,
        OrderDesk,
        PricingEngine,
    )

    inventory = backend.create_component(
        Inventory, args=(dict(stock or DEFAULT_STOCK),)
    )
    ledger_process = (
        runtime.spawn_process("orderflow-ledger", machine=backend_machine)
        if split_backend
        else backend
    )
    ledger = ledger_process.create_component(
        CustomerLedger, args=(credit_limit,)
    )
    pricing = ledger_process.create_component(PricingEngine)
    fraud = ledger_process.create_component(FraudScreen, args=(ledger,))

    desk_process = runtime.spawn_process("orderflow-desk", machine=desk_machine)
    desk = desk_process.create_component(
        OrderDesk, args=(inventory, ledger, pricing, fraud)
    )
    return OrderflowApp(
        runtime=runtime,
        desk_process=desk_process,
        backend_process=backend,
        ledger_process=ledger_process,
        desk=desk,
        inventory=inventory,
        ledger=ledger,
        pricing=pricing,
        fraud=fraud,
    )
