"""Components of the order-processing pipeline.

Call graph (arrows are method calls)::

    client (external)
       └─> OrderDesk (p)
             ├─> FraudScreen (r) ──> CustomerLedger (p, read-only method)
             ├─> PricingEngine (f)
             ├─> Inventory (p)
             ├─> CustomerLedger (p)
             └─> OrderBook (s)   [per customer, in the desk's context]
"""

from __future__ import annotations

from ...core import (
    PersistentComponent,
    functional,
    persistent,
    read_only,
    read_only_method,
    subordinate,
)
from ...errors import ApplicationError


@persistent
class Inventory(PersistentComponent):
    """Stock levels per SKU; reservations are the side effect the tests
    assert exactly-once on."""

    def __init__(self, stock: dict):
        self.stock = dict(stock)
        self.reservations = 0
        self.releases = 0

    def reserve(self, sku: str, quantity: int) -> int:
        available = self.stock.get(sku, 0)
        if quantity <= 0:
            raise ApplicationError(f"bad quantity {quantity}")
        if available < quantity:
            raise ApplicationError(
                f"only {available} of {sku!r} in stock"
            )
        self.stock[sku] = available - quantity
        self.reservations += 1
        return self.stock[sku]

    def release(self, sku: str, quantity: int) -> int:
        self.stock[sku] = self.stock.get(sku, 0) + quantity
        self.releases += 1
        return self.stock[sku]

    @read_only_method
    def available(self, sku: str) -> int:
        return self.stock.get(sku, 0)


@persistent
class CustomerLedger(PersistentComponent):
    """Lifetime spend per customer (fraud screening reads it)."""

    def __init__(self, credit_limit: float = 10_000.0):
        self.credit_limit = credit_limit
        self.spend: dict = {}

    def charge(self, customer: str, amount: float) -> float:
        total = round(self.spend.get(customer, 0.0) + amount, 2)
        self.spend[customer] = total
        return total

    def refund(self, customer: str, amount: float) -> float:
        total = round(self.spend.get(customer, 0.0) - amount, 2)
        self.spend[customer] = total
        return total

    @read_only_method
    def exposure(self, customer: str) -> float:
        return self.spend.get(customer, 0.0)

    @read_only_method
    def limit(self) -> float:
        return self.credit_limit


@functional
class PricingEngine(PersistentComponent):
    """Pure price computation: unit price book + volume discounts."""

    PRICES = {"widget": 9.99, "gadget": 24.50, "gizmo": 149.00}

    def quote(self, sku: str, quantity: int) -> float:
        unit = self.PRICES.get(sku)
        if unit is None:
            raise ApplicationError(f"no price for {sku!r}")
        subtotal = unit * quantity
        if quantity >= 100:
            subtotal *= 0.85
        elif quantity >= 10:
            subtotal *= 0.95
        return round(subtotal, 2)


@read_only
class FraudScreen(PersistentComponent):
    """Stateless risk check over the (persistent) ledger."""

    def __init__(self, ledger):
        self.ledger = ledger

    def check(self, customer: str, amount: float) -> str:
        exposure = self.ledger.exposure(customer)
        limit = self.ledger.limit()
        if exposure + amount > limit:
            return "reject"
        if amount > limit / 2:
            return "review"
        return "approve"


@subordinate
class OrderBook(PersistentComponent):
    """Per-customer order history, subordinate to the desk."""

    def __init__(self):
        self.orders: list = []

    def append(self, order: dict) -> int:
        self.orders.append(order)
        return len(self.orders)

    def history(self) -> list:
        return list(self.orders)

    def order_count(self) -> int:
        return len(self.orders)


@persistent
class OrderDesk(PersistentComponent):
    """The orchestrator: one incoming call fans out across the tier."""

    def __init__(self, inventory, ledger, pricing, fraud):
        self.inventory = inventory
        self.ledger = ledger
        self.pricing = pricing
        self.fraud = fraud
        self.books: dict = {}
        self.next_order_id = 1
        self.rejected = 0

    def _book(self, customer: str):
        book = self.books.get(customer)
        if book is None:
            book = self.new_subordinate(OrderBook)
            self.books[customer] = book
        return book

    def place_order(self, customer: str, sku: str, quantity: int) -> dict:
        """The full pipeline: price, screen, reserve, charge, record."""
        total = self.pricing.quote(sku, quantity)
        verdict = self.fraud.check(customer, total)
        if verdict == "reject":
            self.rejected += 1
            raise ApplicationError(
                f"order rejected: {customer} over credit limit"
            )
        remaining = self.inventory.reserve(sku, quantity)
        exposure = self.ledger.charge(customer, total)
        order_id = self.next_order_id
        self.next_order_id += 1
        order = {
            "order_id": order_id,
            "customer": customer,
            "sku": sku,
            "quantity": quantity,
            "total": total,
            "verdict": verdict,
            "stock_left": remaining,
        }
        self._book(customer).append(order)
        return order

    def cancel_order(self, customer: str, order_id: int) -> dict:
        book = self._book(customer)
        for order in book.history():
            if order["order_id"] == order_id:
                self.inventory.release(order["sku"], order["quantity"])
                self.ledger.refund(customer, order["total"])
                cancelled = dict(order)
                cancelled["cancelled"] = True
                book.append(cancelled)
                return cancelled
        raise ApplicationError(f"no order {order_id} for {customer}")

    def order_history(self, customer: str) -> list:
        return self._book(customer).history()

    @read_only_method
    def rejected_count(self) -> int:
        return self.rejected
