"""Example applications built on the Phoenix/App runtime."""
