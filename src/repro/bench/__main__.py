"""Regenerate the full evaluation and write EXPERIMENTS.md.

Usage::

    python -m repro.bench [output-path]

Runs every experiment of the paper's Section 5 at full size and writes
a markdown report pairing measured values with the paper's published
numbers.  (The pytest-benchmark wrappers in ``benchmarks/`` run the same
experiments with shape assertions; this module is the report generator.)
"""

from __future__ import annotations

import sys
import time

from .ablations import (
    attachment_omission_ablation,
    force_combining_ablation,
    log_gc_ablation,
    short_record_ablation,
    static_type_seeding_ablation,
)
from .checkpoint_sweep import checkpoint_interval_sweep
from .comparison import queue_comparison
from .plan_forces import plan_forces_comparison
from .experiments import (
    figure9,
    multicall_ablation,
    table4,
    table5,
    table6,
    table7,
    table8,
)

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of Barga, Chen & Lomet, *Improving
Logging and Recovery Performance in Phoenix/App* (ICDE 2004), on the
deterministic simulation substrate described in DESIGN.md.  Every value
below is in (simulated) milliseconds unless stated otherwise; "paper"
values are the published numbers.  Regenerate this file with
`python -m repro.bench`.

Absolute agreement is expected to be loose — the substrate is a
calibrated simulator, not the authors' 2003 testbed — but the *shape*
claims (who wins, by what factor, where crossovers fall) are asserted
programmatically in `benchmarks/`.

"""

_DISCUSSION = """
## Reading the results

- **Table 4** — native-call rows match to the microsecond (they
  calibrate the cost model).  External→Persistent is unchanged by the
  optimizations, as in the paper (same Algorithm-3 force count).
  Persistent→Persistent shows the headline result: the optimized
  algorithms halve the force count (4 → 2), and elapsed time follows.
  One deviation: the paper's *local* optimized P→P measured two
  *just-missed* rotations (~17.9 ms) where our deterministic disk locks
  into a mid-rotation phase (~11-12 ms, like the paper's own *remote*
  case).  Phase locking is the one place a deterministic simulator
  cannot reproduce hardware happenstance; the force counts — the thing
  the algorithms control — match exactly.
- **Table 5** — every specialized-type row is force-free and lands
  within ~0.15 ms of the paper: the 0.5 ms type-attachment overhead,
  the 0.15-0.2 ms unforced reply write for read-only servers, and the
  ~34 ns direct subordinate call are all visible.
- **Figure 9** — the staircase emerges mechanistically from the
  rotational model: flat at ~8.5 ms, one-rotation (8.33 ms) risers at
  each missed rotation.
- **Table 6** — saving a context state on every call adds ~1.3 ms of
  computation (paper: ~1 ms); enabling the write cache removes the
  media cost, exposing it.
- **Table 7** — empty-log recovery ≈ 492 ms, creation +80 ms, state
  restore +60 ms, replay 0.15 ms/call: the measured series is linear
  and the checkpoint break-even lands at the paper's ~400 calls.  (The
  paper's own series is noisy — up to 12% deviation — so its
  high-count cells bend away from the stated 0.15 ms/call slope;
  we reproduce the stated constants.)
- **Table 8** — the bookstore improves monotonically at each
  optimization level with elapsed ≈ forces × one disk rotation, exactly
  the paper's explanation of its own numbers.  Our scripted BookBuyer
  issues fewer stateful external calls per iteration than the paper's
  menu-driven client, so our specialized level saves proportionally
  more (the paper's external-call floor — forces that no optimization
  can remove — is higher).
- **Multi-call** (Section 3.5) — implemented here although the paper's
  prototype did not: fan-out forces collapse from k+1 to a constant 2,
  the paper's §5.5.2 prediction for the PriceGrabber.
- **Plan conformance** (extension) — the static shard/strategy planner
  (`repro-analyze plan`, docs/internals.md section 15) prices every
  component's logging strategy; here its span budgets meet real
  traces.  Observed forces sit exactly at (backend) or inside (desk,
  bookstore) the message-strategy budget, and re-budgeting the same
  spans under whole-app state/command assignment shows the force
  headroom a server-durable runtime would realize — the saving PHX014
  reports per component, measured against live traffic.
- **Static type seeding** (extension) — Section 3.4 learns server
  types from reply attachments, so a process's first call to each
  server pays conservative Algorithm 2/3 costs.  Warm-starting the
  remote type table from the statically verified declarations
  (`repro-analyze infer --check` gates them; `config.
  static_type_seeding` trusts them) removes every unknown-peer call
  and its cold-start force requests and attachment bytes, with
  byte-identical logs when the flag is off and identical replies when
  it is on.

## Known modelling divergences

1. **Push vs. pull replies to external clients.**  The paper's .NET
   remoting can push a regenerated reply to an external client after
   recovery; our synchronous RPC model cannot, so an external caller
   whose call was interrupted must retry and — having no call ID — may
   re-execute.  This *widens* the external window of vulnerability the
   paper already concedes in Section 3.1.2; all guarantees between
   persistent components are unaffected (and property-tested).
2. **Disk phase locking.**  Real disks plus OS jitter average
   rotational phase; the deterministic simulator locks into one phase
   per workload.  Individual elapsed-time cells can therefore sit a
   rotation away from the paper's; force counts and staircase structure
   are exact.
3. **Timer quality.**  The paper fights a ~15 ms OS timer by batching;
   we batch the same way for fidelity, but the simulated clock is
   exact, so our variance is zero.
"""


def main(argv: list[str]) -> int:
    output_path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    sections = []
    experiments = [
        ("Table 4", lambda: table4(calls=300)),
        ("Table 5", lambda: table5(calls=300)),
        ("Figure 9", figure9),
        ("Table 6", lambda: table6(calls=300)),
        ("Table 7", table7),
        ("Table 8", lambda: table8(iterations=10)),
        ("Multi-call (Section 3.5)", multicall_ablation),
        ("Queued-stateless comparison (Section 1.1)", queue_comparison),
        ("Ablation: reply-attachment omission (Section 5.2.3)",
         attachment_omission_ablation),
        ("Ablation: short records (Algorithm 3)", short_record_ablation),
        ("Ablation: force combining (Section 3.1.1)",
         force_combining_ablation),
        ("Ablation: log garbage collection (extension)", log_gc_ablation),
        ("Ablation: static type seeding (extension)",
         static_type_seeding_ablation),
        ("Checkpoint-interval sweep (Section 4.3)",
         checkpoint_interval_sweep),
        ("Plan conformance: predicted vs observed forces (extension)",
         plan_forces_comparison),
    ]
    for name, experiment in experiments:
        started = time.time()
        table = experiment()
        elapsed = time.time() - started
        print(f"{name}: done in {elapsed:.1f}s", file=sys.stderr)
        section = table.markdown()
        if table.key == "figure9":
            section += (
                "\n\nThe staircase, drawn:\n\n```\n"
                + table.ascii_chart()
                + "\n```"
            )
        sections.append(section)
    content = _HEADER + "\n\n".join(sections) + "\n" + _DISCUSSION
    with open(output_path, "w") as handle:
        handle.write(content)
    print(f"wrote {output_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
