"""Stateful Phoenix/App vs. queued-stateless TP-monitor model.

Paper Section 1.1 motivates Phoenix/App against the standard
high-availability recipe: stateless components + recoverable message
queues + durable state, with distributed commits tying each interaction
together.  This experiment runs the *same* logical workload — a client
performing N sequential counter updates against a middle-tier service —
three ways on identical simulated hardware:

1. **Phoenix/App (optimized)** — a persistent client component calling a
   persistent server (Algorithm 2: two forces per op);
2. **Phoenix/App (baseline)** — the same with Algorithm 1 (four forces);
3. **Queued stateless** — a stateless worker behind recoverable request
   and reply queues with a durable state store, one distributed commit
   per interaction (six forces).

All three give exactly-once semantics across crashes; what differs is
the price per operation.
"""

from __future__ import annotations

from ..core import PhoenixRuntime, RuntimeConfig
from ..queues import (
    DurableStateStore,
    QueuedClient,
    RecoverableQueue,
    StatelessWorker,
    TransactionCoordinator,
)
from ..sim import Cluster
from .harness import PersistentBatchClient, PingServer
from .reporting import Cell, ExperimentTable


def _phoenix_case(optimized: bool, calls: int) -> tuple[float, float]:
    """(ms/op, forces/op) for the Phoenix/App middle tier."""
    config = (
        RuntimeConfig.optimized() if optimized else RuntimeConfig.baseline()
    )
    runtime = PhoenixRuntime(config=config)
    server_process = runtime.spawn_process("svc", machine="beta")
    server = server_process.create_component(PingServer)
    client_process = runtime.spawn_process("cli", machine="beta")
    client = client_process.create_component(
        PersistentBatchClient, args=(server,)
    )
    client.batch(20)  # warm up (types, disk phase)
    forces_before = (
        server_process.log.stats.forces_performed
        + client_process.log.stats.forces_performed
    )
    elapsed = client.batch(calls)
    forces = (
        server_process.log.stats.forces_performed
        + client_process.log.stats.forces_performed
        - forces_before
    )
    return elapsed / calls, forces / calls


def _queued_case(calls: int) -> tuple[float, float]:
    """(ms/op, forces/op) for the queued stateless middle tier."""
    cluster = Cluster()
    machine = cluster.machine("beta")
    coordinator = TransactionCoordinator(machine)
    requests = RecoverableQueue(machine, "requests")
    replies = RecoverableQueue(machine, "replies")
    store = DurableStateStore(machine, "state")

    def handler(state, request):
        count = (state or 0) + 1
        return count, count

    worker = StatelessWorker(
        "svc", coordinator, requests, replies, store, handler
    )
    client = QueuedClient(coordinator, requests, replies)

    def forces() -> int:
        return (
            coordinator.total_forces
            + requests.total_forces
            + replies.total_forces
            + store.total_forces
        )

    for i in range(20):  # warm up the disk phase
        client.call(worker, "inc")
    forces_before = forces()
    started = cluster.now
    for i in range(calls):
        client.call(worker, "inc")
    elapsed = cluster.now - started
    return elapsed / calls, (forces() - forces_before) / calls


def queue_comparison(calls: int = 200) -> ExperimentTable:
    table = ExperimentTable(
        key="queue_comparison",
        title="Section 1.1: stateful Phoenix/App vs queued stateless "
        "middle tier (same workload, same hardware)",
        columns=["ms per op", "log forces per op"],
        precision=1,
    )
    opt_ms, opt_forces = _phoenix_case(optimized=True, calls=calls)
    base_ms, base_forces = _phoenix_case(optimized=False, calls=calls)
    queued_ms, queued_forces = _queued_case(calls)
    table.add_row(
        "Phoenix/App persistent (optimized)",
        Cell(opt_ms), Cell(opt_forces, 2),
    )
    table.add_row(
        "Phoenix/App persistent (baseline)",
        Cell(base_ms), Cell(base_forces, 4),
    )
    table.add_row(
        "Queued stateless (2PC per interaction)",
        Cell(queued_ms), Cell(queued_forces, 6),
    )
    table.notes.append(
        "'paper' columns show the analytic force counts; the paper "
        "gives no measured numbers for the queued model — it is the "
        "motivation, reproduced here as a real substrate."
    )
    return table
