"""Micro-benchmark harness (paper Section 5.1).

"The micro-benchmark setup consisted of a client component making method
calls to a server component.  We measured the round trip elapsed time of
a method call to the server component from inside the client component
(i.e. from inside the client object instance)."

The harness reproduces that exactly: for Phoenix client kinds, a batch
component performs N calls *inside one of its own method executions* and
reports the elapsed simulated time it observed; per-call time is
total / N, just as the paper divides by the number of calls to beat its
coarse OS timer.  (Reading the clock makes the batch components
deliberately non-replayable — they exist only for measurement and are
never crashed.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.types import ComponentType
from ..core import (
    PersistentComponent,
    PhoenixRuntime,
    RuntimeConfig,
    functional,
    persistent,
    read_only,
    read_only_method,
    subordinate,
)
from ..errors import ConfigurationError

CLIENT_KINDS = ("external", "persistent", "read_only", "context_bound")
SERVER_KINDS = (
    "marshal_by_ref",
    "context_bound",
    "context_bound_intercepted",
    "persistent",
    "persistent_ro_method",
    "read_only",
    "functional",
    "subordinate",
)


# ----------------------------------------------------------------------
# server components
# ----------------------------------------------------------------------
@persistent
class PingServer(PersistentComponent):
    """The persistent micro-benchmark server."""

    def __init__(self):
        self.calls = 0

    def ping(self, value):
        self.calls += 1
        return value

    @read_only_method
    def ping_ro(self, value):
        return value


@read_only
class ReadOnlyPingServer(PersistentComponent):
    def ping(self, value):
        return value


@functional
class FunctionalPingServer(PersistentComponent):
    def ping(self, value):
        return value


@subordinate
class SubordinatePingServer(PersistentComponent):
    def __init__(self):
        self.calls = 0

    def ping(self, value):
        self.calls += 1
        return value


class NativePingServer:
    """A plain object for the native .NET rows of Table 4."""

    def ping(self, value):
        return value


# ----------------------------------------------------------------------
# batch clients (measure from inside the client object)
# ----------------------------------------------------------------------
class _BatchMixin(PersistentComponent):
    """Runs N calls inside one method execution and times them.

    Clock access makes this non-replayable by design; see module doc.
    """

    def __init__(self, target=None):
        self.target = target
        self.sub = None

    def _clock(self):
        return self._phoenix_context.runtime.clock

    def batch(self, n: int, method: str = "ping") -> float:
        """N calls to the target; returns elapsed simulated ms."""
        call = getattr(self.target, method)
        clock = self._clock()
        started = clock.now
        for i in range(n):
            call(i)
        return clock.now - started

    def batch_subordinate(self, n: int) -> float:
        if self.sub is None:
            self.sub = self.new_subordinate(SubordinatePingServer)
        clock = self._clock()
        started = clock.now
        for i in range(n):
            self.sub.ping(i)
        return clock.now - started


@persistent
class PersistentBatchClient(_BatchMixin):
    pass


@read_only
class ReadOnlyBatchClient(_BatchMixin):
    pass


class NativeBatchClient:
    """Native (ContextBound) client for the CB->CB rows; it has no
    Phoenix context, so it times via the runtime handle it was given."""

    def __init__(self, runtime, target):
        self.runtime = runtime
        self.target = target

    def batch(self, n: int, method: str = "ping") -> float:
        call = getattr(self.target, method)
        clock = self.runtime.clock
        started = clock.now
        for i in range(n):
            call(i)
        return clock.now - started


# ----------------------------------------------------------------------
# the measurement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MicrobenchResult:
    client: str
    server: str
    remote: bool
    optimized: bool
    per_call_ms: float
    calls: int
    forces: int
    disk_writes: int


def run_pair(
    client: str,
    server: str,
    remote: bool = False,
    optimized: bool = True,
    calls: int = 300,
    warmup: int = 20,
    config: RuntimeConfig | None = None,
    write_cache: bool = False,
    save_state_each_call: bool = False,
) -> MicrobenchResult:
    """Measure one (client kind, server kind) pair of Tables 4-6."""
    if client not in CLIENT_KINDS:
        raise ConfigurationError(f"unknown client kind {client!r}")
    if server not in SERVER_KINDS:
        raise ConfigurationError(f"unknown server kind {server!r}")
    if config is None:
        config = (
            RuntimeConfig.optimized()
            if optimized
            else RuntimeConfig.baseline()
        )
    runtime = PhoenixRuntime(config=config)
    if write_cache:
        for machine in runtime.cluster.machines():
            machine.set_write_cache(True)

    server_machine = "beta" if remote else "alpha"
    server_process = runtime.spawn_process("bench-srv", machine=server_machine)

    # --- deploy the server ---
    ro_method = False
    if server == "marshal_by_ref":
        target = server_process.create_component(
            NativePingServer, component_type=ComponentType.MARSHAL_BY_REF
        )
    elif server == "context_bound":
        target = server_process.create_component(
            NativePingServer, component_type=ComponentType.CONTEXT_BOUND
        )
    elif server == "context_bound_intercepted":
        target = server_process.create_component(
            NativePingServer,
            component_type=ComponentType.CONTEXT_BOUND,
            install_interceptors=True,
        )
    elif server in ("persistent", "persistent_ro_method"):
        target = server_process.create_component(PingServer)
        ro_method = server == "persistent_ro_method"
    elif server == "read_only":
        target = server_process.create_component(ReadOnlyPingServer)
    elif server == "functional":
        target = server_process.create_component(FunctionalPingServer)
    elif server == "subordinate":
        target = None  # created inside the client's context
    method = "ping_ro" if ro_method else "ping"

    # --- deploy the client and measure ---
    client_process = None
    if client == "external":
        if server == "subordinate":
            raise ConfigurationError(
                "a subordinate cannot be called from outside its context"
            )
        runtime.external_client_machine = "alpha"
        call = getattr(target, method)
        for i in range(warmup):
            call(i)
        forces_before = _forces(client_process, server_process)
        writes_before = _disk_writes(runtime)
        started = runtime.now
        for i in range(calls):
            call(i)
        elapsed = runtime.now - started
    elif client == "context_bound":
        native = NativeBatchClient(runtime, target)
        runtime.external_client_machine = "alpha"
        native.batch(warmup, method)
        forces_before = _forces(client_process, server_process)
        writes_before = _disk_writes(runtime)
        elapsed = native.batch(calls, method)
    else:
        client_process = runtime.spawn_process("bench-cli", machine="alpha")
        cls = (
            PersistentBatchClient
            if client == "persistent"
            else ReadOnlyBatchClient
        )
        proxy = client_process.create_component(cls, args=(target,))
        if server == "subordinate":
            proxy.batch_subordinate(warmup)
            forces_before = _forces(client_process, server_process)
            writes_before = _disk_writes(runtime)
            elapsed = proxy.batch_subordinate(calls)
        else:
            proxy.batch(warmup, method)
            if save_state_each_call:
                _enable_save_each_call(runtime, server_process)
            forces_before = _forces(client_process, server_process)
            writes_before = _disk_writes(runtime)
            elapsed = proxy.batch(calls, method)

    forces = _forces(client_process, server_process) - forces_before
    disk_writes = _disk_writes(runtime) - writes_before
    return MicrobenchResult(
        client=client,
        server=server,
        remote=remote,
        optimized=optimized,
        per_call_ms=elapsed / calls,
        calls=calls,
        forces=forces,
        disk_writes=disk_writes,
    )


def _forces(client_process, server_process) -> int:
    """Performed log forces across both processes (client may be None)."""
    total = server_process.log.stats.forces_performed
    if client_process is not None:
        total += client_process.log.stats.forces_performed
    return total


def _disk_writes(runtime: PhoenixRuntime) -> int:
    return sum(
        machine.disk.stats.writes for machine in runtime.cluster.machines()
    )


def _enable_save_each_call(runtime: PhoenixRuntime, process) -> None:
    """Flip the server process to save context state on every call
    (Table 6's 'save state on call' row)."""
    from ..core.config import CheckpointConfig

    process.config = process.config.with_overrides(
        checkpoint=CheckpointConfig(context_state_every_n_calls=1)
    )
