"""Checkpoint-interval sweep (paper Section 4.3's promised estimate).

"We take process checkpoints periodically...  From the experiments, we
will estimate how frequent context states should be saved."

Section 5.4 gives the break-even (~400 calls); this experiment shows the
full trade-off curve: for each state-save interval N, the runtime
overhead a save adds per call, and the recovery time after a crash at
the worst possible moment (just before the next save, with N-1 calls to
replay).  Small intervals buy cheap recovery with per-call overhead;
large intervals the reverse; the total-cost sweet spot depends on how
often the deployment crashes.
"""

from __future__ import annotations

from ..core import CheckpointConfig, PhoenixRuntime, RuntimeConfig
from .harness import PingServer
from .reporting import Cell, ExperimentTable


def _run(interval: int | None, calls: int) -> tuple[float, float]:
    """Returns (runtime ms/call, recovery ms after worst-case crash)."""
    config = RuntimeConfig.optimized(
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=interval,
            process_checkpoint_every_n_saves=4 if interval else None,
        )
    )
    runtime = PhoenixRuntime(config=config)
    runtime.external_client_machine = "alpha"
    process = runtime.spawn_process("sweep", machine="beta")
    server = process.create_component(PingServer)
    server.ping(0)  # settle the disk phase
    started = runtime.now
    for i in range(calls):
        server.ping(i)
    per_call = (runtime.now - started) / calls
    runtime.crash_process(process)
    recovery_started = runtime.now
    runtime.ensure_recovered(process)
    recovery = runtime.now - recovery_started
    return per_call, recovery


def checkpoint_interval_sweep(
    intervals: tuple = (25, 100, 400, 1600),
    base_calls: int = 1600,
) -> ExperimentTable:
    table = ExperimentTable(
        key="checkpoint_sweep",
        title="Section 4.3/5.4: checkpoint-interval trade-off "
        "(runtime cost vs worst-case recovery)",
        columns=["runtime ms/call", "worst-case recovery ms"],
        precision=2,
    )
    # crash just before the save that would have run at call N*k:
    # N-1 calls since the last save must replay.
    no_ckpt_per_call, no_ckpt_recovery = _run(None, base_calls - 1)
    for interval in intervals:
        # counting the settle call, the context handles k*N + (N-1)
        # calls: the crash lands one call short of the next save
        calls = (base_calls // interval) * interval + interval - 2
        per_call, recovery = _run(interval, calls)
        table.add_row(
            f"every {interval} calls",
            Cell(per_call),
            Cell(recovery),
        )
    table.add_row(
        "no checkpoints",
        Cell(no_ckpt_per_call),
        Cell(no_ckpt_recovery),
    )
    table.notes.append(
        "worst case = crash with interval-1 calls unsaved; recovery = "
        "init (~492) + creation (~80) + restore (~60 when a state "
        "record exists) + 0.15/replayed call.  The paper's rule: save "
        "every ~400+ calls."
    )
    return table
