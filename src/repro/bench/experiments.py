"""The paper's evaluation, experiment by experiment.

One function per table/figure of Section 5.  Each returns an
:class:`ExperimentTable` pairing measured values with the paper's
published numbers; ``benchmarks/`` wraps these for pytest-benchmark and
asserts the shape criteria recorded in DESIGN.md.
"""

from __future__ import annotations

from ..apps.bookstore import BookBuyer, OptimizationLevel, deploy_bookstore
from ..core import (
    CheckpointConfig,
    PersistentComponent,
    PhoenixRuntime,
    RuntimeConfig,
    persistent,
)
from ..sim import RotationalDisk, SimClock
from .harness import PingServer, run_pair
from .reporting import Cell, ExperimentTable


# ----------------------------------------------------------------------
# Table 4 — log optimizations for persistent components
# ----------------------------------------------------------------------
def table4(calls: int = 300) -> ExperimentTable:
    table = ExperimentTable(
        key="table4",
        title="Table 4: Log Optimizations for Persistent Components (ms)",
        columns=["local", "remote"],
        precision=3,
    )
    cases = [
        ("External -> MarshalByRefObject",
         ("external", "marshal_by_ref", True), 0.593, 0.798),
        ("External -> ContextBoundObject",
         ("external", "context_bound", True), 0.598, 0.804),
        ("ContextBound -> ContextBound",
         ("context_bound", "context_bound", True), 0.585, 0.808),
        ("ContextBound -> ContextBound (interception)",
         ("context_bound", "context_bound_intercepted", True), 0.674, 0.870),
        ("External -> Persistent (baseline)",
         ("external", "persistent", False), 17.0, 17.3),
        ("External -> Persistent (optimized)",
         ("external", "persistent", True), 17.1, 17.0),
        ("Persistent -> Persistent (baseline)",
         ("persistent", "persistent", False), 34.7, 28.4),
        ("Persistent -> Persistent (optimized)",
         ("persistent", "persistent", True), 17.9, 10.8),
    ]
    for label, (client, server, optimized), paper_local, paper_remote in cases:
        local = run_pair(
            client, server, remote=False, optimized=optimized, calls=calls
        ).per_call_ms
        remote = run_pair(
            client, server, remote=True, optimized=optimized, calls=calls
        ).per_call_ms
        table.add_row(
            label, Cell(local, paper_local), Cell(remote, paper_remote)
        )
    table.notes.append(
        "local optimized P->P locks into a favourable disk phase in the "
        "deterministic simulation (writes land mid-rotation, as in the "
        "paper's remote case) where the paper's hardware happened to "
        "just-miss; the baseline/optimized force counts (4 vs 2) match."
    )
    return table


# ----------------------------------------------------------------------
# Table 5 — new component types and read-only methods
# ----------------------------------------------------------------------
def table5(calls: int = 300) -> ExperimentTable:
    table = ExperimentTable(
        key="table5",
        title="Table 5: New Components and Read-only Methods (ms)",
        columns=["local", "remote"],
        precision=5,
    )
    cases = [
        ("External -> Read-only", ("external", "read_only"), 0.689, 0.887),
        ("External -> Functional", ("external", "functional"), 0.672, 0.875),
        ("Persistent -> Read-only", ("persistent", "read_only"), 1.351, 1.495),
        ("Persistent -> Functional",
         ("persistent", "functional"), 1.194, 1.414),
        ("Persistent -> Subordinate",
         ("persistent", "subordinate"), 3.44e-5, None),
        ("Persistent -> Persistent (read-only methods)",
         ("persistent", "persistent_ro_method"), 1.407, 1.547),
        ("Read-only -> Persistent", ("read_only", "persistent"), 1.218, 1.404),
    ]
    for label, (client, server), paper_local, paper_remote in cases:
        local = run_pair(client, server, calls=calls).per_call_ms
        cells = [Cell(local, paper_local)]
        if paper_remote is None:
            cells.append(Cell(float("nan"), None))
        else:
            remote = run_pair(
                client, server, remote=True, calls=calls
            ).per_call_ms
            cells.append(Cell(remote, paper_remote))
        table.add_row(label, *cells)
    table.notes.append(
        "subordinate calls never cross a context, so there is no remote "
        "column for them (as in the paper)."
    )
    return table


# ----------------------------------------------------------------------
# Figure 9 — unbuffered disk write staircase
# ----------------------------------------------------------------------
def figure9(
    delays_ms: tuple = tuple(range(0, 37, 2)),
    writes_per_point: int = 50,
    write_bytes: int = 1024,
) -> ExperimentTable:
    """Per-iteration elapsed time of a 1 KB unbuffered write loop with an
    inserted delay after each write."""
    table = ExperimentTable(
        key="figure9",
        title="Figure 9: Unbuffered disk write performance "
        "(ms/iteration vs inserted delay)",
        columns=["ms_per_iteration"],
        precision=2,
    )
    # The paper's curve: ~8.5 until one rotation, then steps of ~8.33.
    rotation = 8.333
    for delay in delays_ms:
        clock = SimClock()
        disk = RotationalDisk(clock)
        file = disk.create_file("figure9.log")
        disk.write(file, write_bytes)  # land on the sequential pattern
        for _ in range(10):  # settle
            clock.advance(float(delay))
            disk.write(file, write_bytes)
        started = clock.now
        for _ in range(writes_per_point):
            clock.advance(float(delay))
            disk.write(file, write_bytes)
        per_iteration = (clock.now - started) / writes_per_point
        import math

        paper_value = (math.floor(delay / rotation) + 1) * rotation + 0.17
        table.add_row(f"delay={delay}ms", Cell(per_iteration, round(paper_value, 2)))
    table.notes.append(
        "'paper' values are the staircase read off Figure 9: "
        "(floor(delay/rotation)+1) * 8.33ms + transfer."
    )
    return table


# ----------------------------------------------------------------------
# Table 6 — checkpointing overhead
# ----------------------------------------------------------------------
def table6(calls: int = 300) -> ExperimentTable:
    table = ExperimentTable(
        key="table6",
        title="Table 6: Checkpointing Performance (ms), remote P->P",
        columns=["write cache disabled", "write cache enabled"],
    )
    plain_off = run_pair(
        "persistent", "persistent", remote=True, calls=calls
    ).per_call_ms
    save_off = run_pair(
        "persistent", "persistent", remote=True, calls=calls,
        save_state_each_call=True,
    ).per_call_ms
    plain_on = run_pair(
        "persistent", "persistent", remote=True, calls=calls,
        write_cache=True,
    ).per_call_ms
    save_on = run_pair(
        "persistent", "persistent", remote=True, calls=calls,
        write_cache=True, save_state_each_call=True,
    ).per_call_ms
    table.add_row(
        "Persistent -> Persistent",
        Cell(plain_off, 10.8), Cell(plain_on, 2.62),
    )
    table.add_row(
        "Persistent -> Persistent (save state on call)",
        Cell(save_off, 11.8), Cell(save_on, 3.82),
    )
    return table


# ----------------------------------------------------------------------
# Table 7 — recovery performance
# ----------------------------------------------------------------------
def _recovery_elapsed(
    calls_before: int,
    calls_after: int,
    save_state: bool,
) -> float:
    """Kill a server after a call history; return recovery elapsed ms."""
    runtime = PhoenixRuntime(config=RuntimeConfig.optimized())
    runtime.external_client_machine = "alpha"
    process = runtime.spawn_process("recovery-bench", machine="beta")
    server = process.create_component(PingServer)
    for i in range(calls_before):
        server.ping(i)
    if save_state:
        context = process.find_context(1)
        process.save_context_state(context)
        # State records are not forced (Section 4.3) — a later send
        # message makes them stable.  The crash below must find the
        # record on disk, so flush it the way continued traffic would.
        process.log_force()
    for i in range(calls_after):
        server.ping(i)
    runtime.crash_process(process)
    started = runtime.now
    runtime.ensure_recovered(process)
    return runtime.now - started


def recovery_empty_log() -> float:
    """Recovery of a process that never hosted a component."""
    runtime = PhoenixRuntime()
    process = runtime.spawn_process("empty", machine="beta")
    runtime.crash_process(process)
    started = runtime.now
    runtime.ensure_recovered(process)
    return runtime.now - started


def table7(
    call_counts: tuple = (0, 1000, 2000, 3000, 4000, 5000),
) -> ExperimentTable:
    table = ExperimentTable(
        key="table7",
        title="Table 7: Recovery Performance (ms) vs replayed calls",
        columns=[str(n) for n in call_counts],
        precision=0,
    )
    paper = {
        "Empty log": {0: 492},
        "From creation": dict(
            zip((0, 1000, 2000, 3000, 4000, 5000),
                (575, 728, 868, 1007, 1100, 1199))
        ),
        "From state": dict(
            zip((0, 1000, 2000, 3000, 4000, 5000),
                (638, 794, 875, 1162, 1252, 1507))
        ),
    }
    empty = recovery_empty_log()
    table.add_row(
        "Empty log",
        *[
            Cell(empty, paper["Empty log"].get(n)) if n == 0
            else Cell(float("nan"))
            for n in call_counts
        ],
    )
    for label, save_state in (("From creation", False), ("From state", True)):
        cells = []
        for n in call_counts:
            elapsed = _recovery_elapsed(
                calls_before=100 if save_state else 0,
                calls_after=n,
                save_state=save_state,
            )
            cells.append(Cell(elapsed, paper[label].get(n)))
        table.add_row(label, *cells)
    table.notes.append(
        "replay cost is linear at ~0.15 ms/call (the paper's stated "
        "constant); the paper's own table has up to 12% deviation."
    )
    return table


# ----------------------------------------------------------------------
# Table 8 — the online bookstore
# ----------------------------------------------------------------------
def table8(iterations: int = 10) -> ExperimentTable:
    table = ExperimentTable(
        key="table8",
        title="Table 8: Online Bookstore (per operation set)",
        columns=["elapsed ms", "log forces"],
        precision=1,
    )
    paper = {
        OptimizationLevel.BASELINE: (589.0, 64),
        OptimizationLevel.OPTIMIZED_PERSISTENT: (382.0, 46),
        OptimizationLevel.SPECIALIZED: (296.0, 34),
    }
    for level in OptimizationLevel:
        app = deploy_bookstore(level=level)
        buyer = BookBuyer(app)
        report = buyer.run_session(iterations=iterations)
        paper_ms, paper_forces = paper[level]
        table.add_row(
            level.value,
            Cell(report.elapsed_ms / iterations, paper_ms),
            Cell(report.forces / iterations, paper_forces),
        )
    table.notes.append(
        "per-iteration averages of the Section 5.5 operation mix; our "
        "scripted BookBuyer performs fewer stateful external calls per "
        "iteration than the paper's menu-driven client, so the "
        "specialized level saves proportionally more."
    )
    return table


# ----------------------------------------------------------------------
# Section 5.5.2 — multi-call optimization ablation (extension)
# ----------------------------------------------------------------------
@persistent
class FanoutClient(PersistentComponent):
    """A PriceGrabber-shaped persistent component: one incoming call
    fans out to k persistent servers."""

    def __init__(self, servers: list):
        self.servers = list(servers)
        self.rounds = 0

    def grab(self, value):
        self.rounds += 1
        return [server.ping(value) for server in self.servers]


def multicall_ablation(
    server_counts: tuple = (1, 2, 4, 8), calls: int = 20
) -> ExperimentTable:
    """Forces per fan-out call, with and without the Section 3.5
    multi-call optimization (paper: 'the PriceGrabber forces the log
    only once, regardless of the number of Bookstores it queries')."""
    table = ExperimentTable(
        key="multicall",
        title="Section 3.5/5.5.2: multi-call optimization "
        "(client log forces per fan-out call)",
        columns=["without multi-call", "with multi-call"],
        precision=1,
    )
    for count in server_counts:
        forces = {}
        for enabled in (False, True):
            config = RuntimeConfig.optimized(multicall_optimization=enabled)
            runtime = PhoenixRuntime(config=config)
            runtime.external_client_machine = "alpha"
            client_process = runtime.spawn_process("grabber", machine="beta")
            # one process per server: the skip is per server *process*
            # (a repeat call into the same process evicts the earlier
            # call's last-call entry and must force again)
            servers = [
                runtime.spawn_process(
                    f"store{i}", machine="beta"
                ).create_component(PingServer)
                for i in range(count)
            ]
            client = client_process.create_component(
                FanoutClient, args=(servers,)
            )
            client.grab(0)  # warm the type table
            before = client_process.log.stats.forces_performed
            for i in range(calls):
                client.grab(i)
            forces[enabled] = (
                client_process.log.stats.forces_performed - before
            ) / calls
        table.add_row(
            f"{count} servers",
            Cell(forces[False], count + 1),
            Cell(forces[True], 2),
        )
    table.notes.append(
        "'paper' columns show the analytic expectation: k outgoing "
        "forces + 1 reply force without the optimization; first-call "
        "force + reply force with it."
    )
    return table


def _plan_forces(**kwargs):
    from .plan_forces import plan_forces_comparison

    return plan_forces_comparison(**kwargs)


ALL_EXPERIMENTS = {
    "table4": table4,
    "table5": table5,
    "figure9": figure9,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "multicall": multicall_ablation,
    "plan_forces": _plan_forces,
}
