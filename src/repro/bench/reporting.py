"""Experiment result containers and paper-style text tables.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentTable` carrying measured values side by side with the
paper's published numbers, so benchmark output and EXPERIMENTS.md can be
generated from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cell:
    """One measured value next to the paper's value (None = not given)."""

    measured: float
    paper: float | None = None

    def format(self, precision: int = 2) -> str:
        if self.paper is None:
            return f"{self.measured:.{precision}f}"
        return f"{self.measured:.{precision}f} (paper {self.paper:g})"


@dataclass
class ExperimentTable:
    """A reproduced table or figure."""

    key: str  # e.g. "table4"
    title: str
    columns: list[str]
    rows: list[tuple[str, list[Cell]]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 2

    def add_row(self, label: str, *cells: Cell) -> None:
        self.rows.append((label, list(cells)))

    def cell(self, row_label: str, column: str) -> Cell:
        column_index = self.columns.index(column)
        for label, cells in self.rows:
            if label == row_label:
                return cells[column_index]
        raise KeyError(row_label)

    def format(self) -> str:
        label_width = max(
            [len("case")] + [len(label) for label, _ in self.rows]
        )
        rendered_rows = [
            [label.ljust(label_width)]
            + [cell.format(self.precision) for cell in cells]
            for label, cells in self.rows
        ]
        col_widths = [label_width] + [
            max(
                [len(col)]
                + [len(row[i + 1]) for row in rendered_rows]
            )
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = ["case".ljust(col_widths[0])] + [
            col.ljust(col_widths[i + 1])
            for i, col in enumerate(self.columns)
        ]
        lines.append("  ".join(header))
        lines.append("-" * (sum(col_widths) + 2 * len(col_widths)))
        for row in rendered_rows:
            lines.append(
                "  ".join(
                    part.ljust(col_widths[i]) for i, part in enumerate(row)
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def ascii_chart(
        self, column: str = None, width: int = 56, height: int = 12
    ) -> str:
        """Render one column's measured values as a text chart — used to
        reproduce the paper's Figure 9 as a figure, not just a table."""
        column_index = (
            self.columns.index(column) if column is not None else 0
        )
        labels = [label for label, __ in self.rows]
        values = [
            cells[column_index].measured for __, cells in self.rows
        ]
        if not values:
            return "(no data)"
        top = max(values)
        bottom = 0.0
        span = top - bottom or 1.0
        columns_per_point = max(1, width // len(values))
        grid = [
            [" "] * (columns_per_point * len(values))
            for __ in range(height)
        ]
        for i, value in enumerate(values):
            level = int(round((value - bottom) / span * (height - 1)))
            row = height - 1 - level
            for j in range(columns_per_point):
                grid[row][i * columns_per_point + j] = "█"
        lines = [f"{self.columns[column_index]} (0 .. {top:.1f})"]
        for row in grid:
            lines.append("|" + "".join(row))
        lines.append("+" + "-" * (columns_per_point * len(values)))
        lines.append(f" {labels[0]} .. {labels[-1]}")
        return "\n".join(lines)

    def markdown(self) -> str:
        """GitHub-flavoured markdown (used to build EXPERIMENTS.md)."""
        lines = [f"### {self.title}", ""]
        lines.append("| case | " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * (len(self.columns) + 1))
        for label, cells in self.rows:
            rendered = " | ".join(
                cell.format(self.precision) for cell in cells
            )
            lines.append(f"| {label} | {rendered} |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)
