"""Predicted-vs-observed forces under the LogPlan's strategy table.

For the bookstore and orderflow workloads, every closed top-level call
span is priced by the plan's TRC109 budget under three whole-app
strategy assignments:

* **message** — the committed plan (what today's runtime implements);
* **state** — every persistent component declared context/state-logged;
* **command** — every persistent component declared command-logged.

The observed force counts come from the recorded ProtocolTraces of a
live run, so the *message* column is a bound the run must respect
(TRC109), and the *state*/*command* columns are the planner's predicted
budgets for the same traffic had the runtime implemented those
strategies — the quantified saving PHX014 prices statically.

``benchmarks/bench_plan_forces.py`` asserts the shape (observed within
the message budget, server-durable budgets no looser); the full table
lands in EXPERIMENTS.md via ``python -m repro.bench`` (sessions scale
up under ``REPRO_BENCH_FULL=1``).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..analysis.model import ProgramModel, iter_py_files
from ..analysis.plan import (
    PlanConfig,
    build_plan,
    load_plan,
    span_accounting,
)
from ..apps.bookstore import BookBuyer, OptimizationLevel, deploy_bookstore
from ..apps.orderflow import deploy_orderflow
from .reporting import Cell, ExperimentTable

_APPS = Path(__file__).resolve().parents[1] / "apps"
_PLAN = Path(__file__).resolve().parents[3] / "plans" / "apps.logplan.json"

STRATEGY_ASSIGNMENTS = ("message", "state", "command")


def _plans() -> dict[str, object]:
    """The committed plan plus whole-app state/command reassignments."""
    committed = load_plan(_PLAN)
    model = ProgramModel.from_paths(list(iter_py_files([_APPS])))
    persistent = [
        entry["name"]
        for entry in committed.components
        if entry["type"] == "persistent"
    ]
    plans = {"message": committed}
    for strategy in ("state", "command"):
        plans[strategy] = build_plan(model, PlanConfig(
            overrides={name: strategy for name in persistent},
        ))
    return plans


def _run_bookstore(sessions: int):
    app = deploy_bookstore(level=OptimizationLevel.SPECIALIZED)
    buyer = BookBuyer(app)
    for __ in range(sessions):
        buyer.run_session(iterations=1)
    return app.runtime


def _run_orderflow(sessions: int):
    app = deploy_orderflow()
    for index in range(sessions):
        customer = f"customer-{index}"
        app.desk.place_order(customer, "widget", 2)
        app.desk.place_order(customer, "gadget", 1)
        app.desk.order_history(customer)
        order = app.desk.place_order(customer, "widget", 1)
        app.desk.cancel_order(customer, order["order_id"])
    return app.runtime


WORKLOADS = (
    ("bookstore", _run_bookstore),
    ("orderflow", _run_orderflow),
)


def plan_forces_comparison(sessions: int | None = None) -> ExperimentTable:
    if sessions is None:
        sessions = 8 if os.environ.get("REPRO_BENCH_FULL") else 2
    plans = _plans()
    table = ExperimentTable(
        key="plan_forces",
        title=(
            "Plan conformance: observed forces vs per-strategy budgets "
            f"({sessions} sessions)"
        ),
        columns=["observed", "message budget", "state budget",
                 "command budget"],
        precision=0,
    )
    for app_name, run in WORKLOADS:
        runtime = run(sessions)
        for process in sorted(
            runtime.processes(), key=lambda p: p.name
        ):
            trace = getattr(process, "protocol_trace", None)
            if trace is None:
                continue
            totals = {}
            observed = None
            for strategy in STRATEGY_ASSIGNMENTS:
                spans = span_accounting(
                    trace, plans[strategy], process.name
                )
                totals[strategy] = sum(s["limit"] for s in spans)
                if observed is None:
                    observed = sum(s["observed"] for s in spans)
            if not totals or observed is None:
                continue
            if all(total == 0 for total in totals.values()):
                continue  # no planned entry spans on this process
            table.add_row(
                f"{app_name}: {process.name}",
                Cell(observed, totals["message"]),
                Cell(totals["message"]),
                Cell(totals["state"]),
                Cell(totals["command"]),
            )
    table.notes.append(
        "'paper' in the observed column is the message budget the run "
        "must stay within (TRC109); the state/command columns price the "
        "same spans under whole-app strategy reassignment — the "
        "force reduction a server-durable runtime would realize, as "
        "PHX014 reports per component."
    )
    return table
