"""Ablations of individual design choices.

The paper motivates several small mechanisms with one-line cost
arguments; these experiments isolate each one:

* **reply-attachment omission** (Section 5.2.3) — "In our initial
  experiments, the costs were even higher since we sent attachments
  with all messages";
* **short records** (Algorithm 3) — a reply to an external client only
  needs "the fact that the message was sent", not its content;
* **force combining** (Section 3.1.1) — Algorithm 2's unforced receive
  logging "allows more opportunities to combine log forces from
  multiple components that share the same log";
* **log garbage collection** (extension) — checkpoints bound not just
  recovery time but also log size;
* **static type seeding** (extension) — warm-starting the Section 3.4
  remote component type table from statically verified declarations
  removes the cold-start conservatism on a process's first calls.
"""

from __future__ import annotations

from ..common.types import ComponentType
from ..core import (
    CheckpointConfig,
    PersistentComponent,
    PhoenixRuntime,
    RuntimeConfig,
    persistent,
)
from .harness import PersistentBatchClient, PingServer
from .reporting import Cell, ExperimentTable


# ----------------------------------------------------------------------
# Section 5.2.3: reply-attachment omission
# ----------------------------------------------------------------------
def attachment_omission_ablation(calls: int = 200) -> ExperimentTable:
    """Per-call cost of Persistent -> Functional with and without the
    'server omits its attachment when the client knows it' trick."""
    table = ExperimentTable(
        key="attachment_omission",
        title="Section 5.2.3 ablation: reply-attachment omission "
        "(Persistent -> Functional, ms/call)",
        columns=["ms per call"],
        precision=3,
    )
    from .harness import FunctionalPingServer

    for enabled in (True, False):
        config = RuntimeConfig.optimized(reply_attachment_omission=enabled)
        runtime = PhoenixRuntime(config=config)
        server_process = runtime.spawn_process("srv", machine="alpha")
        server = server_process.create_component(FunctionalPingServer)
        client_process = runtime.spawn_process("cli", machine="alpha")
        client = client_process.create_component(
            PersistentBatchClient, args=(server,)
        )
        client.batch(20)
        elapsed = client.batch(calls)
        label = "omission on" if enabled else "omission off"
        paper = 1.194 if enabled else None
        table.add_row(label, Cell(elapsed / calls, paper))
    table.notes.append(
        "the difference is one 0.5 ms attachment per reply — the cost "
        "the paper says made its initial numbers 'even higher'."
    )
    return table


# ----------------------------------------------------------------------
# Algorithm 3: short vs long reply records
# ----------------------------------------------------------------------
@persistent
class WideReplyServer(PersistentComponent):
    """Returns a deliberately bulky reply so record sizes matter."""

    def __init__(self):
        self.calls = 0

    def fetch(self, rows: int):
        self.calls += 1
        return [
            {"row": i, "payload": "x" * 64, "score": float(i)}
            for i in range(rows)
        ]


def short_record_ablation(calls: int = 50, rows: int = 20) -> ExperimentTable:
    """Bytes logged per external call with short message-2 records
    (optimized Algorithm 3) vs full ones (baseline Algorithm 1)."""
    table = ExperimentTable(
        key="short_records",
        title="Algorithm 3 ablation: short vs long reply records "
        "(bytes logged per external call)",
        columns=["bytes appended per call"],
        precision=0,
    )
    for label, optimized in (
        ("short records (Algorithm 3)", True),
        ("long records (Algorithm 1)", False),
    ):
        config = (
            RuntimeConfig.optimized()
            if optimized
            else RuntimeConfig.baseline()
        )
        runtime = PhoenixRuntime(config=config)
        runtime.external_client_machine = "alpha"
        process = runtime.spawn_process("srv", machine="beta")
        server = process.create_component(WideReplyServer)
        server.fetch(rows)
        before = process.log.stats.bytes_appended
        for __ in range(calls):
            server.fetch(rows)
        per_call = (process.log.stats.bytes_appended - before) / calls
        table.add_row(label, Cell(per_call))
    table.notes.append(
        "both variants force twice per call; the short record saves "
        "the reply payload bytes (here a ~20-row result set)."
    )
    return table


# ----------------------------------------------------------------------
# Section 3.1.1: force combining on a shared log
# ----------------------------------------------------------------------
@persistent
class ChainLink(PersistentComponent):
    """A link of an in-process call chain."""

    def __init__(self, next_link=None):
        self.next_link = next_link
        self.handled = 0

    def run(self, value):
        self.handled += 1
        if self.next_link is not None:
            return self.next_link.run(value) + 1
        return 1


def force_combining_ablation(
    depths: tuple = (1, 2, 4, 8), calls: int = 30
) -> ExperimentTable:
    """Disk writes per request for a chain of persistent components in
    ONE process (one shared log).  Algorithm 1 writes on every message
    of every hop (4d-2 for depth d, counting the external wrapper);
    Algorithm 2 piggybacks each hop's receive records on the next
    send-time force, halving the writes to 2d-1 at every depth."""
    table = ExperimentTable(
        key="force_combining",
        title="Section 3.1.1 ablation: force combining on a shared log "
        "(disk writes per request vs chain depth)",
        columns=["baseline", "optimized"],
        precision=1,
    )
    for depth in depths:
        writes = {}
        for optimized in (False, True):
            config = (
                RuntimeConfig.optimized()
                if optimized
                else RuntimeConfig.baseline()
            )
            runtime = PhoenixRuntime(config=config)
            runtime.external_client_machine = "alpha"
            process = runtime.spawn_process("chain", machine="beta")
            link = process.create_component(ChainLink)
            for __ in range(depth - 1):
                link = process.create_component(ChainLink, args=(link,))
            head = link
            head.run(0)  # warm up
            disk = runtime.cluster.machine("beta").disk
            before = disk.stats.writes
            for i in range(calls):
                head.run(i)
            writes[optimized] = (disk.stats.writes - before) / calls
        table.add_row(
            f"depth {depth}",
            Cell(writes[False], 4 * depth - 2),
            # a single-component "chain" still pays Algorithm 3's two
            # external-wrapper forces
            Cell(writes[True], max(2, 2 * depth - 1)),
        )
    table.notes.append(
        "'paper' columns are the analytic counts: Algorithm 1 forces "
        "every message (4d-2 writes for depth d, external wrapper "
        "included); Algorithm 2 rides each receive record on the next "
        "send's force (2d-1) — a 2x saving at every depth."
    )
    return table


# ----------------------------------------------------------------------
# extension: log growth with and without garbage collection
# ----------------------------------------------------------------------
def log_gc_ablation(calls: int = 200) -> ExperimentTable:
    """Stable log size after a long run, with and without checkpoint-
    driven prefix truncation."""
    table = ExperimentTable(
        key="log_gc",
        title="Extension ablation: log size after a long run "
        "(bytes, lower is better)",
        columns=["stable log bytes", "bytes reclaimed"],
        precision=0,
    )
    for label, truncate in (("gc off", False), ("gc on", True)):
        config = RuntimeConfig.optimized(
            checkpoint=CheckpointConfig(
                context_state_every_n_calls=25,
                process_checkpoint_every_n_saves=1,
                truncate_log=truncate,
            )
        )
        runtime = PhoenixRuntime(config=config)
        runtime.external_client_machine = "alpha"
        process = runtime.spawn_process("svc", machine="beta")
        server = process.create_component(PingServer)
        for i in range(calls):
            server.ping(i)
        table.add_row(
            label,
            Cell(process.log.stable_lsn - process.log.base_lsn),
            Cell(process.log.stats.bytes_reclaimed),
        )
    table.notes.append(
        "recovery from the truncated log is exercised separately in "
        "tests/log/test_log_gc.py."
    )
    return table


# ----------------------------------------------------------------------
# extension: static type seeding (warm-starting Section 3.4's table)
# ----------------------------------------------------------------------
def static_type_seeding_ablation() -> ExperimentTable:
    """Cold-start cost of the split-tier orderflow deployment with and
    without seeding the remote component type table from the statically
    verified declarations (``config.static_type_seeding``).

    The metrics are the three places cold-start conservatism shows up
    before the first reply from each server has taught its type:
    force *requests* (Algorithm 2 must request a force before calling
    an unknown-type server; a read-only or functional peer needs none),
    unknown-peer outgoing calls in the protocol trace, and log bytes
    (sender attachments are omitted once the receiver is known)."""
    from ..apps.orderflow import deploy_orderflow
    from ..common.messages import MessageKind

    def unknown_peer_calls(trace) -> int:
        return sum(
            1
            for event in trace.events()
            if event.kind is MessageKind.OUTGOING_CALL
            and event.peer_type is None
        )

    table = ExperimentTable(
        key="static_type_seeding",
        title="Extension ablation: static type seeding "
        "(orderflow split tier, one cold order + queries)",
        columns=[
            "force requests", "unknown-peer calls", "log bytes appended"
        ],
        precision=0,
    )
    replies = {}
    for enabled in (False, True):
        config = RuntimeConfig.optimized(static_type_seeding=enabled)
        runtime = PhoenixRuntime(config=config)
        runtime.external_client_machine = "gamma"
        app = deploy_orderflow(runtime=runtime, split_backend=True)
        replies[enabled] = [
            app.desk.place_order("ada", "widget", 3),
            app.desk.order_history("ada"),
            app.desk.rejected_count(),
        ]
        processes = [
            app.desk_process, app.backend_process, app.ledger_process
        ]
        table.add_row(
            "seeding on" if enabled else "seeding off",
            Cell(sum(
                process.log.stats.forces_requested for process in processes
            )),
            Cell(sum(
                unknown_peer_calls(process.protocol_trace)
                for process in processes
            )),
            Cell(sum(
                process.log.stats.bytes_appended for process in processes
            )),
        )
    assert replies[False] == replies[True], (
        "static type seeding must not change application results"
    )
    table.notes.append(
        "forces *performed* are identical — the removed requests hit "
        "already-empty buffers on this workload — but each request the "
        "seed avoids is a potential synchronous disk write on a busier "
        "log, and the byte saving (omitted sender attachments) is real "
        "from the first message."
    )
    return table
