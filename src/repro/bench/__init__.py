"""Benchmark harness regenerating the paper's evaluation section."""

from .ablations import (
    attachment_omission_ablation,
    force_combining_ablation,
    log_gc_ablation,
    short_record_ablation,
    static_type_seeding_ablation,
)
from .checkpoint_sweep import checkpoint_interval_sweep
from .comparison import queue_comparison

from .experiments import (
    ALL_EXPERIMENTS,
    figure9,
    multicall_ablation,
    recovery_empty_log,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .plan_forces import plan_forces_comparison
from .harness import (
    CLIENT_KINDS,
    SERVER_KINDS,
    MicrobenchResult,
    run_pair,
)
from .reporting import Cell, ExperimentTable

__all__ = [
    "ALL_EXPERIMENTS",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "figure9",
    "multicall_ablation",
    "queue_comparison",
    "plan_forces_comparison",
    "checkpoint_interval_sweep",
    "attachment_omission_ablation",
    "short_record_ablation",
    "force_combining_ablation",
    "log_gc_ablation",
    "static_type_seeding_ablation",
    "recovery_empty_log",
    "run_pair",
    "MicrobenchResult",
    "CLIENT_KINDS",
    "SERVER_KINDS",
    "Cell",
    "ExperimentTable",
]
