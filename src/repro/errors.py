"""Exception hierarchy for the Phoenix/App reproduction.

The paper distinguishes two classes of outgoing-call exceptions
(Section 2.4): *recognized* exceptions that indicate a component failure
(the interceptor waits and retries with the same method call ID), and
application errors that indicate a problem with the call itself while the
remote component remains alive (no retry).

Everything raised by this library derives from :class:`PhoenixError`.
"""

from __future__ import annotations


class PhoenixError(Exception):
    """Base class for all errors raised by the Phoenix/App runtime."""


class ConfigurationError(PhoenixError):
    """The runtime or a component was configured inconsistently."""


class DeploymentError(PhoenixError):
    """A component could not be created or placed in a context."""


class SerializationError(PhoenixError):
    """A value could not be marshalled into, or out of, a log record."""


class LogCorruptionError(PhoenixError):
    """A log record failed its integrity check (outside the torn tail)."""


class UnknownComponentClassError(PhoenixError):
    """Recovery found a creation record for an unregistered class."""


class ComponentUnavailableError(PhoenixError):
    """A *recognized* failure exception (paper Section 2.4).

    Raised when a method call targets a component whose hosting process or
    context has crashed.  Message interceptors treat this as a component
    failure: they wait and retry the call with the same method call ID
    (condition 4 of Section 2.2).
    """

    def __init__(self, uri: str, reason: str = "process crashed"):
        super().__init__(f"component {uri} unavailable: {reason}")
        self.uri = uri
        self.reason = reason


class RetriesExhaustedError(PhoenixError):
    """A persistent caller gave up retrying an outgoing call."""

    def __init__(self, uri: str, attempts: int):
        super().__init__(
            f"call to {uri} failed after {attempts} attempts"
        )
        self.uri = uri
        self.attempts = attempts


class ApplicationError(PhoenixError):
    """A non-failure exception raised by application code.

    The paper notes that not all exceptions indicate failures — e.g. an
    invalid-argument exception is an error, but the remote component is
    still alive.  These exceptions propagate to the caller without any
    retry and without marking the component failed.
    """

    def __init__(self, message: str, original_type: str = ""):
        super().__init__(message)
        self.original_type = original_type


class InvariantViolationError(PhoenixError):
    """An internal consistency check failed (a bug, not a user error)."""


class RecoveryError(PhoenixError):
    """Recovery could not restore a process or context from its log."""


class PartialWriteError(PhoenixError):
    """A stable-store append persisted only a prefix of its payload.

    Models the torn write of a crash that lands mid-``write``: the bytes
    up to the cut are durable, the rest never reached the platter.  Fault
    injection arms this one write at a time
    (:meth:`repro.sim.stable_store.StableFile.arm_partial_write`).
    """

    def __init__(self, name: str, persisted: int, requested: int):
        super().__init__(
            f"partial write to {name!r}: {persisted} of {requested} "
            "bytes persisted"
        )
        self.name = name
        self.persisted = persisted
        self.requested = requested


class CrashSignal(BaseException):
    """Internal control-flow signal raised at an injected crash point.

    Derives from :class:`BaseException` so application ``except Exception``
    handlers inside component methods cannot accidentally swallow a
    simulated crash.  It is translated into
    :class:`ComponentUnavailableError` at the context boundary of the
    crashed process and never escapes the runtime.
    """

    def __init__(self, process_name: str, point: str):
        super().__init__(f"injected crash of {process_name} at {point}")
        self.process_name = process_name
        self.point = point
