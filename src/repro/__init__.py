"""repro — a reproduction of Barga, Chen & Lomet,
"Improving Logging and Recovery Performance in Phoenix/App" (ICDE 2004).

Phoenix/App makes stateful application components persistent across
crashes by transparently intercepting and logging their messages, and
recovers them by replay.  This package implements the whole system on a
deterministic simulation substrate:

* :mod:`repro.sim` — simulated clock, rotational disk (the paper's
  Figure 9 mechanism), network and machines;
* :mod:`repro.log` — a real binary log with CRC framing;
* :mod:`repro.core` — components, contexts, interceptors, the logging
  algorithms (baseline Algorithm 1 and the paper's Algorithms 2-5 plus
  the Section 3.5 multi-call optimization), processes and the runtime;
* :mod:`repro.checkpoint` — context state records and process
  checkpoints (Section 4);
* :mod:`repro.recovery` — crash injection, the per-machine recovery
  service, and two-pass recovery;
* :mod:`repro.apps.bookstore` — the paper's online bookstore
  application (Section 5.5);
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the evaluation.

Quickstart::

    from repro import PhoenixRuntime, PersistentComponent, persistent

    @persistent
    class Counter(PersistentComponent):
        def __init__(self):
            self.count = 0
        def increment(self, by=1):
            self.count += by
            return self.count

    runtime = PhoenixRuntime()
    process = runtime.spawn_process("svc", machine="alpha")
    counter = process.create_component(Counter)
    counter.increment(5)            # logged, exactly-once
    runtime.crash_process(process)  # kill it
    assert counter.increment(1) == 6  # transparently recovered
"""

from .core import (
    AppProcess,
    CheckpointConfig,
    ComponentProxy,
    ComponentType,
    Context,
    GlobalCallId,
    PersistentComponent,
    PhoenixRuntime,
    ProcessState,
    RuntimeConfig,
    SubordinateHandle,
    functional,
    persistent,
    read_only,
    read_only_method,
    subordinate,
)
from .errors import (
    ApplicationError,
    ComponentUnavailableError,
    ConfigurationError,
    DeploymentError,
    InvariantViolationError,
    LogCorruptionError,
    PhoenixError,
    RecoveryError,
    RetriesExhaustedError,
    SerializationError,
    UnknownComponentClassError,
)
from .recovery import CrashInjector
from .sim import Cluster, CostModel, DiskGeometry

__version__ = "0.1.0"

__all__ = [
    "PhoenixRuntime",
    "AppProcess",
    "ProcessState",
    "RuntimeConfig",
    "CheckpointConfig",
    "PersistentComponent",
    "SubordinateHandle",
    "ComponentProxy",
    "ComponentType",
    "Context",
    "GlobalCallId",
    "persistent",
    "subordinate",
    "functional",
    "read_only",
    "read_only_method",
    "Cluster",
    "CostModel",
    "DiskGeometry",
    "CrashInjector",
    "PhoenixError",
    "ApplicationError",
    "ComponentUnavailableError",
    "ConfigurationError",
    "DeploymentError",
    "InvariantViolationError",
    "LogCorruptionError",
    "RecoveryError",
    "RetriesExhaustedError",
    "SerializationError",
    "UnknownComponentClassError",
    "__version__",
]
