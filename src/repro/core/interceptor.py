"""Message interceptors.

Paper Figure 3: an interceptor sits at each context boundary and sees
all four message kinds.  The server side handles incoming calls
(duplicate detection, logging per the active algorithm, invoking the
method, last-call bookkeeping, reply construction, optional context
state saving); the client side builds outgoing calls (deterministic call
IDs, type attachments), applies the outgoing logging algorithm, and
learns remote component types from replies.

During recovery the same interceptor runs in *replay* mode (Figure 5):
incoming calls are re-invoked from log records and outgoing calls are
suppressed, answered from the logged replies, until the log runs dry and
execution goes live.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from ..common.ids import GlobalCallId
from ..common.messages import (
    MethodCallMessage,
    ReplyMessage,
    SenderInfo,
)
from ..common.types import ComponentType
from ..errors import (
    ApplicationError,
    ConfigurationError,
    InvariantViolationError,
)
from ..log.records import LastCallReplyRecord, MessageRecord
from .attributes import is_read_only_method
from .last_call import LastCallEntry
from .swizzle import swizzle_for_message, unswizzle_for_message
from .tables import NO_LSN

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context


class ReplayOutcome(enum.Enum):
    """What the replay check decided for an outgoing call."""

    SUPPRESSED = "suppressed"  # answered from the log
    EXECUTE_SILENT = "execute_silent"  # never logged (functional): re-run
    GO_LIVE = "go_live"  # log exhausted: resume normal execution


class MessageInterceptor:
    """Both halves (client and server) of one context's interceptor."""

    def __init__(self, context: "Context"):
        self.context = context

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @property
    def _process(self):
        return self.context.process

    @property
    def _runtime(self):
        return self.context.runtime

    @property
    def _policy(self):
        return self._process.policy

    @property
    def _costs(self):
        return self._runtime.costs

    def _charge(self, cost: float) -> None:
        if cost:
            self._runtime.clock.advance(cost)

    @staticmethod
    def client_type_of(message: MethodCallMessage) -> ComponentType:
        """Infer the caller's type (paper Section 2.3: a missing ID means
        the caller is external; Section 3.4: attachments carry types)."""
        if message.sender is not None:
            return message.sender.component_type
        if message.call_id is not None:
            return ComponentType.PERSISTENT  # conservative
        return ComponentType.EXTERNAL

    # ==================================================================
    # server side
    # ==================================================================
    def handle_incoming(self, message: MethodCallMessage) -> ReplyMessage:
        """The full server-side pipeline for one incoming call."""
        context = self.context
        runtime = self._runtime
        if context.install_interceptors:
            self._charge(self._costs.interception_overhead)

        client_type = self.client_type_of(message)
        method_read_only = is_read_only_method(
            type(context.parent), message.method
        )
        # The authoritative read-only flag is the server-side attribute;
        # only persistent-family callers benefit from Algorithm 5 (an
        # external caller gets Algorithm 3 regardless).
        ro_call = method_read_only and client_type.is_persistent_family

        runtime.fire_hook("incoming.before_log", self._process, context)

        # Stateless components keep no last-call tables (Section 3.2.3),
        # and read-only calls need no duplicate detection — they change
        # no state.
        dedup = (
            context.component_type.is_persistent_family
            and message.call_id is not None
            and client_type.is_persistent_family
            and not ro_call
        )
        if dedup:
            self._charge(self._costs.dedup_check)
            entry = self._process.last_calls.check_incoming(message.call_id)
            if entry is not None:
                return self._stored_reply(entry, message)

        self._policy.on_incoming_call(
            context, message, client_type, method_read_only
        )
        runtime.fire_hook("incoming.after_log", self._process, context)

        entry = None
        if dedup:
            entry = self._process.last_calls.begin_call(
                message.call_id, context.context_id
            )
            self._charge(self._costs.last_call_update)

        reply = self._execute(message)

        if entry is not None:
            self._process.last_calls.record_reply(message.call_id, reply)
            self._charge(self._costs.last_call_update)

        context.end_incoming()

        # Section 4.2: a state save happens after processing, before the
        # reply leaves; the reply-send force then flushes it for free.
        self._process.maybe_save_context_state(context)

        send_decision = self._policy.on_reply_send(
            context, reply, client_type, method_read_only
        )
        if entry is not None and send_decision.record_lsn != NO_LSN:
            entry.reply_lsn = send_decision.record_lsn

        runtime.fire_hook("reply.before_send", self._process, context)
        return reply

    def _execute(self, message: MethodCallMessage) -> ReplyMessage:
        """Invoke the parent component's method and build the reply."""
        context = self.context
        runtime = self._runtime
        context.begin_incoming(message)
        runtime.push_context(context)
        try:
            runtime.fire_hook("method.before", self._process, context)
            value: object = None
            failure: Exception | None = None
            try:
                bound = getattr(context.parent, message.method)
                args = unswizzle_for_message(message.args, runtime)
                kwargs = dict(unswizzle_for_message(message.kwargs, runtime))
                value = bound(*args, **kwargs)
            except ApplicationError as exc:
                failure = exc
            except Exception as exc:  # app bug, not a component failure
                failure = exc
            runtime.fire_hook("method.after", self._process, context)
            return self._build_reply(message, value, failure)
        except BaseException:
            # A crash signal (this process's or a caller further down the
            # stack) is unwinding through this serving frame.  The frame
            # is dead: restore the context's serving invariants so the
            # retried call is not mistaken for re-entrancy, and pop the
            # execution stack so the caller's next outgoing call is not
            # attributed to this crashed context.
            context.abort_incoming()
            # If this process *survives* the unwind (the signal belongs
            # to a dead caller), the call's last-call entry would stay
            # in_progress forever and the recovered caller's retry of
            # the same call ID would be rejected as a duplicate of a
            # still-executing call.  Drop it so the retry runs as new.
            # (A crash of this process wipes the whole table anyway.)
            if message.call_id is not None:
                self._process.last_calls.abort_call(message.call_id)
            raise
        finally:
            runtime.pop_context()

    def _build_reply(
        self,
        message: MethodCallMessage,
        value: object,
        failure: Exception | None,
    ) -> ReplyMessage:
        context = self.context
        attach = self._should_attach_reply(message)
        sender = None
        if attach:
            sender = SenderInfo(
                component_type=context.component_type,
                component_uri=context.uri,
            )
            self._charge(self._costs.type_attachment_cost)
        method_read_only = is_read_only_method(
            type(context.parent), message.method
        )
        if failure is not None:
            return ReplyMessage(
                call_id=message.call_id,
                is_exception=True,
                exception_message=f"{type(failure).__name__}: {failure}",
                sender=sender,
                method_read_only=method_read_only,
            )
        return ReplyMessage(
            call_id=message.call_id,
            value=swizzle_for_message(value),
            sender=sender,
            method_read_only=method_read_only,
        )

    def _should_attach_reply(self, message: MethodCallMessage) -> bool:
        """Section 5.2.3: omit the reply attachment when the caller said
        it already knows this server."""
        if message.sender is None:
            return False  # external callers ignore attachments
        if not self._process.config.reply_attachment_omission:
            return True
        return not message.sender.knows_receiver

    def _stored_reply(
        self, entry: LastCallEntry, message: MethodCallMessage
    ) -> ReplyMessage:
        """Answer a duplicate call from the last-call table
        (condition 3)."""
        if entry.in_progress:
            raise InvariantViolationError(
                f"duplicate of {entry.call_id} arrived while the original "
                "is still executing in a single-threaded context"
            )
        reply = entry.reply
        if reply is None:
            reply = self._read_logged_reply(
                entry.reply_lsn, entry.context_id
            )
            entry.reply = reply
        return reply

    def _read_logged_reply(
        self, reply_lsn: int, context_id: int = NO_LSN
    ) -> ReplyMessage:
        if reply_lsn == NO_LSN:
            raise InvariantViolationError(
                "last-call entry has neither an in-memory reply nor a "
                "reply LSN"
            )
        # Reply records live on the serving context's stream (stream 0
        # when the entry predates stream attribution or the flag is off).
        log = self._process.log_for(
            None if context_id == NO_LSN else context_id
        )
        record = log.read_record(reply_lsn)
        if isinstance(record, LastCallReplyRecord):
            return record.reply
        if isinstance(record, MessageRecord) and isinstance(
            record.message, ReplyMessage
        ):
            return record.message
        raise InvariantViolationError(
            f"record at LSN {reply_lsn} is not a reply"
        )

    # ==================================================================
    # client side
    # ==================================================================
    def prepare_outgoing(
        self,
        target_uri: str,
        method: str,
        args: tuple,
        kwargs: dict | None = None,
    ) -> tuple[MethodCallMessage, ComponentType | None, bool]:
        """Build the outgoing call message (message 3).

        Persistent-family callers always consume a deterministic call ID
        (condition 2) — even for calls to functional or read-only
        servers — so replayed executions regenerate identical IDs
        regardless of what the (volatile) type table happened to know.
        Returns (message, known server type, known method-read-only).
        """
        context = self.context
        remote_types = self._process.remote_types
        if (
            self._process.config.static_type_seeding
            and not remote_types.knows(target_uri)
        ):
            # Warm start: adopt the statically verified declared type
            # instead of Section 3.4's conservative first-call handling.
            seeded = self._process.runtime.static_type_for(target_uri)
            if seeded is not None:
                remote_types.seed(
                    target_uri, seeded[0], read_only_methods=seeded[1]
                )
        server_type = remote_types.known_type(target_uri)
        method_ro = remote_types.method_read_only(target_uri, method)

        if (
            context.component_type is ComponentType.FUNCTIONAL
            and server_type not in (None, ComponentType.FUNCTIONAL)
        ):
            raise ConfigurationError(
                f"functional component {context.uri} may only call "
                f"functional components, not {server_type.value} "
                f"{target_uri}"
            )

        call_id = None
        if context.component_type.is_persistent_family:
            call_id = context.allocate_call_id()

        # Type attachments belong to the optimized system (Section 3.4);
        # the baseline predates component types and sends plain messages.
        sender = None
        if self._process.config.optimized_logging:
            sender = SenderInfo(
                component_type=context.component_type,
                component_uri=context.uri,
                knows_receiver=server_type is not None,
            )
        if not context.replaying:
            if sender is not None:
                self._charge(self._costs.type_attachment_cost)
            if context.install_interceptors:
                self._charge(self._costs.interception_overhead)

        message = MethodCallMessage(
            target_uri=target_uri,
            method=method,
            args=swizzle_for_message(args),
            kwargs=swizzle_for_message(
                MethodCallMessage.pack_kwargs(kwargs or {})
            ),
            call_id=call_id,
            sender=sender,
            method_read_only=bool(method_ro),
        )
        return message, server_type, bool(method_ro)

    def on_outgoing(
        self,
        message: MethodCallMessage,
        server_type: ComponentType | None,
        method_ro: bool,
    ) -> None:
        """Client-side logging for message 3."""
        runtime = self._runtime
        runtime.fire_hook("outgoing.before_log", self._process, self.context)
        self._policy.on_outgoing_call(
            self.context, message, server_type, method_ro
        )
        runtime.fire_hook("outgoing.before_send", self._process, self.context)

    def check_replay(
        self, message: MethodCallMessage
    ) -> tuple[ReplayOutcome, ReplyMessage | None]:
        """Decide how an outgoing call behaves during replay.

        The replay queue holds this context's logged message-4 records in
        log order.  Three cases:

        * the head matches this call's ID — suppress the call and answer
          from the log;
        * the head (or an empty-but-not-exhausted queue) is *ahead* of
          this call — this call's reply was deliberately never logged
          (a functional server, Algorithm 4); re-execute it silently,
          which is safe because functional calls are pure;
        * the queue is exhausted — the log has run dry; recovery is
          complete up to the failure point and execution goes live.
        """
        context = self.context
        if message.call_id is None:
            raise InvariantViolationError(
                "replaying context issued an outgoing call without an ID"
            )
        while context.replay_replies:
            head = context.replay_replies[0]
            if head.call_id == message.call_id:
                context.replay_replies.popleft()
                self.learn_from_reply(message, head)
                return ReplayOutcome.SUPPRESSED, head
            if head.call_id is None or head.call_id.seq > message.call_id.seq:
                return ReplayOutcome.EXECUTE_SILENT, None
            # A stale buffered reply (an older suppressed call that the
            # re-execution skipped) cannot occur for deterministic
            # components; surface it rather than guessing.
            raise InvariantViolationError(
                f"replay expected reply for {message.call_id} but found "
                f"{head.call_id}; component is not replaying "
                "deterministically"
            )
        context.leave_replay()
        return ReplayOutcome.GO_LIVE, None

    def on_reply_received(
        self, message: MethodCallMessage, reply: ReplyMessage
    ) -> object:
        """Client-side handling of message 4: learn types, log per the
        algorithm, surface the value (or application error)."""
        runtime = self._runtime
        self.learn_from_reply(message, reply)
        remote_types = self._process.remote_types
        server_type = remote_types.known_type(message.target_uri)
        method_ro = bool(
            remote_types.method_read_only(message.target_uri, message.method)
        )
        runtime.fire_hook(
            "reply_received.before_log", self._process, self.context
        )
        self._policy.on_reply_from_outgoing(
            self.context, reply, server_type, method_ro
        )
        runtime.fire_hook(
            "reply_received.after_log", self._process, self.context
        )
        return self.reply_value(reply)

    def reply_value(self, reply: ReplyMessage) -> object:
        if reply.is_exception:
            raise ApplicationError(
                reply.exception_message,
                original_type=reply.exception_message.split(":", 1)[0],
            )
        return unswizzle_for_message(reply.value, self._runtime)

    def learn_from_reply(
        self, message: MethodCallMessage, reply: ReplyMessage
    ) -> None:
        """Record what a reply teaches about the server (Section 3.4)."""
        remote_types = self._process.remote_types
        if reply.sender is not None:
            remote_types.learn(
                message.target_uri,
                reply.sender.component_type,
                method=message.method,
                method_read_only=reply.method_read_only,
            )
        elif remote_types.knows(message.target_uri):
            known = remote_types.known_type(message.target_uri)
            remote_types.learn(
                message.target_uri,
                known,
                method=message.method,
                method_read_only=reply.method_read_only,
            )
        learned = remote_types.known_type(message.target_uri)
        if (
            self.context.component_type is ComponentType.FUNCTIONAL
            and learned is not None
            and learned is not ComponentType.FUNCTIONAL
        ):
            raise ConfigurationError(
                f"functional component {self.context.uri} called "
                f"{learned.value} component {message.target_uri}"
            )

    # ==================================================================
    # replay entry point (used by the recovery manager)
    # ==================================================================
    def invoke_for_replay(self, message: MethodCallMessage) -> ReplyMessage:
        """Re-invoke a logged incoming call (Figure 5).

        No dedup, no message-1 logging (the record being replayed *is*
        the log); last-call bookkeeping is rebuilt so a client retry
        after recovery finds its reply (conditions 3 and 5)."""
        context = self.context
        self._charge(self._costs.replay_per_call)
        client_type = self.client_type_of(message)
        method_read_only = is_read_only_method(
            type(context.parent), message.method
        )
        track = (
            message.call_id is not None
            and client_type.is_persistent_family
            and not method_read_only
        )
        entry = None
        if track:
            # Replay runs in log order per context, but the process-wide
            # table holds one entry per caller: another context's restore
            # may already have seeded a *newer* call from this caller.
            # Replaying an older call must rebuild state without
            # regressing that entry — the caller has moved past this
            # call, so only the newer reply can still be retried.
            existing = self._process.last_calls.lookup(
                message.call_id.caller_key
            )
            if existing is None or existing.call_id.seq <= message.call_id.seq:
                entry = self._process.last_calls.begin_call(
                    message.call_id, context.context_id
                )
        reply = self._execute(message)
        if entry is not None:
            self._process.last_calls.record_reply(message.call_id, reply)
        context.end_incoming()
        return reply
