"""Application processes.

Paper Section 4.1 / Figure 7: a process hosts multiple contexts, a set
of global tables (context, component, remote-component, last-call), a
log manager and a recovery manager.  At start it registers with its
machine's recovery service to obtain a stable logical process ID (part
of every method-call ID).

A simulated crash (:meth:`crash`) wipes everything volatile — contexts,
component instances, tables, and the log manager's buffer — leaving only
the stable log, exactly the state a killed OS process leaves behind.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from ..analysis.trace import ProtocolTrace
from ..common.ids import component_uri
from ..common.types import ComponentType
from ..errors import (
    ComponentUnavailableError,
    ConfigurationError,
    DeploymentError,
)
from ..faults import plane as faultplane
from ..log.log_manager import LogManager
from ..log.records import CreationRecord
from ..log.sharding import LogStream, ShardRouter
from .attributes import declared_type, read_only_method_names
from .component import PersistentComponent
from .config import RuntimeConfig
from .context import SUB_LID_BASE, Context
from .last_call import LastCallTable
from .policy import LoggingPolicy
from .proxy import ComponentProxy
from .remote_types import RemoteComponentTypeTable
from .swizzle import swizzle_for_message, unswizzle_for_message
from .tables import ComponentTableEntry, ContextTableEntry, NO_LSN

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine
    from .runtime import PhoenixRuntime


class ProcessState(enum.Enum):
    RUNNING = "running"
    CRASHED = "crashed"
    RECOVERING = "recovering"


class ForceCoalescer:
    """Force requests satisfied by a shared (or same-instant) write.

    Several protocol sites can request a force at the same simulated
    instant — e.g. a multicall's per-callee forces, or Algorithm 2
    forcing "all previous messages" for components that share one log.
    Only the first request finds buffered bytes and pays a disk write;
    the rest ride along for free.  This wrapper counts those free rides
    as ``LogStats.coalesced_forces``.

    With ``config.group_commit`` on *and* the deterministic scheduler
    active, the coalescer additionally performs real group commit:
    force requests from concurrent sessions arriving within one disk-
    rotation window block on a shared :class:`GroupCommitBatch` and are
    satisfied by one stable write (performed by the batch leader via
    :meth:`execute_batch`).  With the flag off — or outside a scheduler
    run — every request takes the serial path unchanged, so
    ``forces_requested`` and ``forces_performed`` reproduce the paper's
    force counts exactly.
    """

    def __init__(self, log: LogManager, clock, process=None) -> None:
        self._log = log
        self._clock = clock
        self.process = process
        self._last_write_at: float | None = None

    @property
    def log_name(self) -> str:
        return self._log.process_name

    @property
    def stable_lsn(self) -> int:
        return self._log.stable_lsn

    @property
    def end_lsn(self) -> int:
        return self._log.end_lsn

    @property
    def pipelined(self) -> bool:
        process = self.process
        return process is not None and process.config.pipelined_commit

    def force(self, commit_lsn: int | None = None) -> bool:
        scheduler = self._group_scheduler()
        if scheduler is None:
            return self.serial_force()
        if self._log.stable_lsn == self._log.end_lsn:
            # Nothing buffered: the force is free either way; don't hold
            # the session in a window for it.
            return self.serial_force()
        if (
            self.pipelined
            and commit_lsn is not None
            and self._log.stable_lsn >= commit_lsn
        ):
            # Causally-gated send: the requester's whole causal prefix
            # is already durable (another session's force flushed it),
            # so Algorithm 2's "force all previous" is satisfied for
            # everything this send could depend on — release it without
            # a write or a window wait.  Volatile bytes above the target
            # belong to causally unrelated sessions (TRC107's slack).
            self.note_gated()
            return False
        return scheduler.group_force(self, commit_lsn)

    def note_gated(self) -> None:
        """Account one force request satisfied by causal gating: it
        never reaches :meth:`LogManager.force`."""
        stats = self._log.stats
        stats.forces_requested += 1
        stats.pipelined_gated += 1

    def note_write_skip(self, waiters: int) -> None:
        """Account a closed batch whose shared write was elided because
        an earlier in-flight write covered every remaining target."""
        stats = self._log.stats
        stats.forces_requested += waiters
        stats.pipelined_gated += waiters
        stats.pipelined_write_skips += 1

    def serial_force(self) -> bool:
        wrote = self._log.force()
        now = self._clock.now
        if wrote:
            self._last_write_at = now
        elif self._last_write_at == now:
            self._log.stats.coalesced_forces += 1
        return wrote

    def execute_batch(self, riders: int) -> bool:
        """The batch leader's shared write: one flush covers every
        rider's bytes.  Riders' requests are accounted as requested and
        coalesced — they never reach :meth:`LogManager.force`."""
        stats = self._log.stats
        stats.group_commit_batches += 1
        stats.group_commit_riders += riders
        stats.forces_requested += riders
        stats.coalesced_forces += riders
        return self.serial_force()

    def group_window_ms(self) -> float:
        override = self.process.config.group_commit_window_ms
        if override is not None:
            return override
        return self.process.machine.disk.group_commit_window_ms

    def reset(self) -> None:
        """Forget the last write.  Called on crash and on restart: the
        pre-crash write instant must not survive into the recovered
        incarnation, or a same-instant empty force after recovery would
        be miscounted as coalesced.  The pipelined batch counters are
        clamped the same way: they count gating decisions taken against
        watermarks the crash wiped, and the recovered incarnation's
        history starts empty."""
        self._last_write_at = None
        stats = self._log.stats
        stats.pipelined_gated = 0
        stats.pipelined_write_skips = 0

    def _group_scheduler(self):
        process = self.process
        if process is None or not (
            process.config.group_commit or process.config.pipelined_commit
        ):
            return None
        if process.state is not ProcessState.RUNNING:
            # Recovery's own forces never batch: a window wait inside
            # replay would distort recovery timing for no sharing.
            return None
        if process.pending_recovery is not None:
            # Same rationale while on-demand replay is still draining —
            # lazy/background replay forces must not sit in a window.
            return None
        scheduler = process.runtime.scheduler
        if scheduler is None or not scheduler.active:
            return None
        return scheduler


class AppProcess:
    """A process hosting Phoenix/App contexts."""

    def __init__(
        self,
        runtime: "PhoenixRuntime",
        machine: "Machine",
        name: str,
    ):
        self.runtime = runtime
        self.machine = machine
        self.name = name
        self.config: RuntimeConfig = runtime.config
        self.policy = LoggingPolicy(self.config)
        self.state = ProcessState.RUNNING

        # Registration with the machine's recovery service assigns the
        # stable logical PID and force-writes the registration (2.4).
        self.logical_pid = machine.recovery_service.register(self)

        self.log = LogManager(
            f"{machine.name}-{name}", machine.disk, machine.stable_store
        )
        self.force_coalescer = ForceCoalescer(
            self.log, runtime.clock, process=self
        )
        # Observation-only journal of logging decisions; the conformance
        # checker (repro.analysis) replays it against the stable stream.
        self.protocol_trace = ProtocolTrace()

        # Log streams (ROADMAP item 1; docs/internals.md section 16).
        # Stream 0 IS the legacy log/coalescer/trace — the flag-off
        # runtime routes every record through the exact objects above.
        # With ``config.sharded_logging`` on and a committed plan
        # installed, each plan shard hosted here gets its own stream
        # (distinct name -> distinct files, watermarks, fault sites) and
        # records route by their context's planned shard.
        self.streams: list[LogStream] = [
            LogStream(
                None, self.log, self.force_coalescer, self.protocol_trace
            )
        ]
        #: context_id -> stream index; only non-zero assignments stored.
        #: Rebuilt by recovery from the per-stream scans, so it never
        #: needs to survive a crash.
        self._context_stream: dict[int, int] = {}
        self.shard_router: ShardRouter | None = None
        if self.config.sharded_logging:
            plan = runtime.log_plan
            if plan is not None:
                self.shard_router = ShardRouter(plan, name)
                for shard_id in self.shard_router.shard_ids:
                    log = LogManager(
                        f"{self.log.process_name}@{shard_id}",
                        machine.disk,
                        machine.stable_store,
                    )
                    self.streams.append(LogStream(
                        shard_id,
                        log,
                        ForceCoalescer(log, runtime.clock, process=self),
                        ProtocolTrace(),
                    ))

        self.context_table: dict[int, ContextTableEntry] = {}
        self.component_table: dict[int, ComponentTableEntry] = {}
        self.last_calls = LastCallTable()
        self.remote_types = RemoteComponentTypeTable()

        self._next_component_lid = 1
        self._state_saves = 0
        self._pending_checkpoint: tuple[int, int] | None = None  # (begin, end)
        self.crash_count = 0
        self.recovery_count = 0
        # The recovery manager driving this process's replay, while one
        # is active; the runtime uses it to drain a context's pending
        # replay before delivering a live call to it.
        self.active_recovery = None
        # The per-component recovery watermark table, while on-demand
        # recovery has admitted this process with replay still owed
        # (repro.recovery.incremental.PendingRecovery); None once every
        # component is recovered — and cleared by a fresh crash.
        self.pending_recovery = None

        machine.register_process(self)

    # ------------------------------------------------------------------
    # stream routing (docs/internals.md section 16)
    # ------------------------------------------------------------------
    def stream_index(self, context_id: int | None) -> int:
        """The stream a context's records live on.  Unplanned contexts,
        checkpoint control records (``context_id == -1``) and the whole
        flag-off runtime resolve to stream 0; subordinate LIDs follow
        their parent context (the plan's affinity edges never split a
        context across shards)."""
        if len(self.streams) == 1 or context_id is None or context_id < 0:
            return 0
        if context_id >= SUB_LID_BASE:
            context_id //= SUB_LID_BASE
        return self._context_stream.get(context_id, 0)

    def stream_for(self, context_id: int | None) -> LogStream:
        return self.streams[self.stream_index(context_id)]

    def log_for(self, context_id: int | None) -> LogManager:
        return self.stream_for(context_id).log

    def assign_stream(self, context_id: int, index: int) -> None:
        """Pin a context to a stream (creation and recovery both call
        this; the assignment is stable for the context's lifetime)."""
        if index:
            self._context_stream[context_id] = index

    # ------------------------------------------------------------------
    # log access with cost accounting
    # ------------------------------------------------------------------
    def log_append(self, record) -> int:
        stream = self.stream_for(getattr(record, "context_id", None))
        # Yield BEFORE the append: once a record is buffered, the next
        # force must pair with it without another session in between.
        self.runtime.sched_yield(f"log.append:{self.name}")
        self.runtime.clock.advance(self.runtime.costs.log_buffer_write)
        lsn = stream.log.append(record)  # phx: disable=PHX005
        scheduler = getattr(self.runtime, "scheduler", None)
        if scheduler is not None and scheduler.active:
            # Advance the appending session's durability watermark
            # (pipelined causal commit; pure bookkeeping otherwise).
            scheduler.note_append(self, log=stream.log)
        self._maybe_publish_checkpoint()
        return lsn

    def log_force(
        self,
        commit_lsn: int | None = None,
        context_id: int | None = None,
    ) -> bool:
        wrote = self.stream_for(context_id).coalescer.force(commit_lsn)
        self._maybe_publish_checkpoint()
        # Yield AFTER the force (a durability boundary has completed).
        self.runtime.sched_yield(f"log.force:{self.name}")
        return wrote

    def _maybe_publish_checkpoint(self) -> None:
        """Section 4.3: once a checkpoint has been flushed (possibly by a
        later send message), force its begin LSN into the well-known
        file."""
        if self._pending_checkpoint is None:
            return
        begin_lsn, end_lsn = self._pending_checkpoint
        if self.log.stable_lsn > end_lsn:
            self.log.write_well_known_lsn(begin_lsn)
            self._pending_checkpoint = None
            faultplane.site_hit(
                f"checkpoint.publish.before_truncate:{self.name}", self.name
            )
            if self.config.checkpoint.truncate_log:
                self.collect_log_garbage()

    def set_pending_checkpoint(self, begin_lsn: int, end_lsn: int) -> None:
        self._pending_checkpoint = (begin_lsn, end_lsn)
        self._maybe_publish_checkpoint()

    # ------------------------------------------------------------------
    # component creation
    # ------------------------------------------------------------------
    def create_component(
        self,
        cls: type,
        args: tuple = (),
        component_type: ComponentType | None = None,
        install_interceptors: bool | None = None,
    ) -> ComponentProxy:
        """Create a (parent) component in a fresh context.

        ``component_type`` overrides the declared attribute only for the
        native .NET kinds of Table 4 (``MARSHAL_BY_REF`` /
        ``CONTEXT_BOUND``); Phoenix kinds always come from declarations.
        ``install_interceptors`` models Table 4's "(interception)" row
        for native components; Phoenix components always have
        interceptors.
        """
        if self.state is not ProcessState.RUNNING:
            raise ComponentUnavailableError(
                f"phoenix://{self.machine.name}/{self.name}", "not running"
            )
        ctype = component_type or declared_type(cls)
        if ctype is ComponentType.SUBORDINATE:
            raise DeploymentError(
                f"{cls.__name__} is @subordinate; create it from its "
                "parent via new_subordinate()"
            )
        if ctype.is_phoenix and not issubclass(cls, PersistentComponent):
            raise DeploymentError(
                f"{cls.__name__} must inherit PersistentComponent to be "
                f"a {ctype.value} component"
            )
        if ctype is ComponentType.EXTERNAL:
            raise DeploymentError(
                f"{cls.__name__} has no Phoenix attribute; declare it "
                "@persistent/@functional/@read_only or pass a native "
                "component_type"
            )

        lid = self._next_component_lid
        self._next_component_lid += 1
        uri = component_uri(self.machine.name, self.name, lid)
        if self.shard_router is not None:
            self.assign_stream(
                lid, self.shard_router.stream_for_class(cls.__name__)
            )
        if ctype.is_phoenix:
            # feed the static type directory (consulted only when
            # config.static_type_seeding is on; see RuntimeConfig)
            self.runtime.note_static_type(
                uri, ctype, read_only_method_names(cls)
            )
        interceptors = (
            bool(install_interceptors)
            if not ctype.is_phoenix
            else True
        )
        context = Context(
            self, lid, uri, ctype, install_interceptors=interceptors
        )
        entry = ContextTableEntry(
            context_id=lid, uri=uri, context_ref=context
        )
        self.context_table[lid] = entry

        if ctype.is_phoenix:
            class_name = self.runtime.registry.register(cls)
            record = CreationRecord(
                context_id=lid,
                component_lid=lid,
                class_name=class_name,
                args=swizzle_for_message(tuple(args)),
                uri=uri,
                component_type=ctype,
                registered_name=class_name,
            )
            entry.creation_lsn = self.log_append(record)
            self.log_force(context_id=lid)
            self._construct(context, cls, args, lid, ctype)
        else:
            self.instantiate_in_context(context, cls, args, lid, ctype)
        return self.runtime.proxy_for(uri)

    def _construct(
        self,
        context: Context,
        cls: type,
        args: tuple,
        lid: int,
        ctype: ComponentType,
    ) -> None:
        """Run a phoenix component's constructor with interception active
        — construction methods are allowed to make method calls to other
        components (Section 4.4)."""
        component = self._attach_instance(context, cls, lid, ctype)
        context.begin_incoming(None)
        self.runtime.push_context(context)
        try:
            component.__init__(
                *unswizzle_for_message(
                    swizzle_for_message(tuple(args)), self.runtime
                )
            )
        finally:
            self.runtime.pop_context()
            context.end_incoming()
        # A new component is immediately quiescent; don't count
        # construction toward the checkpoint-policy call count.
        context.incoming_calls_handled = 0

    def instantiate_in_context(
        self,
        context: Context,
        cls: type,
        args: tuple,
        lid: int,
        ctype: ComponentType,
    ) -> PersistentComponent:
        """Create and attach an instance, running its constructor inline
        (subordinates and native components)."""
        component = self._attach_instance(context, cls, lid, ctype)
        component.__init__(*args)
        return component

    def _attach_instance(
        self,
        context: Context,
        cls: type,
        lid: int,
        ctype: ComponentType,
    ) -> PersistentComponent:
        """Allocate the instance and wire the runtime fields without
        running the constructor (recovery also restores this way)."""
        component = cls.__new__(cls)
        component._phoenix_lid = lid
        component._phoenix_uri = component_uri(
            self.machine.name, self.name, lid
        )
        component._phoenix_type = ctype
        component._phoenix_context = context
        if lid == context.context_id:
            context.parent = component
        else:
            context.subordinates[lid] = component
        class_name = (
            self.runtime.registry.register(cls)
            if ctype.is_phoenix
            else f"{cls.__module__}.{cls.__qualname__}"
        )
        self.component_table[lid] = ComponentTableEntry(
            component_lid=lid,
            component_type=ctype,
            class_name=class_name,
            instance=component,
            context_id=context.context_id,
        )
        if (
            context.context_id in self.context_table
            and lid
            not in self.context_table[context.context_id].component_lids
        ):
            self.context_table[context.context_id].component_lids.append(lid)
        return component

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def find_context(self, component_lid: int) -> Context:
        entry = self.component_table.get(component_lid)
        if entry is None:
            raise DeploymentError(
                f"no component {component_lid} in process {self.name} "
                f"on {self.machine.name}"
            )
        context_entry = self.context_table[entry.context_id]
        context = context_entry.context_ref
        if context is None:
            raise ComponentUnavailableError(
                component_uri(self.machine.name, self.name, component_lid),
                "context not materialized",
            )
        return context

    def contexts(self) -> list[Context]:
        return [
            entry.context_ref
            for entry in self.context_table.values()
            if entry.context_ref is not None
        ]

    # ------------------------------------------------------------------
    # checkpointing entry points (implementation in repro.checkpoint)
    # ------------------------------------------------------------------
    def maybe_save_context_state(self, context: Context) -> bool:
        """Apply the checkpoint policy after an incoming call finishes."""
        if context.replaying or not context.component_type.is_persistent_family:
            return False
        every = self.config.checkpoint.context_state_every_n_calls
        if every is None or context.incoming_calls_handled == 0:
            return False
        if context.incoming_calls_handled % every != 0:
            return False
        self.save_context_state(context)
        return True

    def save_context_state(self, context: Context) -> int:
        from ..checkpoint.state_record import save_context_state

        lsn = save_context_state(context)
        self._state_saves += 1
        every = self.config.checkpoint.process_checkpoint_every_n_saves
        if (
            every is not None
            and self._state_saves % every == 0
            and self.pending_recovery is None
        ):
            # Automatic process checkpoints wait until on-demand replay
            # has drained: a checkpoint taken mid-drain would publish a
            # last-call table that unreplayed components have not yet
            # repopulated.
            self.take_process_checkpoint()
        return lsn

    def take_process_checkpoint(self) -> tuple[int, int]:
        from ..checkpoint.process_checkpoint import take_process_checkpoint

        return take_process_checkpoint(self)

    # ------------------------------------------------------------------
    # log garbage collection (extension — see CheckpointConfig)
    # ------------------------------------------------------------------
    def log_truncation_point(self, stream: int = 0) -> int:
        """The highest LSN below which no recovery can ever read from
        one stream.

        Recovery needs: the published checkpoint onward (stream 0 holds
        the checkpoint control records), each of the stream's contexts'
        recovery-start record (latest state record, else creation
        record), and every reply record the last-call table still
        points at.
        """
        candidates: list[int] = []
        published = self.streams[stream].log.read_well_known_lsn()
        if published is not None:
            candidates.append(published)
        for entry in self.context_table.values():
            if self.stream_index(entry.context_id) != stream:
                continue
            start = entry.recovery_start_lsn
            if start != NO_LSN:
                candidates.append(start)
        for __, last_call in self.last_calls.all_entries():
            if last_call.reply_lsn == NO_LSN:
                continue
            # The reply record lives on the serving context's stream;
            # entries recovery created without a context id (NO_LSN)
            # floor every stream — conservative, never unsafe.
            if (
                last_call.context_id != NO_LSN
                and self.stream_index(last_call.context_id) != stream
            ):
                continue
            candidates.append(last_call.reply_lsn)
        if self.pending_recovery is not None:
            # Frame chains still owed to on-demand replay.  (Their
            # contexts' recovery-start LSNs cover them already; keep
            # the invariant explicit.)
            candidates.extend(self.pending_recovery.start_lsns(stream))
        if not candidates:
            return self.streams[stream].log.base_lsn
        return min(candidates)

    def collect_log_garbage(self) -> int:
        """Reclaim each stream's dead log prefix; returns bytes
        reclaimed."""
        reclaimed = self.log.truncate_prefix(self.log_truncation_point())
        for index, stream in enumerate(self.streams[1:], start=1):
            point = self.log_truncation_point(index)
            # Publish the stream's own scan anchor before dropping the
            # prefix: recovery pass 1 starts each stream at its
            # well-known LSN, which must never sit below truncated
            # bytes.
            stream.log.write_well_known_lsn(point)
            reclaimed += stream.log.truncate_prefix(point)
        return reclaimed

    # ------------------------------------------------------------------
    # failure & restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the process: all volatile state is gone."""
        if self.state is ProcessState.CRASHED:
            return
        self.state = ProcessState.CRASHED
        self.crash_count += 1
        for stream in self.streams:
            stream.log.wipe_volatile()
            stream.coalescer.reset()
            # Volatile records above the stable boundary are gone and
            # their LSNs will be reused; tell the conformance trace.
            stream.trace.note_crash(stream.log.stable_lsn)
        # Per-session durability watermarks are volatile too: entries
        # above the stable boundary point at wiped bytes whose LSNs the
        # next incarnation will reuse.
        scheduler = getattr(self.runtime, "scheduler", None)
        if scheduler is not None and scheduler.active:
            scheduler.clamp_watermarks(self)
        for entry in self.context_table.values():
            entry.context_ref = None
        self.context_table = {}
        self.component_table = {}
        self.last_calls = LastCallTable()
        self.remote_types = RemoteComponentTypeTable()
        self._pending_checkpoint = None
        self.pending_recovery = None
        self._context_stream = {}
        self.machine.recovery_service.on_crash(self)

    def begin_restart(self) -> None:
        """Fresh volatile structures before recovery repopulates them."""
        self.state = ProcessState.RECOVERING
        for stream in self.streams:
            stream.coalescer.reset()
        self._context_stream = {}
        self.context_table = {}
        self.component_table = {}
        self.last_calls = LastCallTable()
        self.remote_types = RemoteComponentTypeTable()
        self._next_component_lid = 1
        self._state_saves = 0
        self._pending_checkpoint = None
        self.active_recovery = None
        self.pending_recovery = None

    def finish_recovery(self) -> None:
        self.state = ProcessState.RUNNING
        self.recovery_count += 1
        # Eager recovery replayed every context outside the admission
        # path; publish the driving session's clock on each so later
        # admissions order happens-after the replay (TRC108).
        scheduler = getattr(self.runtime, "scheduler", None)
        if scheduler is not None and scheduler.active:
            for context in self.contexts():
                if context is not None:
                    scheduler.publish_context(context)

    def __repr__(self) -> str:
        return (
            f"AppProcess({self.machine.name}/{self.name}, "
            f"pid={self.logical_pid}, {self.state.value}, "
            f"contexts={len(self.context_table)})"
        )
