"""Per-process global tables (paper Table 1 and Section 4.1).

A process keeps four tables outside all contexts:

* the **component table** — one entry per Phoenix/App component in the
  process;
* the **context table** — one entry per context, holding the LSN of the
  context's latest state record (the recovery-LSN analogue of ARIES);
* the **remote component table** — learned types of remote components
  (:mod:`repro.core.remote_types`);
* the **last call table** — duplicate detection
  (:mod:`repro.core.last_call`).

The first two live here as plain dataclass entries in dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..common.types import ComponentType

if TYPE_CHECKING:  # pragma: no cover
    from .component import PersistentComponent
    from .context import Context

NO_LSN = -1


@dataclass
class ComponentTableEntry:
    """Paper Table 1: component ID, component type, object type, pointer
    to the object instance, and pointer to its context table entry."""

    component_lid: int
    component_type: ComponentType
    class_name: str
    instance: "PersistentComponent"
    context_id: int


@dataclass
class ContextTableEntry:
    """Paper Table 1: the components of the context, the (parent)
    component ID and URI, the LSN of the latest context state record,
    and the last outgoing method call ID of the context.

    Outgoing sequence numbers are tracked per component on the instances
    themselves (``_phoenix_next_seq``); this entry tracks the log
    anchors recovery needs."""

    context_id: int
    uri: str
    component_lids: list[int] = field(default_factory=list)
    state_record_lsn: int = NO_LSN
    creation_lsn: int = NO_LSN
    context_ref: "Context | None" = None

    @property
    def recovery_start_lsn(self) -> int:
        """Where replay for this context begins: the latest state record
        if one exists, else the creation record."""
        if self.state_record_lsn != NO_LSN:
            return self.state_record_lsn
        return self.creation_lsn
