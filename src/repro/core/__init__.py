"""The Phoenix/App runtime: components, contexts, interceptors, logging
policies, processes and the runtime facade."""

from ..common.ids import ComponentRef, GlobalCallId, LocalRef, component_uri, parse_uri
from ..common.messages import (
    MessageKind,
    MethodCallMessage,
    ReplyMessage,
    SenderInfo,
)
from ..common.types import ComponentType
from .attributes import (
    declared_type,
    functional,
    is_read_only_method,
    persistent,
    read_only,
    read_only_method,
    read_only_method_names,
    subordinate,
)
from .component import (
    ComponentClassRegistry,
    PersistentComponent,
    SubordinateHandle,
)
from .config import CheckpointConfig, RuntimeConfig
from .context import Context, ContextMode
from .interceptor import MessageInterceptor, ReplayOutcome
from .last_call import LastCallEntry, LastCallTable
from .policy import LogDecision, LoggingPolicy
from .process import AppProcess, ProcessState
from .proxy import ComponentProxy
from .remote_types import RemoteComponentTypeTable
from .runtime import PhoenixRuntime, RuntimeStats
from .tables import ComponentTableEntry, ContextTableEntry, NO_LSN

__all__ = [
    "ComponentRef",
    "GlobalCallId",
    "LocalRef",
    "component_uri",
    "parse_uri",
    "ComponentType",
    "MessageKind",
    "MethodCallMessage",
    "ReplyMessage",
    "SenderInfo",
    "persistent",
    "subordinate",
    "functional",
    "read_only",
    "read_only_method",
    "declared_type",
    "is_read_only_method",
    "read_only_method_names",
    "PersistentComponent",
    "SubordinateHandle",
    "ComponentClassRegistry",
    "CheckpointConfig",
    "RuntimeConfig",
    "Context",
    "ContextMode",
    "MessageInterceptor",
    "ReplayOutcome",
    "LastCallEntry",
    "LastCallTable",
    "LogDecision",
    "LoggingPolicy",
    "AppProcess",
    "ProcessState",
    "ComponentProxy",
    "RemoteComponentTypeTable",
    "PhoenixRuntime",
    "RuntimeStats",
    "ComponentTableEntry",
    "ContextTableEntry",
    "NO_LSN",
]
