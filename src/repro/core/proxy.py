"""Dynamic component proxies.

A proxy is the only way application code (and external drivers) calls a
component in another context.  Attribute access returns a bound remote
method; calling it routes through the runtime's full message pipeline
(client interceptor -> transport -> server interceptor), which is where
logging, duplicate detection and retries happen.

Proxies are pure (runtime, URI) pairs: they survive the target crashing
and recovering, and they serialize to :class:`ComponentRef` in messages
and checkpoints.
"""

from __future__ import annotations

from typing import Any

from ..common.ids import parse_uri


class ComponentProxy:
    """A remote reference to a component, by URI."""

    __slots__ = ("_runtime", "_uri")

    def __init__(self, runtime: Any, uri: str):
        parse_uri(uri)  # validate eagerly
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_uri", uri)

    @property
    def uri(self) -> str:
        return self._uri

    def __getattr__(self, name: str) -> "_RemoteMethod":
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self._runtime, self._uri, name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            "component proxies are immutable references; call methods "
            "on the component instead of setting attributes"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ComponentProxy) and other._uri == self._uri

    def __hash__(self) -> int:
        return hash(self._uri)

    def __repr__(self) -> str:
        return f"ComponentProxy({self._uri})"


class _RemoteMethod:
    """A bound remote method; calling it performs the remote call."""

    __slots__ = ("_runtime", "_uri", "_method")

    def __init__(self, runtime: Any, uri: str, method: str):
        self._runtime = runtime
        self._uri = uri
        self._method = method

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self._runtime.invoke_method(
            self._uri, self._method, args, kwargs
        )

    def __repr__(self) -> str:
        return f"<remote method {self._method} of {self._uri}>"
