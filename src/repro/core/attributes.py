"""Declarative component and method attributes.

Paper Section 2.2: "Programmers specify a component as persistent using a
customized attribute", and Section 3.4: subordinate, functional and
read-only components are specified the same way.  In this reproduction
the attributes are class decorators::

    @persistent
    class Bookstore(PersistentComponent): ...

    @functional
    class TaxCalculator(PersistentComponent): ...

    class Bookstore(PersistentComponent):
        @read_only_method
        def search(self, keyword): ...

The decorators only tag the class/method; placement and logging decisions
are made by the runtime when the component is created.
"""

from __future__ import annotations

from collections.abc import Callable

from ..common.types import ComponentType
from ..errors import ConfigurationError

_TYPE_ATTR = "_phoenix_component_type"
_READ_ONLY_ATTR = "_phoenix_read_only_method"


def _tag(component_type: ComponentType) -> Callable[[type], type]:
    def decorator(cls: type) -> type:
        existing = cls.__dict__.get(_TYPE_ATTR)
        if existing is not None and existing is not component_type:
            raise ConfigurationError(
                f"{cls.__name__} already declared {existing.value}; "
                f"cannot also declare {component_type.value}"
            )
        setattr(cls, _TYPE_ATTR, component_type)
        return cls

    return decorator


#: Declare a stateful component whose state Phoenix/App recovers by redo.
persistent = _tag(ComponentType.PERSISTENT)

#: Declare a persistent component that lives in its parent's context and
#: only services calls from the parent and sibling subordinates.
subordinate = _tag(ComponentType.SUBORDINATE)

#: Declare a stateless, pure component that calls only functional
#: components; nothing is logged on either side of its calls.
functional = _tag(ComponentType.FUNCTIONAL)

#: Declare a stateless component that may read persistent components;
#: persistent callers log (without forcing) its replies.
read_only = _tag(ComponentType.READ_ONLY)


def read_only_method(method: Callable) -> Callable:
    """Mark a method of a persistent component as read-only.

    A read-only method neither changes any field of the component nor
    makes a non-read-only outgoing call (Section 3.3).  The runtime does
    not verify this — as in the paper, it is a programmer promise — but
    the test suite includes checks that the optimization is disabled
    when the promise is broken deliberately.
    """
    setattr(method, _READ_ONLY_ATTR, True)
    return method


def declared_type(cls: type) -> ComponentType:
    """The component type a class was decorated with.

    Classes without a Phoenix attribute are *external* by default —
    "Unspecified components are external components by default, for
    which we take no actions and make no guarantees."
    """
    found = getattr(cls, _TYPE_ATTR, None)
    return found if found is not None else ComponentType.EXTERNAL


def is_read_only_method(cls: type, method_name: str) -> bool:
    """Does ``cls.method_name`` carry the read-only attribute?"""
    method = getattr(cls, method_name, None)
    return bool(getattr(method, _READ_ONLY_ATTR, False))


def read_only_method_names(cls: type) -> frozenset[str]:
    """All read-only method names of a class (for table seeding/tests)."""
    names = []
    for name in dir(cls):
        if name.startswith("_"):
            continue
        if is_read_only_method(cls, name):
            names.append(name)
    return frozenset(names)
