"""Component base class and subordinate handles.

Paper Section 4.2: "we implemented a 'persistent' base class and required
all Phoenix/App components to inherit from this class.  A base class can
visit all fields in a derived instance and we implement the support for
saving and restoring a component in the base class."

All Phoenix/App component kinds (persistent, subordinate, functional,
read-only) inherit :class:`PersistentComponent`.  The runtime attaches
its bookkeeping in ``_phoenix_``-prefixed attributes, which field capture
(:mod:`repro.checkpoint.fields`) excludes; everything else the component
stores in ``self`` is its recoverable state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..common.types import ComponentType
from ..errors import ConfigurationError, InvariantViolationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .context import Context

PHOENIX_FIELD_PREFIX = "_phoenix_"


class PersistentComponent:
    """Base class for all Phoenix/App components.

    Component state is whatever the instance stores in ordinary
    attributes; it must be built from log-serializable values (plain
    data, component proxies, subordinate handles).  Methods must be
    piece-wise deterministic — the runtime guarantees single-threaded
    execution per context, and the component must not consult
    out-of-band nondeterminism (wall clocks, RNGs) if it is to be
    replayable.
    """

    # Class-level defaults so unattached instances (plain unit tests)
    # behave; the runtime overwrites these on the instance at attach.
    _phoenix_lid: int = -1
    _phoenix_uri: str = ""
    _phoenix_type: ComponentType = ComponentType.EXTERNAL
    _phoenix_context: "Context | None" = None
    _phoenix_next_seq: int = 0

    # ------------------------------------------------------------------
    # runtime services available to component code
    # ------------------------------------------------------------------
    @property
    def phoenix_uri(self) -> str:
        """This component's URI (empty until attached to a runtime)."""
        return self._phoenix_uri

    @property
    def phoenix_type(self) -> ComponentType:
        return self._phoenix_type

    def new_subordinate(self, cls: type, *args: object) -> "SubordinateHandle":
        """Create a subordinate component in this component's context.

        Subordinate creation happens inside the parent's (deterministic)
        execution, so it needs no creation record: replay re-creates the
        subordinate with the same identity (paper Section 3.2.1).
        """
        context = self._require_context()
        return context.create_subordinate(cls, args)

    def self_reference(self) -> Any:
        """A proxy to this component, safe to hand to other components."""
        context = self._require_context()
        if self._phoenix_type is ComponentType.SUBORDINATE:
            raise ConfigurationError(
                "subordinate components must not be referenced from "
                "outside their context"
            )
        return context.process.runtime.proxy_for(self._phoenix_uri)

    def _require_context(self) -> "Context":
        if self._phoenix_context is None:
            raise InvariantViolationError(
                f"{type(self).__name__} is not attached to a runtime"
            )
        return self._phoenix_context


class SubordinateHandle:
    """The parent's reference to one of its subordinates.

    Method calls through the handle are *direct* — no interception, no
    logging, no context crossing (paper Figure 6) — and cost the
    near-zero direct-call time of Table 5's Persistent->Subordinate row.
    The handle (rather than the raw object) exists so checkpointing can
    recognize and swizzle subordinate references, and so the
    only-called-from-own-context restriction is enforced.
    """

    __slots__ = ("_component",)

    def __init__(self, component: PersistentComponent):
        object.__setattr__(self, "_component", component)

    @property
    def component(self) -> PersistentComponent:
        return self._component

    @property
    def component_lid(self) -> int:
        return self._component._phoenix_lid

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        component = self._component
        value = getattr(component, name)
        if not callable(value):
            return value

        def call(*args: object, **kwargs: object):
            context = component._phoenix_context
            if context is None:
                raise InvariantViolationError(
                    "subordinate handle used before attachment"
                )
            context.check_subordinate_access()
            context.charge_subordinate_call()
            return value(*args, **kwargs)

        return call

    def __repr__(self) -> str:
        return (
            f"SubordinateHandle({type(self._component).__name__}"
            f"#{self._component._phoenix_lid})"
        )


class ComponentClassRegistry:
    """Class-name -> class mapping used by recovery to re-instantiate.

    Creation records store the class by name; recovery looks it up here.
    The runtime registers classes automatically on first use, so explicit
    registration is only needed when recovering in a fresh interpreter.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type] = {}

    def register(self, cls: type) -> str:
        name = f"{cls.__module__}.{cls.__qualname__}"
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"two different classes registered under {name!r}"
            )
        self._classes[name] = cls
        return name

    def lookup(self, name: str) -> type:
        try:
            return self._classes[name]
        except KeyError:
            from ..errors import UnknownComponentClassError

            raise UnknownComponentClassError(
                f"class {name!r} is not registered; recovery cannot "
                "re-instantiate it"
            ) from None

    def name_of(self, cls: type) -> str:
        return self.register(cls)
