"""Logging policies — the paper's Algorithms 1 through 5.

The policy decides, for each of the four message kinds, whether to write
a log record (long or short) and whether to force the log, given the
component types on both ends of the call:

* **Algorithm 1** (baseline, Section 2.3): log then force every message.
* **Algorithm 2** (Section 3.1.1, persistent client): log receive
  messages (1 and 4) *without* forcing; write nothing for send messages
  (2 and 3) but force all previous records before they leave.
* **Algorithm 3** (Section 3.1.2, external client): force a long record
  for message 1 and a short record for message 2 — external failures
  cannot be fully masked, so log promptly and keep the window of
  vulnerability small.
* **Algorithm 4** (Section 3.2.2, functional server): nothing, on either
  side.
* **Algorithm 5** (Sections 3.2.3/3.3, read-only components & methods):
  nothing at the server; the persistent caller logs (without forcing)
  only message 4, whose value replay cannot regenerate.
* **Multi-call** (Section 3.5, extension): within one method execution,
  force only for the first outgoing call or when re-invoking a server
  already called; later servers' replies are recoverable from their own
  last-call tables.

An unknown server type uses the most conservative algorithm (Section
3.4), i.e. it is treated as persistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.trace import CrashMark, TraceEvent
from ..common.messages import (
    MessageKind,
    MethodCallMessage,
    ReplyMessage,
)
from ..common.types import ComponentType
from ..faults import plane as faultplane
from ..log.records import MessageRecord
from .config import RuntimeConfig
from .tables import NO_LSN

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context


@dataclass(frozen=True)
class LogDecision:
    """What the policy did for one message (tests and stats read this)."""

    wrote_record: bool = False
    forced: bool = False
    short: bool = False
    record_lsn: int = NO_LSN
    #: The end-LSN the force was asked to make stable (captured *before*
    #: the force).  Under group commit a rider's force may also persist
    #: another session's later appends, so the conformance checker must
    #: compare stability against this, not the post-force end of log.
    commit_lsn: int | None = None

    @classmethod
    def nothing(cls) -> "LogDecision":
        return cls()


class _InterruptedDecision(BaseException):
    """A crash signal unwound out of a decision's force.

    The decision had already appended its record, which may have reached
    stable storage before the crash — the trace must still witness it,
    or the conformance checker would find a stable record no surviving
    decision claims.  Carries the partial decision and the original
    signal; never escapes the policy's ``on_*`` wrappers.
    """

    def __init__(self, decision: LogDecision, signal: BaseException):
        super().__init__("decision interrupted by crash signal")
        self.decision = decision
        self.signal = signal


class LoggingPolicy:
    """Chooses and executes the per-message logging actions."""

    def __init__(self, config: RuntimeConfig):
        self.config = config

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _treat_read_only(
        self, component_type: ComponentType | None, method_read_only: bool
    ) -> bool:
        """Should this peer be handled by Algorithm 5?"""
        if component_type is ComponentType.READ_ONLY:
            return True
        return bool(
            method_read_only and self.config.read_only_method_optimization
        )

    def _stateless_context(self, context: "Context") -> bool:
        """Algorithms 4 and 5: functional and read-only components log
        nothing themselves — they are stateless and never recovered.
        (Only meaningful in the optimized system; the baseline predates
        component types and logs everything.)"""
        return (
            self.config.optimized_logging
            and context.component_type.is_stateless
        )

    @staticmethod
    def _append(
        context: "Context",
        kind: MessageKind,
        message: MethodCallMessage | ReplyMessage | None,
        short: bool = False,
    ) -> int:
        record = MessageRecord(
            context_id=context.context_id,
            kind=kind,
            message=None if short else message,
            short=short,
        )
        return context.process.log_append(record)

    def _commit_point(self, context: "Context") -> int:
        """The LSN a committing send must make stable before leaving.

        The paper's Algorithm 2 uses the whole-log ``end_lsn`` ("force
        all previous messages") — a global ordering point.  With
        ``config.pipelined_commit`` on and the deterministic scheduler
        active, the commit point relaxes to the sending session's
        *causal* watermark: the highest LSN in its happens-before cone.
        TRC107 recomputes that cone independently from the trace's
        vector clocks, so an under-computed watermark here cannot pass
        unnoticed.  With the flag off this is exactly ``end_lsn`` — of
        the context's own log stream, which under sharded logging is
        the only stream the send's causal target can live on."""
        process = context.process
        log = self._log(context)
        if self.config.pipelined_commit:
            runtime = getattr(process, "runtime", None)
            scheduler = getattr(runtime, "scheduler", None)
            if scheduler is not None and scheduler.active:
                target = scheduler.causal_commit_lsn(process, log=log)
                if target is not None:
                    return target
        return log.end_lsn

    @staticmethod
    def _log(context: "Context"):
        """The log stream the context's records route to (the legacy
        ``process.log`` outside sharded logging)."""
        log_for = getattr(context.process, "log_for", None)
        if log_for is None:
            return context.process.log
        return log_for(context.context_id)

    @staticmethod
    def _force_for(context: "Context", decision: LogDecision) -> None:
        """Force the log on behalf of a decision that already appended
        its record, converting a crash out of the force into
        :class:`_InterruptedDecision` so the appended record is still
        traced."""
        try:
            context.process.log_force(
                commit_lsn=decision.commit_lsn,
                context_id=context.context_id,
            )
        except BaseException as signal:
            raise _InterruptedDecision(decision, signal) from None

    def _trace_interrupted(
        self,
        context: "Context",
        kind: MessageKind,
        peer_type: ComponentType | None,
        method_read_only: bool,
        exc: _InterruptedDecision,
        method: str | None = None,
    ) -> None:
        """Witness an interrupted decision's appended record — but only
        when the record can still exist.

        A *stale* signal is a ghost unwind: the crash already happened
        in another session and the process's :class:`CrashMark` is
        already on the trace, so this event would be appended BEHIND the
        mark and escape its volatile-record pruning.  The record's fate
        is already sealed by that mark: at/above its ``stable_lsn`` the
        record was wiped (and its LSN will be reused) — tracing it would
        claim a future record; below it the record is durable and still
        needs a claiming decision (e.g. a group-commit rider whose batch
        executed just before the crash)."""
        decision = exc.decision
        if getattr(exc.signal, "stale", False):
            trace = self._trace_journal(context)
            mark = None
            if trace is not None:
                for entry in reversed(trace.entries):
                    if isinstance(entry, CrashMark):
                        mark = entry
                        break
            if (
                mark is None
                or decision.record_lsn == NO_LSN
                or decision.record_lsn >= mark.stable_lsn
            ):
                return
        self._trace(
            context, kind, peer_type, method_read_only, decision,
            interrupted=True, method=method,
        )

    def _trace(
        self,
        context: "Context",
        kind: MessageKind,
        peer_type: ComponentType | None,
        method_read_only: bool,
        decision: LogDecision,
        multicall_skip: bool = False,
        interrupted: bool = False,
        method: str | None = None,
    ) -> LogDecision:
        """Journal the decision on the context's stream's protocol
        trace (pure observation: the conformance checker replays these
        against the stable stream; see ``repro.analysis``)."""
        trace = self._trace_journal(context)
        if trace is not None:
            log = self._log(context)
            scheduler = getattr(context.process.runtime, "scheduler", None)
            session: int | None = None
            vc: tuple[tuple[int, int], ...] | None = None
            if scheduler is not None and scheduler.active:
                session = scheduler.current_session_id()
                vc = scheduler.current_vc()
            trace.record(TraceEvent(
                kind=kind,
                context_id=context.context_id,
                context_type=context.component_type,
                peer_type=peer_type,
                method_read_only=method_read_only,
                optimized=self.config.optimized_logging,
                read_only_opt=self.config.read_only_method_optimization,
                multicall_skip=multicall_skip,
                wrote_record=decision.wrote_record,
                forced=decision.forced,
                short=decision.short,
                record_lsn=decision.record_lsn,
                end_lsn=log.end_lsn,
                stable_lsn=log.stable_lsn,
                interrupted=interrupted,
                method=method,
                session=session,
                commit_lsn=decision.commit_lsn,
                vc=vc,
                replaying=context.replaying,
            ))
        return decision

    @staticmethod
    def _trace_journal(context: "Context"):
        """The protocol trace paired with the context's log stream."""
        stream_for = getattr(context.process, "stream_for", None)
        if stream_for is None:
            return getattr(context.process, "protocol_trace", None)
        return stream_for(context.context_id).trace

    # ------------------------------------------------------------------
    # message 1: incoming method call (server side)
    # ------------------------------------------------------------------
    def on_incoming_call(
        self,
        context: "Context",
        message: MethodCallMessage,
        client_type: ComponentType,
        method_read_only: bool,
    ) -> LogDecision:
        try:
            decision = self._incoming_call(
                context, message, client_type, method_read_only
            )
        except _InterruptedDecision as exc:
            self._trace_interrupted(
                context, MessageKind.INCOMING_CALL, client_type,
                method_read_only, exc, method=message.method,
            )
            raise exc.signal from None
        return self._trace(
            context, MessageKind.INCOMING_CALL, client_type,
            method_read_only, decision, method=message.method,
        )

    def _incoming_call(
        self,
        context: "Context",
        message: MethodCallMessage,
        client_type: ComponentType,
        method_read_only: bool,
    ) -> LogDecision:
        if not self.config.optimized_logging:
            # Algorithm 1: log message 1, force.
            lsn = self._append(context, MessageKind.INCOMING_CALL, message)
            decision = LogDecision(
                wrote_record=True, forced=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision
        if self._stateless_context(context):
            return LogDecision.nothing()  # Algorithms 4/5: stateless server
        if self._treat_read_only(client_type, method_read_only):
            return LogDecision.nothing()  # Algorithm 5
        if client_type is ComponentType.EXTERNAL:
            # Algorithm 3: long record, force all messages.
            lsn = self._append(context, MessageKind.INCOMING_CALL, message)
            decision = LogDecision(
                wrote_record=True, forced=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision
        # Algorithm 2: log without forcing.
        lsn = self._append(context, MessageKind.INCOMING_CALL, message)
        return LogDecision(wrote_record=True, record_lsn=lsn)

    # ------------------------------------------------------------------
    # message 2: reply to the incoming call (server side)
    # ------------------------------------------------------------------
    def on_reply_send(
        self,
        context: "Context",
        reply: ReplyMessage,
        client_type: ComponentType,
        method_read_only: bool,
    ) -> LogDecision:
        try:
            decision = self._reply_send(
                context, reply, client_type, method_read_only
            )
        except _InterruptedDecision as exc:
            self._trace_interrupted(
                context, MessageKind.REPLY_TO_INCOMING, client_type,
                method_read_only, exc,
            )
            raise exc.signal from None
        return self._trace(
            context, MessageKind.REPLY_TO_INCOMING, client_type,
            method_read_only, decision,
        )

    def _reply_send(
        self,
        context: "Context",
        reply: ReplyMessage,
        client_type: ComponentType,
        method_read_only: bool,
    ) -> LogDecision:
        if not self.config.optimized_logging:
            lsn = self._append(context, MessageKind.REPLY_TO_INCOMING, reply)
            decision = LogDecision(
                wrote_record=True, forced=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision
        if self._stateless_context(context):
            return LogDecision.nothing()  # Algorithms 4/5: stateless server
        if self._treat_read_only(client_type, method_read_only):
            return LogDecision.nothing()  # Algorithm 5
        if client_type is ComponentType.EXTERNAL:
            # Algorithm 3: short record (identity only), force.  A crash
            # in this window — message 1 forced, message 2 not yet — is
            # the paper's window of vulnerability for external clients.
            name = context.process.name
            faultplane.site_hit(f"alg3.pre_reply:{name}", name)
            lsn = self._append(
                context, MessageKind.REPLY_TO_INCOMING, reply, short=True
            )
            decision = LogDecision(
                wrote_record=True, forced=True, short=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision
        # Algorithm 2: no record — the reply is re-creatable by replay —
        # but everything before the send (its causal prefix, under
        # pipelined commit) must be stable.
        commit = self._commit_point(context)
        forced = context.process.log_force(
            commit_lsn=commit, context_id=context.context_id
        )
        return LogDecision(forced=forced, commit_lsn=commit)

    # ------------------------------------------------------------------
    # message 3: outgoing method call (client side)
    # ------------------------------------------------------------------
    def on_outgoing_call(
        self,
        context: "Context",
        message: MethodCallMessage,
        server_type: ComponentType | None,
        method_read_only: bool,
    ) -> LogDecision:
        try:
            decision, multicall_skip = self._outgoing_call(
                context, message, server_type, method_read_only
            )
        except _InterruptedDecision as exc:
            self._trace_interrupted(
                context, MessageKind.OUTGOING_CALL, server_type,
                method_read_only, exc, method=message.method,
            )
            raise exc.signal from None
        return self._trace(
            context, MessageKind.OUTGOING_CALL, server_type,
            method_read_only, decision, multicall_skip=multicall_skip,
            method=message.method,
        )

    def _outgoing_call(
        self,
        context: "Context",
        message: MethodCallMessage,
        server_type: ComponentType | None,
        method_read_only: bool,
    ) -> tuple[LogDecision, bool]:
        if not self.config.optimized_logging:
            lsn = self._append(context, MessageKind.OUTGOING_CALL, message)
            decision = LogDecision(
                wrote_record=True, forced=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision, False
        if self._stateless_context(context):
            return LogDecision.nothing(), False  # stateless caller
        if server_type is ComponentType.FUNCTIONAL:
            return LogDecision.nothing(), False  # Algorithm 4
        if self._treat_read_only(server_type, method_read_only):
            # Algorithm 5: a call to a read-only target commits nothing.
            return LogDecision.nothing(), False
        # Persistent or unknown server: the send commits our state.
        current = (
            context.current_call
            if self.config.multicall_optimization
            else None
        )
        if current is not None:
            # The last-call table is per *process* and keeps one
            # entry per caller, so a second call into an
            # already-visited process evicts the earlier call's
            # stored reply — the skip is only sound for the first
            # call into each server process (Section 3.5's "server"
            # is the process, not the component).
            server = message.target_uri.rsplit("/", 1)[0]
            repeat = server in current.servers_called
            first = not current.forced_once
            current.servers_called.add(server)
            if (
                not first
                and not repeat
                and self._log(context).stable_lsn
                >= current.forced_watermark
            ):
                # Section 3.5: the server's last-call table holds the
                # reply persistently; no force needed here.  Guarded by
                # the watermark: the skip is only sound when *this
                # call's* earlier force actually reached stable storage
                # — under concurrent sessions another call's unforced
                # appends sit between our force and the end of log, and
                # they must not stand in for it.
                return LogDecision.nothing(), True
            current.forced_once = True
        commit = self._commit_point(context)
        forced = context.process.log_force(
            commit_lsn=commit, context_id=context.context_id
        )
        if current is not None:
            current.forced_watermark = max(current.forced_watermark, commit)
        return LogDecision(forced=forced, commit_lsn=commit), False

    # ------------------------------------------------------------------
    # message 4: reply from the outgoing call (client side)
    # ------------------------------------------------------------------
    def on_reply_from_outgoing(
        self,
        context: "Context",
        reply: ReplyMessage,
        server_type: ComponentType | None,
        method_read_only: bool,
    ) -> LogDecision:
        try:
            decision = self._reply_from_outgoing(
                context, reply, server_type, method_read_only
            )
        except _InterruptedDecision as exc:
            self._trace_interrupted(
                context, MessageKind.REPLY_FROM_OUTGOING, server_type,
                method_read_only, exc,
            )
            raise exc.signal from None
        return self._trace(
            context, MessageKind.REPLY_FROM_OUTGOING, server_type,
            method_read_only, decision,
        )

    def _reply_from_outgoing(
        self,
        context: "Context",
        reply: ReplyMessage,
        server_type: ComponentType | None,
        method_read_only: bool,
    ) -> LogDecision:
        if not self.config.optimized_logging:
            lsn = self._append(
                context, MessageKind.REPLY_FROM_OUTGOING, reply
            )
            decision = LogDecision(
                wrote_record=True, forced=True, record_lsn=lsn,
                commit_lsn=self._commit_point(context),
            )
            self._force_for(context, decision)
            return decision
        if self._stateless_context(context):
            return LogDecision.nothing()  # stateless caller logs nothing
        if server_type is ComponentType.FUNCTIONAL:
            return LogDecision.nothing()  # Algorithm 4: pure, re-creatable
        # Algorithms 2 and 5: log without forcing.  Read-only replies are
        # unrepeatable; persistent replies remove receive nondeterminism.
        lsn = self._append(context, MessageKind.REPLY_FROM_OUTGOING, reply)
        return LogDecision(wrote_record=True, record_lsn=lsn)
