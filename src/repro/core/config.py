"""Runtime configuration.

Paper Section 5: "In our new prototype, log optimizations and
checkpointing can all be turned on or off via switches."  This module is
those switches.  ``RuntimeConfig.baseline()`` reproduces the IDEAS 2003
prototype (Algorithm 1: log and immediately force every message);
``RuntimeConfig.optimized()`` enables the paper's contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing switches (paper Section 4).

    ``context_state_every_n_calls`` saves a context's state after every
    N-th completed incoming call (``None`` disables automatic saves; the
    paper's Section 5.4 experiments suggest ~400 calls for the
    micro-benchmark).  ``process_checkpoint_every_n_saves`` takes a
    process checkpoint after every N-th context state save (the paper
    takes them "periodically"); manual checkpoints are always available
    through :meth:`repro.core.process.AppProcess.take_process_checkpoint`.
    """

    context_state_every_n_calls: int | None = None
    process_checkpoint_every_n_saves: int | None = None

    #: Reclaim the log prefix no recovery can ever need, each time a
    #: process checkpoint is published in the well-known file.  An
    #: extension beyond the paper (which lets the log grow); the safe
    #: truncation point is the minimum of the checkpoint LSN, every
    #: context's recovery-start LSN, and every referenced reply LSN.
    truncate_log: bool = False

    @property
    def enabled(self) -> bool:
        return self.context_state_every_n_calls is not None


@dataclass(frozen=True)
class RuntimeConfig:
    """Switches controlling logging, optimizations and recovery."""

    # Algorithm selection: False = Algorithm 1 (baseline: log + force
    # every message); True = Algorithms 2-5 chosen per component type.
    optimized_logging: bool = True

    # Section 3.3: treat calls to @read_only_method methods like calls
    # to read-only components (only meaningful with optimized_logging).
    read_only_method_optimization: bool = True

    # Section 3.5: force only on the first outgoing call of a served
    # method (and on calling the same server twice).  An extension — the
    # paper describes it but did not implement it.
    multicall_optimization: bool = False

    # Section 5.2.3: when the caller says it already knows the server's
    # identity, the server omits the type attachment in its reply.
    reply_attachment_omission: bool = True

    # Warm-start the remote component type table from the static type
    # directory (the declared types `repro-analyze infer` verifies
    # against the whole-program fixpoint) instead of learning each
    # server's type from its first reply.  Off by default: the learned
    # cold-start path is the paper's Section 3.4 behavior, and the
    # benchmark tables are calibrated against it.
    static_type_seeding: bool = False

    # Section 4: checkpointing.
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)

    # Condition 4 handling: how many times a persistent caller retries a
    # failed outgoing call before giving up, and whether hitting a
    # crashed process synchronously runs recovery (the simulated
    # equivalent of the recovery service restarting it).
    max_call_retries: int = 8
    auto_recover: bool = True

    # Group commit (extension): under the deterministic concurrent
    # scheduler, force requests arriving within one window on the same
    # process log share a single stable write.  Off by default — the
    # serial benchmarks and Tables 4-8 are calibrated without it, and
    # with the flag off the scheduler's output is byte-identical to the
    # serial runtime.  The window defaults to one disk rotation
    # (``RotationalDisk.group_commit_window_ms``); the override is in
    # simulated milliseconds.
    group_commit: bool = False
    group_commit_window_ms: float | None = None

    # Pipelined causal commit (extension; ROADMAP item 3, after
    # partially constrained transaction logs): relax Algorithm 2's
    # global "force all previous records" point to the *causal* prefix
    # TRC107 proves sufficient.  Each session keeps a per-log durability
    # watermark (the highest LSN it causally knows, maintained by the
    # scheduler from the same sync edges as the vector clocks); a send
    # is released the moment the log is stable through that watermark,
    # even while other sessions' tails are volatile, and group-commit
    # batches pipeline — a new batch opens while the previous write is
    # still in flight, and waiters whose causal prefix an earlier
    # in-flight write already covered release without waiting for their
    # own window.  Off by default: with the flag off every commit point
    # is the whole-log ``end_lsn`` and the scheduler's output is
    # byte-identical to group commit alone.
    pipelined_commit: bool = False

    # On-demand recovery (extension; ROADMAP item 2, after Sauer &
    # Härder's instant restart and Lomet's logical recovery): restart
    # runs only the analysis pass (repair tail, re-mark, restore
    # checkpointed state) and then admits new calls; each remaining
    # context is replayed lazily on first access from its own frame
    # chain in the per-component log index, while background drain
    # workers (scheduled as deterministic sessions when the concurrent
    # scheduler is active) replay the rest.  Off by default — eager
    # two-pass recovery is the paper's Table 7 model and the benchmark
    # tables are calibrated against it.
    on_demand_recovery: bool = False
    recovery_drain_workers: int = 2

    # Sharded multi-log runtime (extension; ROADMAP item 1, the
    # executable half of the committed ``plans/apps.logplan.json``): a
    # process hosts one ``LogManager`` stream per plan shard assigned to
    # it, a :class:`~repro.log.sharding.ShardRouter` resolves
    # ``record.context_id -> shard -> stream`` at deploy time (unplanned
    # components fall back to stream 0, subordinates follow their
    # parent), forces touch only the stream the decision's causal target
    # lives on, and recovery replays the shards independently — so
    # restart time scales with the largest shard, not the whole log.
    # Off by default: with the flag off a process keeps exactly its one
    # legacy log and every byte it writes is identical.
    sharded_logging: bool = False

    @classmethod
    def baseline(cls, **overrides: object) -> "RuntimeConfig":
        """The IDEAS 2003 baseline system (Algorithm 1, no checkpoints)."""
        config = cls(
            optimized_logging=False,
            read_only_method_optimization=False,
            multicall_optimization=False,
            reply_attachment_omission=False,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def optimized(cls, **overrides: object) -> "RuntimeConfig":
        """This paper's system (Algorithms 2-5 + checkpointing available)."""
        config = cls()
        return replace(config, **overrides) if overrides else config

    def with_overrides(self, **overrides: object) -> "RuntimeConfig":
        return replace(self, **overrides)
