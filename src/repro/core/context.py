"""Contexts.

Paper Section 2.3: "In .NET remoting, a component resides in a structure
called a 'context'.  Within a context, method calls are local calls.
Across context boundaries method calls are remote procedure calls...
Message interceptors at context boundaries can intercept all the four
kinds of messages."

In the baseline and optimized systems every *parent* component gets its
own context; subordinates are placed inside their parent's context
(Figure 6) so calls among them cross no boundary and are never
intercepted or logged.  A context is also the unit of checkpointing
(its state is saved "when the context is not active", Section 4.2) and
of replay.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING

from ..common.ids import GlobalCallId
from ..common.messages import MethodCallMessage, ReplyMessage
from ..common.types import ComponentType
from ..errors import ConfigurationError, DeploymentError, InvariantViolationError
from .attributes import declared_type
from .component import PersistentComponent, SubordinateHandle

if TYPE_CHECKING:  # pragma: no cover
    from .process import AppProcess

#: Subordinate LIDs are derived from the parent LID so they are unique in
#: the process and deterministic under replay: ``parent_lid * SUB_LID_BASE
#: + per-context sequence``.  Parent LIDs are process-sequential and far
#: below the base.
SUB_LID_BASE = 100_000


class ContextMode(enum.Enum):
    NORMAL = "normal"
    REPLAY = "replay"


class CurrentCall:
    """Book-keeping for the incoming call a context is serving.

    Tracks the servers called so far during this method execution for
    the multi-call optimization (Section 3.5)."""

    __slots__ = ("message", "servers_called", "forced_once", "forced_watermark")

    def __init__(self, message: MethodCallMessage | None):
        self.message = message
        self.servers_called: set[str] = set()
        self.forced_once = False
        # Highest LSN this call has itself forced through; the Section
        # 3.5 skip is only sound when the log is stable at least this
        # far (another session's unforced tail must not justify a skip).
        self.forced_watermark = 0


class Context:
    """A context: one parent component plus its subordinates."""

    def __init__(
        self,
        process: "AppProcess",
        context_id: int,
        uri: str,
        component_type: ComponentType,
        install_interceptors: bool = True,
    ):
        self.process = process
        self.context_id = context_id
        self.uri = uri
        self.component_type = component_type
        self.install_interceptors = install_interceptors

        self.parent: PersistentComponent | None = None
        self.subordinates: dict[int, PersistentComponent] = {}

        self.mode = ContextMode.NORMAL
        self.crashed = False
        self.busy = False
        self.incoming_calls_handled = 0
        self.next_outgoing_seq = 0  # the context's outgoing-call counter
        self.current_call: CurrentCall | None = None
        self._next_sub_seq = 1
        # Index of the scheduler session currently serving this context
        # (None when idle or under the serial runtime).  Contexts are
        # single-threaded; the scheduler serializes admission on this.
        self.service_owner: int | None = None

        # During replay, logged replies of this context's outgoing calls
        # (message 4 records) queue here; the interceptor answers
        # outgoing calls from the queue instead of sending them
        # (Figure 5: "Suppress outgoing calls / construct replies from
        # the log").
        self.replay_replies: deque[ReplyMessage] = deque()

        # Late import to avoid a module cycle (interceptor needs Context
        # for typing only).
        from .interceptor import MessageInterceptor

        self.interceptor = MessageInterceptor(self)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def runtime(self):
        return self.process.runtime

    @property
    def is_phoenix(self) -> bool:
        return self.component_type.is_phoenix

    def components(self) -> list[PersistentComponent]:
        """Parent first, then subordinates in LID order."""
        members: list[PersistentComponent] = []
        if self.parent is not None:
            members.append(self.parent)
        members.extend(
            self.subordinates[lid] for lid in sorted(self.subordinates)
        )
        return members

    # ------------------------------------------------------------------
    # outgoing call IDs (condition 2)
    # ------------------------------------------------------------------
    def allocate_call_id(self) -> GlobalCallId:
        """The next deterministic outgoing-call ID of this context."""
        call_id = GlobalCallId(
            machine=self.process.machine.name,
            process_lid=self.process.logical_pid,
            component_lid=self.context_id,
            seq=self.next_outgoing_seq,
        )
        self.next_outgoing_seq += 1
        return call_id

    # ------------------------------------------------------------------
    # subordinates (Section 3.2.1)
    # ------------------------------------------------------------------
    def create_subordinate(
        self, cls: type, args: tuple
    ) -> SubordinateHandle:
        if declared_type(cls) is not ComponentType.SUBORDINATE:
            raise DeploymentError(
                f"{cls.__name__} is not declared @subordinate"
            )
        if not self.component_type.is_persistent_family:
            raise DeploymentError(
                "only persistent components may have subordinates"
            )
        if self._next_sub_seq >= SUB_LID_BASE:
            raise DeploymentError(
                f"context {self.context_id} exceeded {SUB_LID_BASE} "
                "subordinates"
            )
        lid = self.context_id * SUB_LID_BASE + self._next_sub_seq
        self._next_sub_seq += 1
        component = self.process.instantiate_in_context(
            self, cls, args, lid, ComponentType.SUBORDINATE
        )
        return SubordinateHandle(component)

    def restore_subordinate_counter(self) -> None:
        """After recovery rebuilt ``subordinates``, continue the LID
        sequence deterministically."""
        if self.subordinates:
            top = max(lid % SUB_LID_BASE for lid in self.subordinates)
            self._next_sub_seq = top + 1
        else:
            self._next_sub_seq = 1

    def check_subordinate_access(self) -> None:
        """Subordinates only service calls from inside their own context
        (Section 3.2.1)."""
        current = self.runtime.current_context()
        if current is not self:
            caller = current.uri if current is not None else "<external>"
            raise ConfigurationError(
                f"subordinate of {self.uri} called from {caller}; "
                "subordinates only service calls from their parent and "
                "sibling subordinates"
            )

    def charge_subordinate_call(self) -> None:
        self.runtime.clock.advance(self.runtime.costs.subordinate_call)

    # ------------------------------------------------------------------
    # serving state
    # ------------------------------------------------------------------
    def begin_incoming(self, message: MethodCallMessage | None) -> None:
        if self.busy:
            raise ConfigurationError(
                f"re-entrant call into single-threaded context {self.uri}"
            )
        self.busy = True
        self.current_call = CurrentCall(message)

    def end_incoming(self) -> None:
        self.busy = False
        self.current_call = None
        self.incoming_calls_handled += 1

    def abort_incoming(self) -> None:
        """Unwind a serving frame that died mid-call (a crash signal
        passed through it).  The call never completed, so it does not
        count as handled; clearing ``busy`` lets the caller's retry of
        the SAME call ID back in instead of looking re-entrant."""
        self.busy = False
        self.current_call = None

    # ------------------------------------------------------------------
    # replay support
    # ------------------------------------------------------------------
    def enter_replay(self, replies: list[ReplyMessage]) -> None:
        self.mode = ContextMode.REPLAY
        self.replay_replies = deque(replies)

    def leave_replay(self) -> None:
        self.mode = ContextMode.NORMAL
        self.replay_replies.clear()

    @property
    def replaying(self) -> bool:
        return self.mode is ContextMode.REPLAY

    def __repr__(self) -> str:
        return (
            f"Context(#{self.context_id}, {self.component_type.value}, "
            f"{self.uri}, subs={len(self.subordinates)})"
        )
