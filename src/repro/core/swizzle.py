"""Reference swizzling.

Component references appear in two serialized places:

* **method arguments and return values** — proxies become
  :class:`ComponentRef` on the wire and are resolved back to proxies on
  delivery;
* **checkpointed fields** (paper Section 4.2) — "for a remote component
  reference, we save the component URI; for a local component reference
  (to a component in the same context), we store the component ID.  When
  restoring a pointer field, we re-obtain the pointer using the saved
  URI or component ID."

Swizzling is a deep structural transform over the supported container
types; anything else passes through untouched for the codec to accept or
reject.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..common.ids import ComponentRef, LocalRef
from ..errors import SerializationError
from .component import PersistentComponent, SubordinateHandle
from .proxy import ComponentProxy

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context


def _transform(value: object, leaf: Callable[[object], object]) -> object:
    mapped = leaf(value)
    if mapped is not value:
        return mapped
    if isinstance(value, list):
        return [_transform(item, leaf) for item in value]
    if isinstance(value, tuple):
        return tuple(_transform(item, leaf) for item in value)
    if isinstance(value, dict):
        return {
            _transform(key, leaf): _transform(item, leaf)
            for key, item in value.items()
        }
    if isinstance(value, set):
        return {_transform(item, leaf) for item in value}
    if isinstance(value, frozenset):
        return frozenset(_transform(item, leaf) for item in value)
    return value


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def swizzle_for_message(value: object) -> object:
    """Prepare a value for the wire: proxies become ComponentRefs."""

    def leaf(item: object) -> object:
        if isinstance(item, ComponentProxy):
            return ComponentRef(item.uri)
        if isinstance(item, (PersistentComponent, SubordinateHandle)):
            raise SerializationError(
                "raw component instances and subordinate handles cannot "
                "cross a context boundary; pass a proxy "
                "(component.self_reference()) instead"
            )
        return item

    return _transform(value, leaf)


def unswizzle_for_message(value: object, runtime: Any) -> object:
    """Resolve ComponentRefs in a delivered value back to proxies."""

    def leaf(item: object) -> object:
        if isinstance(item, ComponentRef):
            return runtime.proxy_for(item.uri)
        return item

    return _transform(value, leaf)


# ----------------------------------------------------------------------
# checkpointed fields (Section 4.2)
# ----------------------------------------------------------------------
def swizzle_for_state(value: object, context: "Context") -> object:
    """Prepare a component field for a context state record."""

    def leaf(item: object) -> object:
        if isinstance(item, ComponentProxy):
            return ComponentRef(item.uri)
        if isinstance(item, SubordinateHandle):
            return LocalRef(item.component_lid)
        if isinstance(item, PersistentComponent):
            lid = item._phoenix_lid
            if item._phoenix_context is context:
                return LocalRef(lid)
            raise SerializationError(
                f"field holds a raw component {type(item).__name__}#{lid} "
                "from another context; hold a proxy instead"
            )
        return item

    return _transform(value, leaf)


def unswizzle_for_state(value: object, context: "Context") -> object:
    """Resolve saved references while restoring a context state record."""

    def leaf(item: object) -> object:
        if isinstance(item, ComponentRef):
            return context.runtime.proxy_for(item.uri)
        if isinstance(item, LocalRef):
            lid = item.component_lid
            if context.parent is not None and (
                context.parent._phoenix_lid == lid
            ):
                return context.parent
            component = context.subordinates.get(lid)
            if component is None:
                raise SerializationError(
                    f"state record references unknown local component "
                    f"{lid} in context {context.uri}"
                )
            return SubordinateHandle(component)
        return item

    return _transform(value, leaf)
