"""The Phoenix/App runtime facade.

Owns the simulated cluster, the configuration switches, the component
class registry, the crash injector and the execution stack, and runs the
message pipeline that proxies call into:

    client interceptor -> network -> server interceptor -> method
                       <- network <-

Every hop charges the calibrated cost model; every logging decision goes
through the active :class:`LoggingPolicy`.  Failures surface as
*recognized* exceptions which persistent callers retry with the same
call ID (condition 4), triggering recovery of the crashed process.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..analysis.registry import register_runtime
from ..common.ids import parse_uri
from ..common.messages import MethodCallMessage, ReplyMessage
from ..common.types import ComponentType
from ..errors import (
    ApplicationError,
    ComponentUnavailableError,
    CrashSignal,
    DeploymentError,
    RetriesExhaustedError,
)
from ..log.serialization import serialized_size
from ..recovery.failures import CrashInjector
from ..recovery.recovery_service import RecoveryService
from ..sim.cluster import Cluster
from .component import ComponentClassRegistry
from .config import RuntimeConfig
from .context import SUB_LID_BASE, Context
from .interceptor import ReplayOutcome
from .process import AppProcess, ProcessState
from .proxy import ComponentProxy
from .swizzle import swizzle_for_message, unswizzle_for_message


@dataclass
class RuntimeStats:
    """Aggregated counters for experiment reports."""

    log_forces: int = 0
    log_appends: int = 0
    disk_writes: int = 0
    network_messages: int = 0
    crashes: int = 0
    recoveries: int = 0


class PhoenixRuntime:
    """Facade over a simulated cluster running Phoenix/App."""

    def __init__(
        self,
        cluster: Cluster | None = None,
        config: RuntimeConfig | None = None,
        machine_names: Iterable[str] = ("alpha", "beta"),
    ):
        self.cluster = cluster if cluster is not None else Cluster(machine_names)
        self.config = config if config is not None else RuntimeConfig.optimized()
        self.clock = self.cluster.clock
        self.costs = self.cluster.costs
        self.registry = ComponentClassRegistry()
        self.injector = CrashInjector()
        # Execution stacks are per *session* (the deterministic
        # scheduler's unit of concurrency); key None is the main thread
        # and the serial runtime.  A process-global stack would let one
        # session's unwind pop another session's frame.
        self._exec_stacks: dict[int | None, list[Context]] = {None: []}
        self._processes: dict[tuple[str, str], AppProcess] = {}

        #: The deterministic scheduler, while one is attached (see
        #: repro.concurrency); the sched_yield hooks below no-op
        #: without it, keeping the serial runtime byte-identical.
        self.scheduler = None

        # The LogPlan the sharded runtime routes by (repro.log.sharding).
        # ``install_log_plan`` pins one explicitly (benches and tests
        # build synthetic plans); otherwise the first committed plan is
        # resolved lazily when the first process spawns with
        # ``config.sharded_logging`` on.
        self._log_plan: object | None = None
        self._log_plan_resolved = False

        #: uri -> (component type, read-only method names) for every
        #: deployed Phoenix component.  Populated unconditionally at
        #: creation (no clock charge, no log writes); consulted by the
        #: interceptor only when ``config.static_type_seeding`` is on,
        #: so the default cold-start runs are byte-identical with the
        #: directory present.
        self.static_type_directory: dict[
            str, tuple[ComponentType, frozenset[str]]
        ] = {}

        #: Where external (non-Phoenix) callers live.  ``None`` means
        #: external calls originate on the target's machine (the
        #: paper's "local" micro-benchmark columns); setting a machine
        #: name makes external calls pay network costs (the "remote"
        #: columns and the bookstore's BookBuyer machine).
        self.external_client_machine: str | None = None

        for machine in self.cluster.machines():
            machine.recovery_service = RecoveryService(machine, self)

        register_runtime(self)  # for the pytest conformance oracle

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    @property
    def log_plan(self):
        if self._log_plan is None and not self._log_plan_resolved:
            self._log_plan_resolved = True
            if self.config.sharded_logging:
                from ..analysis.plan.planner import committed_plans

                plans = committed_plans()
                if plans:
                    self._log_plan = plans[0]
        return self._log_plan

    def install_log_plan(self, plan) -> None:
        """Pin the plan the sharded runtime routes by.  Call before
        spawning processes — a process builds its streams at spawn."""
        self._log_plan = plan
        self._log_plan_resolved = True

    def spawn_process(self, name: str, machine: str = "alpha") -> AppProcess:
        host = self.cluster.machine(machine)
        if host.has_process(name):
            raise DeploymentError(
                f"process {name!r} already exists on machine {machine}"
            )
        process = AppProcess(self, host, name)
        self._processes[(machine, name)] = process
        return process

    def process(self, machine: str, name: str) -> AppProcess:
        try:
            return self._processes[(machine, name)]
        except KeyError:
            raise DeploymentError(
                f"no process {name!r} on machine {machine!r}"
            ) from None

    def processes(self) -> list[AppProcess]:
        return list(self._processes.values())

    def proxy_for(self, uri: str) -> ComponentProxy:
        return ComponentProxy(self, uri)

    def note_static_type(
        self,
        uri: str,
        component_type: ComponentType,
        read_only_methods: frozenset[str],
    ) -> None:
        self.static_type_directory[uri] = (
            component_type, read_only_methods,
        )

    def static_type_for(
        self, uri: str
    ) -> tuple[ComponentType, frozenset[str]] | None:
        return self.static_type_directory.get(uri)

    # ------------------------------------------------------------------
    # execution stacks (which context is running right now, per session)
    # ------------------------------------------------------------------
    def _exec_stack_here(self) -> list[Context]:
        scheduler = self.scheduler
        key: int | None = None
        if scheduler is not None and scheduler.active:
            key = scheduler.current_session_id()
        stack = self._exec_stacks.get(key)
        if stack is None:
            stack = self._exec_stacks[key] = []
        return stack

    def current_context(self) -> Context | None:
        stack = self._exec_stack_here()
        return stack[-1] if stack else None

    def push_context(self, context: Context) -> None:
        self._exec_stack_here().append(context)

    def pop_context(self) -> None:
        self._exec_stack_here().pop()

    # ------------------------------------------------------------------
    # scheduler cooperation
    # ------------------------------------------------------------------
    def sched_yield(self, tag: str) -> None:
        """A durability/network boundary: give the deterministic
        scheduler (when attached) a chance to switch sessions."""
        scheduler = self.scheduler
        if scheduler is not None and scheduler.active:
            scheduler.yield_point(tag)

    # ------------------------------------------------------------------
    # crash hooks
    # ------------------------------------------------------------------
    def fire_hook(
        self, point: str, process: AppProcess, context: Context | None = None
    ) -> None:
        """Give the crash injector a chance to kill ``process`` here.

        Hooks are quiet during replay: recovery re-executes application
        code, and injection points belong to the original execution.
        """
        if context is not None and context.replaying:
            return
        self.injector.fire(point, process)

    # ------------------------------------------------------------------
    # the call pipeline
    # ------------------------------------------------------------------
    def invoke_method(
        self,
        uri: str,
        method: str,
        args: tuple,
        kwargs: dict | None = None,
    ) -> object:
        kwargs = kwargs or {}
        machine_name, process_name, lid = parse_uri(uri)
        process = self._processes.get((machine_name, process_name))
        if process is None:
            raise DeploymentError(f"no process behind {uri}")
        caller_ctx = self.current_context()

        # Within a context, method calls are local calls (Section 2.3):
        # a proxy that happens to target the caller's own context short-
        # circuits to a direct invocation with no interception.
        if caller_ctx is not None and caller_ctx.process is process:
            entry = process.component_table.get(lid)
            if (
                entry is not None
                and entry.context_id == caller_ctx.context_id
            ):
                caller_ctx.charge_subordinate_call()
                return getattr(entry.instance, method)(*args, **kwargs)

        phoenix_caller = caller_ctx is not None and caller_ctx.is_phoenix
        try:
            if phoenix_caller:
                return self._phoenix_client_call(
                    caller_ctx, process, lid, uri, method, args, kwargs
                )
            return self._external_client_call(
                caller_ctx, process, lid, uri, method, args, kwargs
            )
        except CrashSignal as signal:
            # A signal for the *caller's* process must unwind further —
            # its process boundary (the _deliver_once frame that entered
            # it) is higher on the Python stack.  Only a top-level
            # external call has no such frame; convert there.
            if caller_ctx is not None:
                raise
            target = getattr(signal, "process", None)
            if target is not None:
                if not getattr(signal, "stale", False):
                    target.crash()
                raise ComponentUnavailableError(
                    uri, f"crashed at {signal.point}"
                ) from None
            raise

    def _phoenix_client_call(
        self,
        caller_ctx: Context,
        process: AppProcess,
        lid: int,
        uri: str,
        method: str,
        args: tuple,
        kwargs: dict,
    ) -> object:
        interceptor = caller_ctx.interceptor
        message, server_type, method_ro = interceptor.prepare_outgoing(
            uri, method, args, kwargs
        )
        if caller_ctx.replaying:
            outcome, logged_reply = interceptor.check_replay(message)
            if outcome is ReplayOutcome.SUPPRESSED:
                return interceptor.reply_value(logged_reply)
            if outcome is ReplayOutcome.EXECUTE_SILENT:
                # A never-logged (functional) reply: re-execute the pure
                # call without leaving replay or logging anything.
                reply = self._deliver_with_retry(
                    caller_ctx, process, lid, message
                )
                interceptor.learn_from_reply(message, reply)
                return interceptor.reply_value(reply)
            # GO_LIVE: the log ran dry; fall through to normal execution.
        interceptor.on_outgoing(message, server_type, method_ro)
        reply = self._deliver_with_retry(caller_ctx, process, lid, message)
        return interceptor.on_reply_received(message, reply)

    def _external_client_call(
        self,
        caller_ctx: Context | None,
        process: AppProcess,
        lid: int,
        uri: str,
        method: str,
        args: tuple,
        kwargs: dict,
    ) -> object:
        message = MethodCallMessage(
            target_uri=uri,
            method=method,
            args=swizzle_for_message(tuple(args)),
            kwargs=swizzle_for_message(
                MethodCallMessage.pack_kwargs(kwargs)
            ),
            call_id=None,
        )
        reply = self._deliver_with_retry(caller_ctx, process, lid, message)
        if reply.is_exception:
            raise ApplicationError(
                reply.exception_message,
                original_type=reply.exception_message.split(":", 1)[0],
            )
        return unswizzle_for_message(reply.value, self)

    def _deliver_with_retry(
        self,
        caller_ctx: Context | None,
        process: AppProcess,
        lid: int,
        message: MethodCallMessage,
    ) -> ReplyMessage:
        phoenix_caller = caller_ctx is not None and caller_ctx.is_phoenix
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._deliver_once(caller_ctx, process, lid, message)
            except (ComponentUnavailableError, ConnectionError) as exc:
                if not phoenix_caller:
                    # No guarantees for external callers; they may retry
                    # manually (and the paper's window of vulnerability
                    # applies).
                    raise
                if self._caller_is_dead(caller_ctx):
                    # The failure took the caller's own process down
                    # (a same-process call): these frames are ghosts of
                    # a crashed execution and must unwind to their own
                    # process boundary instead of retrying.  The signal
                    # is stale — the crash already happened (and under
                    # concurrent sessions the process may by now be
                    # recovering, or recovered); the boundary must not
                    # crash it again.
                    signal = CrashSignal(
                        caller_ctx.process.name, "cascaded crash"
                    )
                    signal.process = caller_ctx.process
                    signal.stale = True
                    raise signal from None
                if attempts > self.config.max_call_retries:
                    raise RetriesExhaustedError(
                        message.target_uri, attempts
                    ) from exc
                # Condition 4: wait a while, then retry the call with
                # the SAME method call ID.
                self.clock.advance(self.costs.retry_backoff)
                if self.config.auto_recover:
                    try:
                        self.restart_process(process)
                    except CrashSignal as signal:
                        # The server crashed again while recovering.  If
                        # the signal is the caller's own (a cascade), it
                        # must keep unwinding; otherwise crash the target
                        # and let the next attempt re-run its recovery.
                        target = getattr(signal, "process", None)
                        if target is None or target is caller_ctx.process:
                            raise
                        target.crash()

    @staticmethod
    def _caller_is_dead(caller_ctx: Context) -> bool:
        """Is this execution a ghost of a crashed incarnation?

        True when the caller's process has crashed, or when recovery has
        already replaced the caller's context with a new generation."""
        process = caller_ctx.process
        if process.state is ProcessState.CRASHED:
            return True
        entry = process.context_table.get(caller_ctx.context_id)
        return entry is None or entry.context_ref is not caller_ctx

    def _deliver_once(
        self,
        caller_ctx: Context | None,
        process: AppProcess,
        lid: int,
        message: MethodCallMessage,
    ) -> ReplyMessage:
        if caller_ctx is not None:
            source_machine = caller_ctx.process.machine.name
        else:
            source_machine = (
                self.external_client_machine or process.machine.name
            )
        target_machine = process.machine.name

        self.cluster.network.transmit(
            source_machine, target_machine, serialized_size(message)
        )
        self.sched_yield(f"net.request:{process.name}")
        scheduler = self.scheduler
        if scheduler is None or not scheduler.active:
            scheduler = None
        entered = scheduler.enter_process(process) if scheduler else False
        claimed: Context | None = None
        try:
            try:
                while True:
                    if process.state is ProcessState.CRASHED:
                        if not self.config.auto_recover:
                            raise ComponentUnavailableError(
                                message.target_uri, "process crashed"
                            )
                        self.restart_process(process)
                    if (
                        scheduler is not None
                        and process.state is ProcessState.RECOVERING
                        and not scheduler.is_recovery_driver(process)
                    ):
                        # Another session is driving this process's
                        # recovery; park until it finishes (or the
                        # process crashes again), then re-check.
                        scheduler.block_until(
                            lambda: process.state
                            is not ProcessState.RECOVERING,
                            tag=f"recovering:{process.name}",
                        )
                        continue
                    break
                pending = process.pending_recovery
                if pending is not None:
                    # On-demand recovery: the admission rule consults
                    # the target component's watermark (never a global
                    # RECOVERING flag) and applies its frame chain
                    # before the call is delivered, so duplicate
                    # detection sees the regenerated reply.
                    pending.ensure_component(
                        lid if lid < SUB_LID_BASE else lid // SUB_LID_BASE
                    )
                context = process.find_context(lid)
                if context.crashed:
                    if not self.config.auto_recover:
                        raise ComponentUnavailableError(
                            message.target_uri, "context crashed"
                        )
                    self.recover_context(context)
                base_cost = (
                    self.costs.marshal_by_ref_call
                    if context.component_type is ComponentType.MARSHAL_BY_REF
                    else self.costs.context_bound_call
                )
                self.clock.advance(base_cost)
                if not context.is_phoenix:
                    if context.install_interceptors:
                        self.clock.advance(self.costs.interception_overhead)
                    reply = self._invoke_native(context, message)
                else:
                    if lid != context.context_id:
                        context.check_subordinate_access()
                    if scheduler is not None and scheduler.acquire_context(
                        context
                    ):
                        # Contexts are single-threaded: one session
                        # serves a context at a time; the rest wait at
                        # the boundary instead of looking re-entrant.
                        claimed = context
                    if (
                        process.state is ProcessState.RECOVERING
                        and process.active_recovery is not None
                    ):
                        # A live call arrived mid-recovery (another
                        # context's replay went live): finish this
                        # context's own pending replay first so duplicate
                        # detection finds the regenerated reply.
                        process.active_recovery.drain_context(
                            context.context_id
                        )
                    reply = context.interceptor.handle_incoming(message)
            except CrashSignal as signal:
                if getattr(signal, "process", None) is process:
                    if not getattr(signal, "stale", False):
                        process.crash()
                    raise ComponentUnavailableError(
                        message.target_uri, f"crashed at {signal.point}"
                    ) from None
                raise
        finally:
            if claimed is not None and scheduler is not None:
                scheduler.release_context(claimed)
            if entered:
                scheduler.exit_process()

        self.cluster.network.transmit(
            target_machine, source_machine, serialized_size(reply)
        )
        # An after-send crash: the reply is already with the caller, the
        # server dies afterwards (Figure 2, failure point 3).
        self.injector.fire_silent("reply.after_send", process)
        if (
            caller_ctx is not None
            and caller_ctx.process is process
            and process.state is ProcessState.CRASHED
        ):
            # Same-process caller: the after-send crash killed it too.
            # Stale: the process is already crashed — the boundary
            # converts without crashing whatever incarnation is live by
            # the time the unwind reaches it.
            signal = CrashSignal(process.name, "reply.after_send")
            signal.process = process
            signal.stale = True
            raise signal
        self.sched_yield(f"net.reply:{process.name}")
        return reply

    def _invoke_native(
        self, context: Context, message: MethodCallMessage
    ) -> ReplyMessage:
        """Plain .NET objects of Table 4: no logging, no guarantees."""
        self.push_context(context)
        try:
            bound = getattr(context.parent, message.method)
            value = bound(
                *unswizzle_for_message(message.args, self),
                **dict(
                    unswizzle_for_message(message.kwargs, self)
                ),
            )
            return ReplyMessage(
                call_id=message.call_id, value=swizzle_for_message(value)
            )
        except Exception as exc:
            return ReplyMessage(
                call_id=message.call_id,
                is_exception=True,
                exception_message=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self.pop_context()

    # ------------------------------------------------------------------
    # failure & recovery entry points
    # ------------------------------------------------------------------
    def crash_process(self, process: AppProcess) -> None:
        """Kill a process immediately (tests and benchmarks)."""
        process.crash()

    def crash_context(self, context: Context) -> None:
        """Kill a single context; its process stays up."""
        context.crashed = True
        context.parent = None
        context.subordinates = {}
        context.busy = False
        context.current_call = None

    def restart_process(self, process: AppProcess) -> None:
        """Restart a crashed process.  With eager recovery this replays
        the whole log; with ``config.on_demand_recovery`` it returns as
        soon as the analysis pass admits new calls — the remaining
        replay happens lazily on first touch and in background drain
        workers."""
        if process.state is not ProcessState.CRASHED:
            return
        scheduler = self.scheduler
        if scheduler is not None and scheduler.active:
            # Mark this session as the recovery driver so concurrent
            # sessions calling into the process park at the boundary
            # instead of observing RECOVERING state mid-replay.
            with scheduler.driving_recovery(process):
                process.machine.recovery_service.restart(process)
        else:
            process.machine.recovery_service.restart(process)

    def ensure_recovered(self, process: AppProcess) -> None:
        """The full-recovery barrier: restart if crashed *and* drain any
        on-demand replay backlog.  Workloads, benchmarks and state
        capture use this when they need every component materialized."""
        self.restart_process(process)
        pending = process.pending_recovery
        if pending is not None:
            pending.drain_all()

    def recover_context(self, context: Context) -> None:
        from ..recovery.recovery_manager import recover_context

        recover_context(context)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> RuntimeStats:
        totals = RuntimeStats()
        for process in self._processes.values():
            for stream in process.streams:
                totals.log_forces += stream.log.stats.forces_performed
                totals.log_appends += stream.log.stats.appends
            totals.crashes += process.crash_count
            totals.recoveries += process.recovery_count
        for machine in self.cluster.machines():
            totals.disk_writes += machine.disk.stats.writes
        totals.network_messages = self.cluster.network.stats.messages
        return totals

    @property
    def now(self) -> float:
        return self.clock.now

    def describe(self) -> str:
        """A human-readable fleet report: machines, processes, contexts,
        log and disk statistics.  Operator/debugging surface; examples
        print it after a run."""
        lines = [f"runtime at t={self.now / 1000:.3f}s"]
        for machine in self.cluster.machines():
            disk = machine.disk.stats
            lines.append(
                f"  machine {machine.name}: disk writes={disk.writes} "
                f"(media={disk.media_writes}, cached={disk.cached_writes}), "
                f"busy={disk.busy_ms:.0f}ms"
            )
            for process in machine.processes():
                streams = process.streams
                forces = sum(
                    s.log.stats.forces_performed for s in streams
                )
                appends = sum(s.log.stats.appends for s in streams)
                lines.append(
                    f"    process {process.name} [{process.state.value}] "
                    f"pid={process.logical_pid}: "
                    f"forces={forces}, "
                    f"appends={appends}, "
                    f"crashes={process.crash_count}, "
                    f"recoveries={process.recovery_count}"
                )
                for entry in sorted(process.context_table.values(),
                                    key=lambda e: e.context_id):
                    context = entry.context_ref
                    if context is None:
                        continue
                    parent = (
                        type(context.parent).__name__
                        if context.parent is not None
                        else "?"
                    )
                    lines.append(
                        f"      context #{entry.context_id} "
                        f"{parent} ({context.component_type.value}): "
                        f"{context.incoming_calls_handled} calls, "
                        f"{len(context.subordinates)} subordinates"
                    )
        network = self.cluster.network.stats
        lines.append(
            f"  network: {network.messages} messages, "
            f"{network.bytes} bytes, {network.busy_ms:.1f}ms"
        )
        return "\n".join(lines)
