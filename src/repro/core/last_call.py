"""The last-call table (paper Sections 2.3 and 4.1).

Duplicate elimination for condition 3: method call IDs and their replies
are stored indexed by the first three parts of the globally unique ID
(machine, process LID, component LID).  Only the *last* call from each
persistent client is kept — if a client makes a new call, condition 1
says it could recover its own state past the previous call, so the
earlier entry is no longer needed.

The table is process-wide and shared among all contexts (Section 4.1),
and additionally keeps the list of entries per context, which context
state saving uses to persist the replies that replay could no longer
regenerate (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..common.ids import GlobalCallId
from ..common.messages import ReplyMessage
from ..errors import InvariantViolationError
from .tables import NO_LSN

CallerKey = tuple[str, int, int]


@dataclass
class LastCallEntry:
    """Paper Table 1: method call globally unique ID, a pointer to the
    reply message and/or an LSN for the reply message log record."""

    call_id: GlobalCallId
    context_id: int
    reply: ReplyMessage | None = None
    reply_lsn: int = NO_LSN
    in_progress: bool = True  # reply not yet produced


class DuplicateCall(Exception):
    """Internal signal: the incoming call was already executed; carries
    the entry whose stored reply must be returned.  (An exception rather
    than a return flag so interceptor code reads linearly.)"""

    def __init__(self, entry: LastCallEntry):
        super().__init__(f"duplicate call {entry.call_id}")
        self.entry = entry


class LastCallTable:
    """Process-wide duplicate-detection table."""

    def __init__(self) -> None:
        self._entries: dict[CallerKey, LastCallEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, caller_key: CallerKey) -> LastCallEntry | None:
        return self._entries.get(caller_key)

    def check_incoming(self, call_id: GlobalCallId) -> LastCallEntry | None:
        """Condition-3 check for an incoming call.

        Returns the stored entry if this exact call was seen before
        (the caller retried), ``None`` if the call is new.  A call ID
        *older* than the stored one violates the single-threaded-client
        assumption and is reported as an invariant violation.
        """
        entry = self._entries.get(call_id.caller_key)
        if entry is None:
            return None
        if call_id == entry.call_id:
            return entry
        if call_id.seq < entry.call_id.seq:
            raise InvariantViolationError(
                f"incoming call {call_id} is older than the last call "
                f"{entry.call_id} from the same client"
            )
        return None

    def abort_call(self, call_id: GlobalCallId) -> None:
        """Drop the in-progress entry of a serving frame that died
        mid-call while this process survived (a dead *caller's* crash
        signal unwound through it).  The call never produced a reply, so
        the entry can only poison the caller's retry — the replayed call
        re-arrives with the same ID and must execute as new, not trip
        the duplicate-while-executing invariant.  Completed entries are
        kept: the retry needs their stored reply."""
        entry = self._entries.get(call_id.caller_key)
        if (
            entry is not None
            and entry.call_id == call_id
            and entry.in_progress
        ):
            del self._entries[call_id.caller_key]

    def begin_call(self, call_id: GlobalCallId, context_id: int) -> LastCallEntry:
        """Record that a new last call is being executed (replaces any
        earlier entry from the same client)."""
        entry = LastCallEntry(call_id=call_id, context_id=context_id)
        self._entries[call_id.caller_key] = entry
        return entry

    def record_reply(
        self,
        call_id: GlobalCallId,
        reply: ReplyMessage,
        reply_lsn: int = NO_LSN,
    ) -> LastCallEntry:
        """Store the reply for the last call of ``call_id``'s client."""
        entry = self._entries.get(call_id.caller_key)
        if entry is None or entry.call_id != call_id:
            if entry is not None and entry.call_id.seq > call_id.seq:
                # A newer call from this caller is already tabled (e.g.
                # recovery replaying an older context's last call after a
                # state-record restore seeded the newer entry); condition
                # 3 keeps only the last call per client — never regress.
                return entry
            # Recovery can legitimately record a reply for a call whose
            # begin was never registered in this incarnation.
            entry = LastCallEntry(
                call_id=call_id,
                context_id=NO_LSN,
            )
            self._entries[call_id.caller_key] = entry
        entry.reply = reply
        if reply_lsn != NO_LSN:
            entry.reply_lsn = reply_lsn
        entry.in_progress = False
        return entry

    def seed(
        self,
        caller_key: CallerKey,
        call_id: GlobalCallId,
        context_id: int,
        reply: ReplyMessage | None = None,
        reply_lsn: int = NO_LSN,
    ) -> LastCallEntry:
        """Install an entry during recovery (from a state record, a
        checkpoint record, or a scanned incoming-call record), keeping
        the newest call per client."""
        existing = self._entries.get(caller_key)
        if existing is not None and existing.call_id.seq > call_id.seq:
            return existing
        if existing is not None and existing.call_id == call_id:
            if reply is not None:
                existing.reply = reply
                existing.in_progress = False
            if reply_lsn != NO_LSN:
                existing.reply_lsn = reply_lsn
            if context_id != NO_LSN:
                existing.context_id = context_id
            return existing
        entry = LastCallEntry(
            call_id=call_id,
            context_id=context_id,
            reply=reply,
            reply_lsn=reply_lsn,
            in_progress=reply is None and reply_lsn == NO_LSN,
        )
        self._entries[caller_key] = entry
        return entry

    def entries_for_context(self, context_id: int) -> list[LastCallEntry]:
        """All entries whose calls were served by ``context_id`` —
        Section 4.1: 'the last call table also keeps the list of last
        call entries associated with every context, which is used in
        context saving'."""
        return [
            entry
            for entry in self._entries.values()
            if entry.context_id == context_id
        ]

    def all_entries(self) -> list[tuple[CallerKey, LastCallEntry]]:
        return list(self._entries.items())
