"""The remote component type table (paper Section 3.4).

"To determine server component types, we keep a remote component type
table.  Initially, the types of server components (targets of outgoing
calls) are unknown, and the most conservative logging algorithms are
used.  From reply messages, we gradually learn server component types."

Besides the component type, the table learns which remote *methods* are
read-only (Section 3.3), since a caller must know that before deciding
not to force.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.types import ComponentType


@dataclass
class RemoteTypeEntry:
    component_type: ComponentType
    read_only_methods: set[str] = field(default_factory=set)
    non_read_only_methods: set[str] = field(default_factory=set)


class RemoteComponentTypeTable:
    """Learned types of remote components, indexed by URI."""

    def __init__(self) -> None:
        self._entries: dict[str, RemoteTypeEntry] = {}

    def known_type(self, uri: str) -> ComponentType | None:
        entry = self._entries.get(uri)
        return entry.component_type if entry else None

    def knows(self, uri: str) -> bool:
        return uri in self._entries

    def method_read_only(self, uri: str, method: str) -> bool | None:
        """True/False if learned, None if not yet known."""
        entry = self._entries.get(uri)
        if entry is None:
            return None
        if method in entry.read_only_methods:
            return True
        if method in entry.non_read_only_methods:
            return False
        return None

    def learn(
        self,
        uri: str,
        component_type: ComponentType,
        method: str | None = None,
        method_read_only: bool = False,
    ) -> None:
        """Record what a reply message taught us about a server."""
        entry = self._entries.get(uri)
        if entry is None:
            entry = RemoteTypeEntry(component_type=component_type)
            self._entries[uri] = entry
        else:
            entry.component_type = component_type
        if method is not None:
            if method_read_only:
                entry.read_only_methods.add(method)
                entry.non_read_only_methods.discard(method)
            else:
                entry.non_read_only_methods.add(method)
                entry.read_only_methods.discard(method)

    def seed(
        self,
        uri: str,
        component_type: ComponentType,
        read_only_methods: frozenset[str] | None = None,
    ) -> None:
        """Install a type without a reply having taught it: during
        recovery from a process checkpoint, or from the static type
        directory when warm-starting (``config.static_type_seeding``)."""
        if uri not in self._entries:
            self._entries[uri] = RemoteTypeEntry(
                component_type=component_type,
                read_only_methods=set(read_only_methods or ()),
            )

    def snapshot(self) -> list[tuple[str, ComponentType]]:
        """Type entries for a process checkpoint (method knowledge is a
        pure optimization and is relearned, as in the paper)."""
        return sorted(
            (uri, entry.component_type)
            for uri, entry in self._entries.items()
        )

    def __len__(self) -> int:
        return len(self._entries)
