"""Log inspection.

Operational tooling for looking inside a process's log: per-kind record
counts, per-context activity, the checkpoint chain, and byte accounting.
Used by tests to assert log structure and by operators (and the curious)
to see exactly what each logging algorithm writes.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field

from ..common.messages import MessageKind
from .log_manager import LogManager
from .records import (
    BeginCheckpointRecord,
    CheckpointContextTableRecord,
    CheckpointLastCallRecord,
    CheckpointRemoteTypeRecord,
    ContextStateRecord,
    CreationRecord,
    EndCheckpointRecord,
    LastCallReplyRecord,
    MessageRecord,
)


@dataclass
class ContextActivity:
    """What one context has on the log."""

    context_id: int
    creations: int = 0
    incoming_calls: int = 0
    replies_to_incoming: int = 0
    outgoing_calls: int = 0
    replies_from_outgoing: int = 0
    state_records: int = 0
    last_call_replies: int = 0

    @property
    def total(self) -> int:
        return (
            self.creations
            + self.incoming_calls
            + self.replies_to_incoming
            + self.outgoing_calls
            + self.replies_from_outgoing
            + self.state_records
            + self.last_call_replies
        )


@dataclass
class CheckpointChain:
    """One begin..end checkpoint bracket found on the log."""

    begin_lsn: int
    end_lsn: int
    context_entries: int = 0
    remote_type_entries: int = 0
    last_call_entries: int = 0
    complete: bool = False


@dataclass
class LogSummary:
    """Everything :func:`summarize_log` found."""

    process_name: str
    base_lsn: int = 0
    stable_lsn: int = 0
    record_count: int = 0
    records_by_kind: dict = field(default_factory=dict)
    messages_by_kind: dict = field(default_factory=dict)
    short_records: int = 0
    contexts: dict = field(default_factory=dict)  # id -> ContextActivity
    checkpoints: list = field(default_factory=list)
    published_checkpoint_lsn: int | None = None

    def context(self, context_id: int) -> ContextActivity:
        if context_id not in self.contexts:
            self.contexts[context_id] = ContextActivity(context_id)
        return self.contexts[context_id]


def summarize_log(log: LogManager) -> LogSummary:
    """Scan a log end to end and account for every record."""
    summary = LogSummary(
        process_name=log.process_name,
        base_lsn=log.base_lsn,
        stable_lsn=log.stable_lsn,
        published_checkpoint_lsn=log.read_well_known_lsn(),
    )
    by_kind: TallyCounter = TallyCounter()
    message_kinds: TallyCounter = TallyCounter()
    open_checkpoint: CheckpointChain | None = None

    for lsn, record in log.scan():
        summary.record_count += 1
        by_kind[type(record).__name__] += 1
        if isinstance(record, MessageRecord):
            message_kinds[record.kind.name] += 1
            if record.short:
                summary.short_records += 1
            activity = summary.context(record.context_id)
            if record.kind is MessageKind.INCOMING_CALL:
                activity.incoming_calls += 1
            elif record.kind is MessageKind.REPLY_TO_INCOMING:
                activity.replies_to_incoming += 1
            elif record.kind is MessageKind.OUTGOING_CALL:
                activity.outgoing_calls += 1
            else:
                activity.replies_from_outgoing += 1
        elif isinstance(record, CreationRecord):
            summary.context(record.context_id).creations += 1
        elif isinstance(record, ContextStateRecord):
            summary.context(record.context_id).state_records += 1
        elif isinstance(record, LastCallReplyRecord):
            summary.context(record.context_id).last_call_replies += 1
        elif isinstance(record, BeginCheckpointRecord):
            open_checkpoint = CheckpointChain(begin_lsn=lsn, end_lsn=-1)
            summary.checkpoints.append(open_checkpoint)
        elif isinstance(record, CheckpointContextTableRecord):
            if open_checkpoint is not None:
                open_checkpoint.context_entries += len(record.entries)
        elif isinstance(record, CheckpointRemoteTypeRecord):
            if open_checkpoint is not None:
                open_checkpoint.remote_type_entries += len(record.entries)
        elif isinstance(record, CheckpointLastCallRecord):
            if open_checkpoint is not None:
                open_checkpoint.last_call_entries += len(record.entries)
        elif isinstance(record, EndCheckpointRecord):
            if (
                open_checkpoint is not None
                and record.begin_lsn == open_checkpoint.begin_lsn
            ):
                open_checkpoint.end_lsn = lsn
                open_checkpoint.complete = True
            open_checkpoint = None

    summary.records_by_kind = dict(by_kind)
    summary.messages_by_kind = dict(message_kinds)
    return summary


def format_summary(summary: LogSummary) -> str:
    """A human-readable report."""
    lines = [
        f"log of process {summary.process_name}",
        f"  LSN range: [{summary.base_lsn}, {summary.stable_lsn}) "
        f"({summary.stable_lsn - summary.base_lsn} stable bytes)",
        f"  records: {summary.record_count}",
    ]
    for name in sorted(summary.records_by_kind):
        lines.append(f"    {name}: {summary.records_by_kind[name]}")
    if summary.messages_by_kind:
        lines.append("  messages by kind:")
        for name in sorted(summary.messages_by_kind):
            lines.append(f"    {name}: {summary.messages_by_kind[name]}")
    if summary.short_records:
        lines.append(f"  short records: {summary.short_records}")
    if summary.contexts:
        lines.append("  contexts:")
        for context_id in sorted(summary.contexts):
            activity = summary.contexts[context_id]
            lines.append(
                f"    #{context_id}: {activity.incoming_calls} in, "
                f"{activity.replies_from_outgoing} replies logged, "
                f"{activity.state_records} state records"
            )
    if summary.checkpoints:
        complete = sum(1 for c in summary.checkpoints if c.complete)
        lines.append(
            f"  checkpoints: {len(summary.checkpoints)} "
            f"({complete} complete)"
        )
    if summary.published_checkpoint_lsn is not None:
        lines.append(
            f"  published checkpoint LSN: "
            f"{summary.published_checkpoint_lsn}"
        )
    return "\n".join(lines)
