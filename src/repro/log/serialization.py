"""Binary codec for log records and checkpointed component state.

The log holds real bytes: every record is serialized with this codec,
framed with a length + CRC32 header, and genuinely decoded again during
recovery.  That keeps the recovery path honest (it reads what normal
execution wrote, not in-memory objects) and gives the log the torn-tail
detection that a real write-ahead log needs.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``, ``tuple``, ``dict``, ``set``, ``frozenset``, plus
the library's wire types (:class:`GlobalCallId`, :class:`ComponentRef`,
:class:`LocalRef`, :class:`ComponentType`, :class:`SenderInfo`, and the
two message classes).  Component fields that fall outside this set fail
checkpointing with a clear :class:`SerializationError` — the same
contract .NET serialization imposed on the original system.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Iterator

from ..common.ids import ComponentRef, GlobalCallId, LocalRef
from ..common.messages import MethodCallMessage, ReplyMessage, SenderInfo
from ..common.types import ComponentType
from ..errors import LogCorruptionError, SerializationError

# --- value tags -------------------------------------------------------
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_DICT = b"M"
_T_SET = b"E"
_T_FROZENSET = b"Z"
_T_CALL_ID = b"K"
_T_COMPONENT_REF = b"R"
_T_LOCAL_REF = b"r"
_T_COMPONENT_TYPE = b"Y"
_T_SENDER_INFO = b"A"
_T_METHOD_CALL = b"C"
_T_REPLY = b"P"

_MAX_INT_BYTES = 64  # generous: 512-bit integers


class Writer:
    """Appends primitives and tagged values to a byte buffer.

    With ``out`` the writer appends directly to a caller-owned
    ``bytearray`` (the log manager passes its volatile buffer so record
    encoding never materializes an intermediate ``bytes`` object);
    without it the writer owns a fresh buffer.
    """

    def __init__(self, out: bytearray | None = None) -> None:
        self._buffer = out if out is not None else bytearray()
        self._base = len(self._buffer)

    def getvalue(self) -> bytes:
        return bytes(self._buffer[self._base:])

    def __len__(self) -> int:
        return len(self._buffer) - self._base

    # -- primitives ----------------------------------------------------
    def raw(self, data: bytes) -> None:
        self._buffer.extend(data)

    def u8(self, value: int) -> None:
        self.raw(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        self.raw(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self.raw(struct.pack("<Q", value))

    def f64(self, value: float) -> None:
        self.raw(struct.pack("<d", value))

    def text(self, value: str) -> None:
        data = value.encode("utf-8")
        self.u32(len(data))
        self.raw(data)

    def blob(self, value: bytes) -> None:
        self.u32(len(value))
        self.raw(bytes(value))

    def signed(self, value: int) -> None:
        """Arbitrary-precision signed integer (length-prefixed)."""
        nbytes = max(1, (value.bit_length() + 8) // 8)
        if nbytes > _MAX_INT_BYTES:
            raise SerializationError(f"integer too large to log: {value!r}")
        self.u8(nbytes)
        self.raw(value.to_bytes(nbytes, "little", signed=True))

    # -- tagged values ---------------------------------------------------
    def value(self, obj: object) -> None:
        """Serialize a tagged value of any supported type."""
        if obj is None:
            self.raw(_T_NONE)
        elif obj is True:
            self.raw(_T_TRUE)
        elif obj is False:
            self.raw(_T_FALSE)
        elif type(obj) is int:
            self.raw(_T_INT)
            self.signed(obj)
        elif type(obj) is float:
            self.raw(_T_FLOAT)
            self.f64(obj)
        elif type(obj) is str:
            self.raw(_T_STR)
            self.text(obj)
        elif type(obj) in (bytes, bytearray):
            self.raw(_T_BYTES)
            self.blob(bytes(obj))
        elif type(obj) is list:
            self.raw(_T_LIST)
            self._sequence(obj)
        elif type(obj) is tuple:
            self.raw(_T_TUPLE)
            self._sequence(obj)
        elif type(obj) is dict:
            self.raw(_T_DICT)
            self.u32(len(obj))
            for key, item in obj.items():
                self.value(key)
                self.value(item)
        elif type(obj) is set:
            self.raw(_T_SET)
            self._sequence(_stable_order(obj))
        elif type(obj) is frozenset:
            self.raw(_T_FROZENSET)
            self._sequence(_stable_order(obj))
        elif type(obj) is GlobalCallId:
            self.raw(_T_CALL_ID)
            self.call_id(obj)
        elif type(obj) is ComponentRef:
            self.raw(_T_COMPONENT_REF)
            self.text(obj.uri)
        elif type(obj) is LocalRef:
            self.raw(_T_LOCAL_REF)
            self.signed(obj.component_lid)
        elif type(obj) is ComponentType:
            self.raw(_T_COMPONENT_TYPE)
            self.text(obj.wire_value)
        elif type(obj) is SenderInfo:
            self.raw(_T_SENDER_INFO)
            self.sender_info(obj)
        elif type(obj) is MethodCallMessage:
            self.raw(_T_METHOD_CALL)
            self.method_call(obj)
        elif type(obj) is ReplyMessage:
            self.raw(_T_REPLY)
            self.reply(obj)
        else:
            raise SerializationError(
                f"cannot serialize {type(obj).__name__} value {obj!r}; "
                "persistent component fields and method arguments must be "
                "built from plain data types and component references"
            )

    def _sequence(self, items) -> None:
        items = list(items)
        self.u32(len(items))
        for item in items:
            self.value(item)

    # -- composite wire types -------------------------------------------
    def call_id(self, call_id: GlobalCallId) -> None:
        self.text(call_id.machine)
        self.signed(call_id.process_lid)
        self.signed(call_id.component_lid)
        self.signed(call_id.seq)

    def optional_call_id(self, call_id: GlobalCallId | None) -> None:
        if call_id is None:
            self.u8(0)
        else:
            self.u8(1)
            self.call_id(call_id)

    def sender_info(self, info: SenderInfo) -> None:
        self.text(info.component_type.wire_value)
        self.text(info.component_uri)
        self.u8(1 if info.knows_receiver else 0)

    def optional_sender_info(self, info: SenderInfo | None) -> None:
        if info is None:
            self.u8(0)
        else:
            self.u8(1)
            self.sender_info(info)

    def method_call(self, msg: MethodCallMessage) -> None:
        self.text(msg.target_uri)
        self.text(msg.method)
        self.optional_call_id(msg.call_id)
        self.optional_sender_info(msg.sender)
        self.u8(1 if msg.method_read_only else 0)
        self.value(tuple(msg.args))
        self.value(tuple(msg.kwargs))

    def reply(self, msg: ReplyMessage) -> None:
        self.optional_call_id(msg.call_id)
        self.u8(1 if msg.is_exception else 0)
        self.text(msg.exception_message)
        self.optional_sender_info(msg.sender)
        self.u8(1 if msg.method_read_only else 0)
        self.value(msg.value)


def _stable_order(items) -> list:
    """Deterministic ordering for sets (sorted by serialized bytes)."""

    def key(item: object) -> bytes:
        writer = Writer()
        writer.value(item)
        return writer.getvalue()

    return sorted(items, key=key)


class Reader:
    """Decodes what :class:`Writer` wrote."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    # -- primitives ----------------------------------------------------
    def raw(self, length: int) -> bytes:
        end = self._pos + length
        if end > len(self._data):
            raise LogCorruptionError(
                f"truncated value: wanted {length} bytes at {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self.raw(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.raw(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.raw(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def text(self) -> str:
        length = self.u32()
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogCorruptionError(
                f"invalid UTF-8 in value at {self._pos}: {exc}"
            ) from None

    def blob(self) -> bytes:
        length = self.u32()
        return self.raw(length)

    def signed(self) -> int:
        nbytes = self.u8()
        return int.from_bytes(self.raw(nbytes), "little", signed=True)

    # -- tagged values ---------------------------------------------------
    def value(self) -> object:
        tag = self.raw(1)
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return self.signed()
        if tag == _T_FLOAT:
            return self.f64()
        if tag == _T_STR:
            return self.text()
        if tag == _T_BYTES:
            return self.blob()
        if tag == _T_LIST:
            return list(self._sequence())
        if tag == _T_TUPLE:
            return tuple(self._sequence())
        if tag == _T_DICT:
            count = self.u32()
            return {self.value(): self.value() for _ in range(count)}
        if tag == _T_SET:
            return set(self._sequence())
        if tag == _T_FROZENSET:
            return frozenset(self._sequence())
        if tag == _T_CALL_ID:
            return self.call_id()
        if tag == _T_COMPONENT_REF:
            return ComponentRef(self.text())
        if tag == _T_LOCAL_REF:
            return LocalRef(self.signed())
        if tag == _T_COMPONENT_TYPE:
            return ComponentType.from_wire(self.text())
        if tag == _T_SENDER_INFO:
            return self.sender_info()
        if tag == _T_METHOD_CALL:
            return self.method_call()
        if tag == _T_REPLY:
            return self.reply()
        raise LogCorruptionError(f"unknown value tag {tag!r} at {self._pos}")

    def _sequence(self) -> list:
        count = self.u32()
        return [self.value() for _ in range(count)]

    # -- composite wire types -------------------------------------------
    def call_id(self) -> GlobalCallId:
        return GlobalCallId(
            machine=self.text(),
            process_lid=self.signed(),
            component_lid=self.signed(),
            seq=self.signed(),
        )

    def optional_call_id(self) -> GlobalCallId | None:
        return self.call_id() if self.u8() else None

    def sender_info(self) -> SenderInfo:
        return SenderInfo(
            component_type=ComponentType.from_wire(self.text()),
            component_uri=self.text(),
            knows_receiver=bool(self.u8()),
        )

    def optional_sender_info(self) -> SenderInfo | None:
        return self.sender_info() if self.u8() else None

    def method_call(self) -> MethodCallMessage:
        target_uri = self.text()
        method = self.text()
        call_id = self.optional_call_id()
        sender = self.optional_sender_info()
        method_read_only = bool(self.u8())
        args = self.value()
        kwargs = self.value()
        return MethodCallMessage(
            target_uri=target_uri,
            method=method,
            args=tuple(args),
            kwargs=tuple(tuple(pair) for pair in kwargs),
            call_id=call_id,
            sender=sender,
            method_read_only=method_read_only,
        )

    def reply(self) -> ReplyMessage:
        call_id = self.optional_call_id()
        is_exception = bool(self.u8())
        exception_message = self.text()
        sender = self.optional_sender_info()
        method_read_only = bool(self.u8())
        value = self.value()
        return ReplyMessage(
            call_id=call_id,
            value=value,
            is_exception=is_exception,
            exception_message=exception_message,
            sender=sender,
            method_read_only=method_read_only,
        )


def encode_value(obj: object) -> bytes:
    """Serialize one value (convenience for tests and size estimates)."""
    writer = Writer()
    writer.value(obj)
    return writer.getvalue()


def decode_value(data: bytes) -> object:
    reader = Reader(data)
    obj = reader.value()
    if not reader.at_end():
        raise LogCorruptionError(
            f"{len(data) - reader.position} trailing bytes after value"
        )
    return obj


def serialized_size(obj: object) -> int:
    """Exact on-wire size of a value (used for network/disk charging)."""
    return len(encode_value(obj))


# ----------------------------------------------------------------------
# record framing: [magic u16][length u32][crc32 u32][payload]
# ----------------------------------------------------------------------
_FRAME_MAGIC = 0x9A7C
_FRAME_HEADER = struct.Struct("<HII")


def frame(payload: bytes) -> bytes:
    """Wrap a record payload in the CRC32 frame the log writes."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _FRAME_HEADER.pack(_FRAME_MAGIC, len(payload), crc) + payload


def read_frame(data: bytes, offset: int) -> tuple[bytes, int] | None:
    """Read one frame at ``offset``.

    Returns ``(payload, next_offset)``, or ``None`` for a clean end of
    log (no bytes past ``offset``).  A partial or corrupt frame raises
    :class:`LogCorruptionError`; the log manager treats corruption at the
    *tail* as a torn write and truncates, but corruption in the interior
    is surfaced to the operator.
    """
    if offset == len(data):
        return None
    if offset + _FRAME_HEADER.size > len(data):
        raise LogCorruptionError(f"torn frame header at offset {offset}")
    magic, length, crc = _FRAME_HEADER.unpack_from(data, offset)
    if magic != _FRAME_MAGIC:
        raise LogCorruptionError(f"bad frame magic at offset {offset}")
    start = offset + _FRAME_HEADER.size
    end = start + length
    if end > len(data):
        raise LogCorruptionError(f"torn frame payload at offset {offset}")
    payload = bytes(data[start:end])
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise LogCorruptionError(f"CRC mismatch at offset {offset}")
    return payload, end


def frame_overhead() -> int:
    return _FRAME_HEADER.size


def read_frame_incremental(fetch, offset: int, size: int):
    """Read one frame using an incremental ``fetch(offset, length)``.

    Same contract and failure modes as :func:`read_frame` against a file
    of ``size`` bytes, but fetches only the frame's own bytes (header,
    then payload) instead of requiring the whole file in memory.  The
    log manager uses it for point reads that miss its LSN index.
    """
    if offset == size:
        return None
    if offset + _FRAME_HEADER.size > size:
        raise LogCorruptionError(f"torn frame header at offset {offset}")
    header = fetch(offset, _FRAME_HEADER.size)
    magic, length, crc = _FRAME_HEADER.unpack(header)
    if magic != _FRAME_MAGIC:
        raise LogCorruptionError(f"bad frame magic at offset {offset}")
    start = offset + _FRAME_HEADER.size
    end = start + length
    if end > size:
        raise LogCorruptionError(f"torn frame payload at offset {offset}")
    payload = fetch(start, length)
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise LogCorruptionError(f"CRC mismatch at offset {offset}")
    return payload, end


_HEADER_PLACEHOLDER = bytes(_FRAME_HEADER.size)


def begin_frame(buffer: bytearray) -> int:
    """Reserve a frame header at the end of ``buffer``.

    Zero-copy counterpart of :func:`frame`: the caller encodes the
    payload directly into ``buffer`` (e.g. with ``Writer(out=buffer)``)
    and then calls :func:`end_frame`, which backfills the header in
    place.  Returns the header's offset for :func:`end_frame`.
    """
    offset = len(buffer)
    buffer.extend(_HEADER_PLACEHOLDER)
    return offset


def end_frame(buffer: bytearray, header_offset: int) -> int:
    """Finalize a frame begun with :func:`begin_frame`.

    The payload must be exactly the bytes appended to ``buffer`` since
    ``begin_frame`` returned.  Computes length and CRC32 over them
    without copying and packs the header in place.  Returns the total
    frame length (header + payload).
    """
    payload_start = header_offset + _FRAME_HEADER.size
    length = len(buffer) - payload_start
    # Both views die before returning, so the caller may resize the
    # buffer freely afterwards.
    payload = memoryview(buffer)[payload_start:]
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    payload.release()
    _FRAME_HEADER.pack_into(buffer, header_offset, _FRAME_MAGIC, length, crc)
    return _FRAME_HEADER.size + length


def iter_frames(
    data: bytes, offset: int = 0
) -> "Iterator[tuple[int, bytes, int]]":
    """Yield ``(offset, payload, next_offset)`` for each frame in
    ``data`` starting at ``offset``.

    The shared read loop for every framed file in the system (process
    logs, the recovery service's registration table, the queued
    substrate's durable logs).  Raises :class:`LogCorruptionError` at
    the first bad frame, exactly like :func:`read_frame`.
    """
    while True:
        result = read_frame(data, offset)
        if result is None:
            return
        payload, next_offset = result
        yield offset, payload, next_offset
        offset = next_offset


def any_frame_after(data: bytes, bad_offset: int) -> bool:
    """Is there a decodable frame anywhere after a corrupt one?

    Distinguishes a torn tail (safe to truncate) from interior
    corruption (must be surfaced): search for the frame magic past
    ``bad_offset`` and try to decode from each candidate position.
    This is the unindexed fallback — the log manager first consults its
    frame index, which knows the true boundaries and answers without a
    byte-by-byte magic search.
    """
    magic_bytes = struct.pack("<H", _FRAME_MAGIC)
    search_from = bad_offset + 1
    while True:
        candidate = data.find(magic_bytes, search_from)
        if candidate < 0:
            return False
        try:
            if read_frame(data, candidate) is not None:
                return True
        except LogCorruptionError:
            pass
        search_from = candidate + 1


def repair_framed_tail(stable_file) -> int:
    """Truncate a torn trailing frame off a framed stable file.

    ``stable_file`` is any object with ``read()`` / ``truncate(size)``
    (a :class:`repro.sim.stable_store.StableFile`).  Walks the frames;
    a corrupt frame with nothing decodable after it is a torn write and
    is chopped off, while corruption followed by good data is interior
    damage and raises :class:`LogCorruptionError`.  Returns the size of
    the repaired file.
    """
    data = stable_file.read()
    last_good = 0
    try:
        for __, ___, next_offset in iter_frames(data):
            last_good = next_offset
    except LogCorruptionError:
        if any_frame_after(data, last_good):
            raise
        stable_file.truncate(last_good)
    return last_good
