"""Shard routing: the committed :class:`LogPlan` made executable.

PR 9's planner partitions the deployed components into log shards and
commits the partition as ``plans/apps.logplan.json``.  This module is
the runtime half (ROADMAP item 1): behind ``config.sharded_logging`` a
process hosts one :class:`~repro.log.log_manager.LogManager` *stream*
per shard the plan assigns to it, and the :class:`ShardRouter` resolves
``record.context_id -> shard -> stream`` so every append, force and
recovery replay touches exactly the stream its component lives on.

Routing rules:

* stream 0 is always the process's legacy log — same name, same files.
  It carries every record the plan does not place: unplanned component
  classes, checkpoint control records (``context_id == -1``), and the
  whole process when the flag is off (in which case it is the ONLY
  stream and every byte is identical to the unsharded runtime).
* each plan shard whose ``processes`` list names this process gets one
  extra stream, named ``{log_name}@{shard_id}`` — a distinct stream
  name means distinct log files, distinct per-(session, stream)
  scheduler watermarks, and distinct torn-tail fault sites for free.
* a component routes by its class name per the plan's shard membership;
  the assignment is fixed at creation time (``assign``) so replay and
  recovery resolve the same stream from the records alone.
* subordinates never route themselves: their records carry the parent
  context's id (the plan's affinity edges keep parent and subordinate
  in one shard), so they follow the parent automatically.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class LogStream:
    """One log stream of a process: the :class:`LogManager` plus its
    per-stream force coalescer and protocol trace.

    Stream 0 of every process wraps the legacy ``process.log`` /
    ``process.force_coalescer`` / ``process.protocol_trace`` objects
    themselves (``shard_id is None``), so the flag-off runtime goes
    through exactly the objects it always had.
    """

    __slots__ = ("shard_id", "log", "coalescer", "trace")

    def __init__(self, shard_id, log, coalescer, trace):
        self.shard_id = shard_id
        self.log = log
        self.coalescer = coalescer
        self.trace = trace

    @property
    def name(self) -> str:
        return self.log.process_name

    def __repr__(self) -> str:
        return f"LogStream({self.name!r}, shard={self.shard_id!r})"


def plan_shards(plan) -> list[dict]:
    """Normalize a plan-ish object into its shard dicts.

    Accepts a :class:`~repro.analysis.plan.planner.LogPlan`, anything
    with a ``shards`` attribute, or a bare list of shard dicts (the
    benches build synthetic plans this way).  Each shard dict needs
    ``id``, ``processes`` and ``components``.
    """
    shards = getattr(plan, "shards", plan)
    for shard in shards:
        missing = {"id", "processes", "components"} - set(shard)
        if missing:
            raise ConfigurationError(
                f"shard {shard.get('id', '?')!r} is missing keys "
                f"{sorted(missing)}"
            )
    return list(shards)


class ShardRouter:
    """Per-process view of the plan: which shards this process hosts
    and which stream index each component class maps to.

    Stream index 0 is the legacy log; hosting shards occupy indices
    1..N in the plan's (canonical, sorted) shard order.
    """

    __slots__ = ("process_name", "shard_ids", "_class_stream")

    def __init__(self, plan, process_name: str):
        self.process_name = process_name
        #: shard id per extra stream, parallel to stream indices 1..N.
        self.shard_ids: list[str] = []
        #: component class name -> stream index (only planned classes
        #: hosted here appear; everything else falls back to 0).
        self._class_stream: dict[str, int] = {}
        for shard in plan_shards(plan):
            if process_name not in shard["processes"]:
                continue
            self.shard_ids.append(shard["id"])
            index = len(self.shard_ids)
            for cls_name in shard["components"]:
                self._class_stream[cls_name] = index

    @property
    def stream_count(self) -> int:
        """Total streams including the legacy stream 0."""
        return 1 + len(self.shard_ids)

    def stream_for_class(self, cls_name: str) -> int:
        """The stream a component class is planned onto (0 when the
        plan does not place it on this process)."""
        return self._class_stream.get(cls_name, 0)
