"""Log record types.

Paper Table 1 and Sections 2.3, 4.2 and 4.3 define what goes on the log:

* **message records** — one of the four message kinds, logged by a
  context's interceptor according to the active logging algorithm.
  Algorithm 3 distinguishes *long* records (full message content) from
  *short* records (only the fact that a reply was sent);
* **creation records** — class, constructor arguments and identity of a
  new (parent) component, enough to re-create it during replay;
* **context state records** — the field values of every component in a
  context plus the context-table metadata needed to rebuild it
  (Section 4.2);
* **last-call reply records** — replies of last-call entries, written
  just before a context state record so duplicate detection survives a
  restore that skips replay (Section 4.2);
* **process checkpoint records** — ``begin`` / table dumps / ``end``
  bracketing an incremental copy of the process's global tables
  (Section 4.3).

Each record serializes to a tagged payload; the log manager frames the
payload with a CRC (see :mod:`repro.log.serialization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.ids import GlobalCallId
from ..common.messages import MessageKind, MethodCallMessage, ReplyMessage
from ..common.types import ComponentType
from ..errors import LogCorruptionError
from .serialization import Reader, Writer

CallerKey = tuple[str, int, int]


@dataclass(frozen=True)
class LogRecord:
    """Base class; ``context_id`` is the parent component ID that names
    the logging context (paper Section 4.2), or ``-1`` for process-level
    records."""

    context_id: int


@dataclass(frozen=True)
class MessageRecord(LogRecord):
    """A logged message (any of Figure 1's four kinds).

    ``short=True`` records carry no message content — only the fact that
    the message was sent (Algorithm 3's short record for message 2 to an
    external client)."""

    kind: MessageKind = MessageKind.INCOMING_CALL
    message: MethodCallMessage | ReplyMessage | None = None
    short: bool = False


@dataclass(frozen=True)
class CreationRecord(LogRecord):
    """Creation of a (parent) component and its context."""

    component_lid: int = 0
    class_name: str = ""
    args: tuple = ()
    uri: str = ""
    component_type: ComponentType = ComponentType.PERSISTENT
    registered_name: str = ""


@dataclass(frozen=True)
class ComponentStateSnapshot:
    """One component's saved fields inside a context state record."""

    component_lid: int
    class_name: str
    component_type: ComponentType
    fields: dict
    next_outgoing_seq: int


@dataclass(frozen=True)
class LastCallEntrySnapshot:
    """A last-call table entry as saved in a state record: the caller,
    the last call ID, and the LSN of the logged reply message."""

    caller_key: CallerKey
    call_id: GlobalCallId
    reply_lsn: int


@dataclass(frozen=True)
class ContextStateRecord(LogRecord):
    """Saved state of a whole context (parent + subordinates)."""

    uri: str = ""
    incoming_calls_handled: int = 0
    snapshots: tuple[ComponentStateSnapshot, ...] = ()
    last_calls: tuple[LastCallEntrySnapshot, ...] = ()


@dataclass(frozen=True)
class LastCallReplyRecord(LogRecord):
    """The reply message of a last-call entry, made durable before a
    context state record is written (Section 4.2)."""

    caller_key: CallerKey = ("", 0, 0)
    call_id: GlobalCallId = GlobalCallId("", 0, 0, 0)
    reply: ReplyMessage = ReplyMessage(call_id=None)


@dataclass(frozen=True)
class BeginCheckpointRecord(LogRecord):
    """Start of a process checkpoint (context_id is -1)."""


@dataclass(frozen=True)
class CheckpointContextEntry:
    """Context-table entry dumped inside a process checkpoint."""

    context_id: int
    uri: str
    state_record_lsn: int  # -1 when no state record has been saved yet
    creation_lsn: int


@dataclass(frozen=True)
class CheckpointContextTableRecord(LogRecord):
    """A sub-range of the context table (Section 4.3 writes the global
    tables incrementally under sub-range locks)."""

    entries: tuple[CheckpointContextEntry, ...] = ()


@dataclass(frozen=True)
class CheckpointRemoteTypeRecord(LogRecord):
    """A sub-range of the remote-component-type table."""

    entries: tuple[tuple[str, ComponentType], ...] = ()


@dataclass(frozen=True)
class CheckpointLastCallRecord(LogRecord):
    """A sub-range of the last-call table (IDs and reply LSNs only;
    reply content is read lazily when a duplicate call arrives)."""

    entries: tuple[LastCallEntrySnapshot, ...] = ()


@dataclass(frozen=True)
class EndCheckpointRecord(LogRecord):
    """End of a process checkpoint; points back at its begin record."""

    begin_lsn: int = -1


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
_TAG_MESSAGE = 1
_TAG_CREATION = 2
_TAG_CONTEXT_STATE = 3
_TAG_LAST_CALL_REPLY = 4
_TAG_BEGIN_CHECKPOINT = 5
_TAG_CHECKPOINT_CONTEXTS = 6
_TAG_CHECKPOINT_REMOTE_TYPES = 7
_TAG_CHECKPOINT_LAST_CALLS = 8
_TAG_END_CHECKPOINT = 9


def encode_record(record: LogRecord) -> bytes:
    """Serialize a record into a frame payload."""
    writer = Writer()
    encode_record_into(writer, record)
    return writer.getvalue()


def encode_record_into(writer: Writer, record: LogRecord) -> None:
    """Serialize a record through ``writer``.

    The streaming form of :func:`encode_record`: the log manager passes
    a writer bound to its volatile buffer so appending a record never
    builds an intermediate ``bytes`` object.
    """
    if isinstance(record, MessageRecord):
        writer.u8(_TAG_MESSAGE)
        writer.signed(record.context_id)
        writer.u8(record.kind.value)
        writer.u8(1 if record.short else 0)
        writer.value(record.message)
    elif isinstance(record, CreationRecord):
        writer.u8(_TAG_CREATION)
        writer.signed(record.context_id)
        writer.signed(record.component_lid)
        writer.text(record.class_name)
        writer.value(tuple(record.args))
        writer.text(record.uri)
        writer.text(record.component_type.wire_value)
        writer.text(record.registered_name)
    elif isinstance(record, ContextStateRecord):
        writer.u8(_TAG_CONTEXT_STATE)
        writer.signed(record.context_id)
        writer.text(record.uri)
        writer.signed(record.incoming_calls_handled)
        writer.u32(len(record.snapshots))
        for snapshot in record.snapshots:
            writer.signed(snapshot.component_lid)
            writer.text(snapshot.class_name)
            writer.text(snapshot.component_type.wire_value)
            writer.value(snapshot.fields)
            writer.signed(snapshot.next_outgoing_seq)
        _encode_last_calls(writer, record.last_calls)
    elif isinstance(record, LastCallReplyRecord):
        writer.u8(_TAG_LAST_CALL_REPLY)
        writer.signed(record.context_id)
        _encode_caller_key(writer, record.caller_key)
        writer.call_id(record.call_id)
        writer.reply(record.reply)
    elif isinstance(record, BeginCheckpointRecord):
        writer.u8(_TAG_BEGIN_CHECKPOINT)
        writer.signed(record.context_id)
    elif isinstance(record, CheckpointContextTableRecord):
        writer.u8(_TAG_CHECKPOINT_CONTEXTS)
        writer.signed(record.context_id)
        writer.u32(len(record.entries))
        for entry in record.entries:
            writer.signed(entry.context_id)
            writer.text(entry.uri)
            writer.signed(entry.state_record_lsn)
            writer.signed(entry.creation_lsn)
    elif isinstance(record, CheckpointRemoteTypeRecord):
        writer.u8(_TAG_CHECKPOINT_REMOTE_TYPES)
        writer.signed(record.context_id)
        writer.u32(len(record.entries))
        for uri, component_type in record.entries:
            writer.text(uri)
            writer.text(component_type.wire_value)
    elif isinstance(record, CheckpointLastCallRecord):
        writer.u8(_TAG_CHECKPOINT_LAST_CALLS)
        writer.signed(record.context_id)
        _encode_last_calls(writer, record.entries)
    elif isinstance(record, EndCheckpointRecord):
        writer.u8(_TAG_END_CHECKPOINT)
        writer.signed(record.context_id)
        writer.signed(record.begin_lsn)
    else:
        raise LogCorruptionError(
            f"unknown record class {type(record).__name__}"
        )


def decode_record(payload: bytes) -> LogRecord:
    """Decode a frame payload back into a record.

    Malformed payloads (wrong tags, bad enum values, truncated fields)
    surface uniformly as :class:`LogCorruptionError`."""
    try:
        return _decode_record(payload)
    except LogCorruptionError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise LogCorruptionError(f"malformed record payload: {exc}") from None


def _decode_record(payload: bytes) -> LogRecord:
    reader = Reader(payload)
    tag = reader.u8()
    if tag == _TAG_MESSAGE:
        context_id = reader.signed()
        kind = MessageKind(reader.u8())
        short = bool(reader.u8())
        message = reader.value()
        return MessageRecord(
            context_id=context_id, kind=kind, message=message, short=short
        )
    if tag == _TAG_CREATION:
        context_id = reader.signed()
        component_lid = reader.signed()
        class_name = reader.text()
        args = tuple(reader.value())
        uri = reader.text()
        component_type = ComponentType.from_wire(reader.text())
        registered_name = reader.text()
        return CreationRecord(
            context_id=context_id,
            component_lid=component_lid,
            class_name=class_name,
            args=args,
            uri=uri,
            component_type=component_type,
            registered_name=registered_name,
        )
    if tag == _TAG_CONTEXT_STATE:
        context_id = reader.signed()
        uri = reader.text()
        incoming_calls_handled = reader.signed()
        snapshots = []
        for _ in range(reader.u32()):
            snapshots.append(
                ComponentStateSnapshot(
                    component_lid=reader.signed(),
                    class_name=reader.text(),
                    component_type=ComponentType.from_wire(reader.text()),
                    fields=reader.value(),
                    next_outgoing_seq=reader.signed(),
                )
            )
        last_calls = _decode_last_calls(reader)
        return ContextStateRecord(
            context_id=context_id,
            uri=uri,
            incoming_calls_handled=incoming_calls_handled,
            snapshots=tuple(snapshots),
            last_calls=last_calls,
        )
    if tag == _TAG_LAST_CALL_REPLY:
        context_id = reader.signed()
        caller_key = _decode_caller_key(reader)
        call_id = reader.call_id()
        reply = reader.reply()
        return LastCallReplyRecord(
            context_id=context_id,
            caller_key=caller_key,
            call_id=call_id,
            reply=reply,
        )
    if tag == _TAG_BEGIN_CHECKPOINT:
        return BeginCheckpointRecord(context_id=reader.signed())
    if tag == _TAG_CHECKPOINT_CONTEXTS:
        context_id = reader.signed()
        entries = []
        for _ in range(reader.u32()):
            entries.append(
                CheckpointContextEntry(
                    context_id=reader.signed(),
                    uri=reader.text(),
                    state_record_lsn=reader.signed(),
                    creation_lsn=reader.signed(),
                )
            )
        return CheckpointContextTableRecord(
            context_id=context_id, entries=tuple(entries)
        )
    if tag == _TAG_CHECKPOINT_REMOTE_TYPES:
        context_id = reader.signed()
        entries = []
        for _ in range(reader.u32()):
            uri = reader.text()
            component_type = ComponentType.from_wire(reader.text())
            entries.append((uri, component_type))
        return CheckpointRemoteTypeRecord(
            context_id=context_id, entries=tuple(entries)
        )
    if tag == _TAG_CHECKPOINT_LAST_CALLS:
        context_id = reader.signed()
        entries = _decode_last_calls(reader)
        return CheckpointLastCallRecord(
            context_id=context_id, entries=entries
        )
    if tag == _TAG_END_CHECKPOINT:
        context_id = reader.signed()
        begin_lsn = reader.signed()
        return EndCheckpointRecord(context_id=context_id, begin_lsn=begin_lsn)
    raise LogCorruptionError(f"unknown record tag {tag}")


def _encode_caller_key(writer: Writer, key: CallerKey) -> None:
    writer.text(key[0])
    writer.signed(key[1])
    writer.signed(key[2])


def _decode_caller_key(reader: Reader) -> CallerKey:
    return (reader.text(), reader.signed(), reader.signed())


def _encode_last_calls(
    writer: Writer, entries: tuple[LastCallEntrySnapshot, ...]
) -> None:
    writer.u32(len(entries))
    for entry in entries:
        _encode_caller_key(writer, entry.caller_key)
        writer.call_id(entry.call_id)
        writer.signed(entry.reply_lsn)


def _decode_last_calls(reader: Reader) -> tuple[LastCallEntrySnapshot, ...]:
    entries = []
    for _ in range(reader.u32()):
        entries.append(
            LastCallEntrySnapshot(
                caller_key=_decode_caller_key(reader),
                call_id=reader.call_id(),
                reply_lsn=reader.signed(),
            )
        )
    return tuple(entries)
