"""Per-process log manager.

Paper Section 4.1: "Message records and checkpoints are stored in disk
based log files.  We manage disk files on a per-process basis to simplify
file access.  Logging is performed through a log manager in a process."
And Section 5: "Log records accumulate in a buffer and are written at a
log force or full buffer."

The manager keeps an in-memory buffer of framed records.  ``append``
assigns the record its LSN (the byte offset its frame will occupy in the
stable log) without touching the disk; ``force`` writes the whole buffer
as one unbuffered disk write and only then are those records durable.  A
process crash discards the buffer — that loss, and recovery's tolerance
of it, is the heart of the paper's Algorithm 2 argument.

The well-known file (Section 4.3) is a tiny per-process stable file that
holds the LSN of the last flushed begin-checkpoint record.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from dataclasses import dataclass, field

from ..errors import InvariantViolationError, LogCorruptionError
from ..sim.disk import RotationalDisk
from ..sim.stable_store import StableFile, StableStore
from .records import LogRecord, decode_record, encode_record
from .serialization import frame, read_frame

_WELL_KNOWN_STRUCT = struct.Struct("<q")


@dataclass
class LogStats:
    """Counters used throughout the evaluation (e.g. Table 8 reports the
    number of log forces)."""

    appends: int = 0
    forces_requested: int = 0
    forces_performed: int = 0  # forces that actually wrote to disk
    buffer_flushes: int = 0
    bytes_appended: int = 0
    bytes_written: int = 0
    well_known_writes: int = 0
    truncations: int = 0
    bytes_reclaimed: int = 0

    def snapshot(self) -> "LogStats":
        return LogStats(**vars(self))


class LogManager:
    """Buffered, forceable, per-process log."""

    def __init__(
        self,
        process_name: str,
        disk: RotationalDisk,
        stable_store: StableStore,
        buffer_capacity: int = 64 * 1024,
    ):
        self.process_name = process_name
        self.disk = disk
        self.stable_store = stable_store
        self.buffer_capacity = buffer_capacity
        self.stats = LogStats()

        log_name = f"{process_name}.log"
        self._stable = stable_store.open(log_name, create=True)
        if not disk.has_file(log_name):
            disk.create_file(log_name)
        self._disk_file = disk.file(log_name)

        well_known_name = f"{process_name}.wellknown"
        self._well_known = stable_store.open(well_known_name, create=True)
        if not disk.has_file(well_known_name):
            disk.create_file(well_known_name)
        self._well_known_disk_file = disk.file(well_known_name)

        self._buffer = bytearray()
        # Logical LSNs survive prefix truncation: physical offset =
        # LSN - base_lsn.
        self._base_lsn = 0
        self._buffer_start_lsn = self._stable.size

    # ------------------------------------------------------------------
    # appending and forcing
    # ------------------------------------------------------------------
    @property
    def end_lsn(self) -> int:
        """The LSN the next appended record will receive."""
        return self._buffer_start_lsn + len(self._buffer)

    @property
    def stable_lsn(self) -> int:
        """Everything below this LSN is durable."""
        return self._buffer_start_lsn

    @property
    def base_lsn(self) -> int:
        """The oldest LSN still on the log (grows with truncation)."""
        return self._base_lsn

    def append(self, record: LogRecord) -> int:
        """Buffer a record; return its LSN.  Does not touch the disk."""
        framed = frame(encode_record(record))
        lsn = self.end_lsn
        self._buffer.extend(framed)
        self.stats.appends += 1
        self.stats.bytes_appended += len(framed)
        if len(self._buffer) >= self.buffer_capacity:
            self._flush(count_as_force=False)
        return lsn

    def force(self) -> bool:
        """Make every appended record durable.

        Returns True if a disk write actually happened (an empty buffer
        means everything is already stable and the force is free — this
        is exactly why Algorithm 2's "force all previous messages" can be
        cheap when several components share a recently forced log).
        """
        self.stats.forces_requested += 1
        if not self._buffer:
            return False
        self._flush(count_as_force=True)
        return True

    def _flush(self, count_as_force: bool) -> None:
        data = bytes(self._buffer)
        self.disk.write(self._disk_file, len(data))
        self._stable.append(data)
        self._buffer.clear()
        self._buffer_start_lsn = self._base_lsn + self._stable.size
        self.stats.bytes_written += len(data)
        if count_as_force:
            self.stats.forces_performed += 1
        else:
            self.stats.buffer_flushes += 1

    def append_and_force(self, record: LogRecord) -> int:
        """Convenience for the baseline algorithm: log then force."""
        lsn = self.append(record)
        self.force()
        return lsn

    # ------------------------------------------------------------------
    # crash behaviour
    # ------------------------------------------------------------------
    def wipe_volatile(self) -> int:
        """Simulate a process crash: the buffer is lost.

        Returns the number of buffered bytes that were discarded."""
        lost = len(self._buffer)
        self._buffer.clear()
        self._buffer_start_lsn = self._base_lsn + self._stable.size
        return lost

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def repair_tail(self) -> int:
        """Truncate a torn tail left by a crash mid-write.

        Scans frames from the beginning and truncates the stable file at
        the first torn frame.  Interior corruption (a bad frame followed
        by good data) raises :class:`LogCorruptionError` instead of being
        silently dropped.  Returns the repaired stable end LSN.
        """
        data = self._stable.read()
        offset = 0
        last_good = 0
        while True:
            try:
                result = read_frame(data, offset)
            except LogCorruptionError:
                # Torn tail only if nothing decodable follows.
                if _any_frame_after(data, offset):
                    raise
                self._stable.truncate(last_good)
                self._buffer_start_lsn = self._base_lsn + last_good
                return self._base_lsn + last_good
            if result is None:
                return self._base_lsn + last_good
            _, offset = result
            last_good = offset

    def scan(self, from_lsn: int = 0) -> Iterator[tuple[int, LogRecord]]:
        """Yield ``(lsn, record)`` for every stable record from
        ``from_lsn`` (clamped to the truncation base) to the end of the
        stable log."""
        data = self._stable.read()
        offset = max(from_lsn, self._base_lsn) - self._base_lsn
        while True:
            result = read_frame(data, offset)
            if result is None:
                return
            payload, next_offset = result
            yield self._base_lsn + offset, decode_record(payload)
            offset = next_offset

    def read_record(self, lsn: int) -> LogRecord:
        """Read the single record whose frame starts at ``lsn``."""
        data = self._stable.read()
        if lsn < self._base_lsn:
            raise InvariantViolationError(
                f"LSN {lsn} was garbage-collected (base {self._base_lsn})"
            )
        physical = lsn - self._base_lsn
        if physical > len(data):
            raise InvariantViolationError(
                f"LSN {lsn} outside the stable log (size {len(data)})"
            )
        result = read_frame(data, physical)
        if result is None:
            raise InvariantViolationError(f"no record at LSN {lsn}")
        payload, _ = result
        return decode_record(payload)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def truncate_prefix(self, keep_from_lsn: int) -> int:
        """Reclaim all records below ``keep_from_lsn``.

        The caller (the process's checkpoint machinery) must guarantee
        that ``keep_from_lsn`` is a record boundary and that nothing
        below it will ever be read again — i.e. it is at or below every
        recovery-start LSN and every referenced reply LSN.  Returns the
        number of bytes reclaimed.
        """
        if keep_from_lsn <= self._base_lsn:
            return 0
        if keep_from_lsn > self.stable_lsn:
            raise InvariantViolationError(
                f"cannot truncate into the volatile buffer "
                f"(keep_from={keep_from_lsn}, stable={self.stable_lsn})"
            )
        nbytes = keep_from_lsn - self._base_lsn
        self._stable.trim_front(nbytes)
        self._base_lsn = keep_from_lsn
        self.stats.truncations += 1
        self.stats.bytes_reclaimed += nbytes
        return nbytes

    # ------------------------------------------------------------------
    # well-known file (Section 4.3)
    # ------------------------------------------------------------------
    def write_well_known_lsn(self, lsn: int) -> None:
        """Force the begin-checkpoint LSN into the well-known file."""
        self.disk.write(self._well_known_disk_file, _WELL_KNOWN_STRUCT.size)
        self._well_known.overwrite(_WELL_KNOWN_STRUCT.pack(lsn))
        self.stats.well_known_writes += 1

    def read_well_known_lsn(self) -> int | None:
        """The LSN of the last flushed begin-checkpoint record, if any."""
        data = self._well_known.read()
        if len(data) != _WELL_KNOWN_STRUCT.size:
            return None
        (lsn,) = _WELL_KNOWN_STRUCT.unpack(data)
        return lsn if lsn >= 0 else None

    def __repr__(self) -> str:
        return (
            f"LogManager({self.process_name}, stable={self.stable_lsn}B, "
            f"buffered={len(self._buffer)}B, "
            f"forces={self.stats.forces_performed})"
        )


def _any_frame_after(data: bytes, bad_offset: int) -> bool:
    """Is there a decodable frame anywhere after a corrupt one?

    Used to distinguish a torn tail (safe to truncate) from interior
    corruption (must be surfaced).  We search for the frame magic and try
    to decode from each candidate position.
    """
    from .serialization import _FRAME_MAGIC  # local: implementation detail

    magic_bytes = struct.pack("<H", _FRAME_MAGIC)
    search_from = bad_offset + 1
    while True:
        candidate = data.find(magic_bytes, search_from)
        if candidate < 0:
            return False
        try:
            if read_frame(data, candidate) is not None:
                return True
        except LogCorruptionError:
            pass
        search_from = candidate + 1
