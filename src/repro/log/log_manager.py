"""Per-process log manager.

Paper Section 4.1: "Message records and checkpoints are stored in disk
based log files.  We manage disk files on a per-process basis to simplify
file access.  Logging is performed through a log manager in a process."
And Section 5: "Log records accumulate in a buffer and are written at a
log force or full buffer."

The manager keeps an in-memory buffer of framed records.  ``append``
assigns the record its LSN (the byte offset its frame will occupy in the
stable log) without touching the disk; ``force`` writes the whole buffer
as one unbuffered disk write and only then are those records durable.  A
process crash discards the buffer — that loss, and recovery's tolerance
of it, is the heart of the paper's Algorithm 2 argument.

Both hot paths avoid materializing the log:

* **Write path** — ``append`` encodes the record *directly into* the
  volatile buffer (``Writer(out=...)`` plus in-place framing), and
  ``_flush`` hands the stable store a ``memoryview`` of the buffer, so
  no intermediate ``bytes`` object is built per record or per flush.
* **Read path** — the manager maintains an LSN → frame-length index
  over the stable log, built lazily for pre-existing bytes and kept
  current on append/flush/truncate/repair.  ``read_record`` reads only
  its own frame and ``scan(from_lsn)`` reads only the byte suffix from
  ``from_lsn``, instead of re-materializing the whole stable file per
  call.  ``LogStats.reads`` / ``bytes_read`` / ``index_hits`` make the
  saved work observable.

The well-known file (Section 4.3) is a tiny per-process stable file that
holds the LSN of the last flushed begin-checkpoint record.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from collections.abc import Iterator
from dataclasses import dataclass, field

from ..errors import (
    InvariantViolationError,
    LogCorruptionError,
    PartialWriteError,
)
from ..faults import plane as faultplane
from ..sim.disk import RotationalDisk
from ..sim.stable_store import StableFile, StableStore
from .records import LogRecord, decode_record, encode_record_into
from .serialization import (
    Writer,
    any_frame_after,
    begin_frame,
    end_frame,
    read_frame,
    read_frame_incremental,
)

_WELL_KNOWN_STRUCT = struct.Struct("<q")


@dataclass
class LogStats:
    """Counters used throughout the evaluation (e.g. Table 8 reports the
    number of log forces)."""

    appends: int = 0
    forces_requested: int = 0
    forces_performed: int = 0  # forces that actually wrote to disk
    buffer_flushes: int = 0
    bytes_appended: int = 0
    bytes_written: int = 0
    well_known_writes: int = 0
    truncations: int = 0
    bytes_reclaimed: int = 0
    # read-path accounting (the write-path counters above reproduce the
    # paper's numbers; these prove the Python-level read work is bounded)
    reads: int = 0  # stable-store read operations
    bytes_read: int = 0  # bytes fetched from the stable store
    index_hits: int = 0  # reads/scans resolved via the LSN index
    coalesced_forces: int = 0  # force requests satisfied by a same-instant write
    # group commit (concurrent scheduler extension): batches is the
    # number of shared stable writes; riders counts force requests that
    # rode one instead of issuing their own.
    group_commit_batches: int = 0
    group_commit_riders: int = 0
    # pipelined causal commit (config.pipelined_commit): gated counts
    # force requests satisfied without any write or window wait because
    # the requester's causal prefix was already stable; write_skips
    # counts closed batches whose shared write was elided because every
    # remaining waiter's causal prefix was covered by an earlier
    # in-flight write.
    pipelined_gated: int = 0
    pipelined_write_skips: int = 0
    # per-component index (on-demand recovery extension): rebuilds is
    # the number of bounded tail scans that re-anchored the chains after
    # a restart; hits counts chain requests served from the maintained
    # index without any scan.
    comp_index_rebuilds: int = 0
    comp_index_hits: int = 0

    def snapshot(self) -> "LogStats":
        return LogStats(**vars(self))


class LogManager:
    """Buffered, forceable, per-process log."""

    def __init__(
        self,
        process_name: str,
        disk: RotationalDisk,
        stable_store: StableStore,
        buffer_capacity: int = 64 * 1024,
    ):
        self.process_name = process_name
        self.disk = disk
        self.stable_store = stable_store
        self.buffer_capacity = buffer_capacity
        self.stats = LogStats()

        log_name = f"{process_name}.log"
        self._stable = stable_store.open(log_name, create=True)
        if not disk.has_file(log_name):
            disk.create_file(log_name)
        self._disk_file = disk.file(log_name)

        well_known_name = f"{process_name}.wellknown"
        self._well_known = stable_store.open(well_known_name, create=True)
        if not disk.has_file(well_known_name):
            disk.create_file(well_known_name)
        self._well_known_disk_file = disk.file(well_known_name)

        self._buffer = bytearray()
        # Logical LSNs survive prefix truncation: physical offset =
        # LSN - base_lsn.
        self._base_lsn = 0
        self._buffer_start_lsn = self._stable.size

        # LSN index over the *stable* log: sorted frame-start LSNs and
        # their frame lengths, covering the physical prefix
        # [0, _indexed_upto).  Buffered records wait in _pending_entries
        # until a flush makes them stable.  Pre-existing stable bytes
        # (a manager opened over an old file) are indexed lazily on the
        # first read; _index_stale_block remembers where lazy indexing
        # hit undecodable bytes so it is not retried on every read.
        self._index_lsns: list[int] = []
        self._index_lengths: list[int] = []
        self._indexed_upto = 0
        self._pending_entries: list[tuple[int, int]] = []
        self._index_stale_block: tuple[int, int] | None = None

        # Per-component chains (on-demand recovery): context_id → sorted
        # stable LSNs of that component's records, covering the LSN
        # window [_comp_from_lsn, _comp_upto_lsn).  Maintained on the
        # append path (buffered records wait in _comp_pending until a
        # flush makes them stable, mirroring _pending_entries).  The
        # chains are volatile — a crash loses them, and recovery
        # re-anchors them at the checkpoint with one bounded tail scan
        # (component_chains).
        self._comp_lsns: dict[int, list[int]] = {}
        self._comp_pending: list[tuple[int, int]] = []
        self._comp_from_lsn = self._stable.size
        self._comp_upto_lsn = self._stable.size

    # ------------------------------------------------------------------
    # appending and forcing
    # ------------------------------------------------------------------
    @property
    def end_lsn(self) -> int:
        """The LSN the next appended record will receive."""
        return self._buffer_start_lsn + len(self._buffer)

    @property
    def stable_lsn(self) -> int:
        """Everything below this LSN is durable."""
        return self._buffer_start_lsn

    @property
    def base_lsn(self) -> int:
        """The oldest LSN still on the log (grows with truncation)."""
        return self._base_lsn

    def append(self, record: LogRecord) -> int:
        """Buffer a record; return its LSN.  Does not touch the disk.

        The record is encoded straight into the volatile buffer: the
        frame header is reserved, the payload streams in behind it, and
        the header is backfilled — no per-record ``bytes`` objects.
        """
        buf = self._buffer
        lsn = self.end_lsn
        header_at = begin_frame(buf)
        try:
            encode_record_into(Writer(out=buf), record)
        except BaseException:
            # Leave the buffer exactly as it was (a half-encoded record
            # must never reach the disk).
            del buf[header_at:]
            raise
        framed_len = end_frame(buf, header_at)
        self.stats.appends += 1
        self.stats.bytes_appended += framed_len
        self._pending_entries.append((lsn, framed_len))
        self._comp_pending.append((record.context_id, lsn))
        if len(buf) >= self.buffer_capacity:
            self._flush(count_as_force=False)
        return lsn

    def force(self) -> bool:
        """Make every appended record durable.

        Returns True if a disk write actually happened (an empty buffer
        means everything is already stable and the force is free — this
        is exactly why Algorithm 2's "force all previous messages" can be
        cheap when several components share a recently forced log).
        """
        self.stats.forces_requested += 1
        if not self._buffer:
            return False
        name = self.process_name
        faultplane.site_hit(f"log.force.before:{name}", name)
        self._flush(count_as_force=True)
        faultplane.site_hit(f"log.force.after:{name}", name)
        return True

    def _flush(self, count_as_force: bool) -> None:
        nbytes = len(self._buffer)
        flush_offset = self._stable.size
        site = f"log.flush:{self.process_name}"
        cut = faultplane.flush_cut(site, nbytes, self.process_name)
        if cut is not None:
            self._stable.arm_partial_write(cut)
        self.disk.write(self._disk_file, nbytes)
        try:
            with memoryview(self._buffer) as view:
                self._stable.append(view)
        except PartialWriteError:
            # The crash landed inside this write: a torn frame (or a bare
            # slice of a frame header) is now the stable tail.  Nothing is
            # promoted into the LSN index — the index must never point
            # past what repair_tail will keep — and the process dies here.
            signal = faultplane.torn_signal(site, self.process_name)
            if signal is None:
                raise
            raise signal from None
        # Promote the buffered records' index entries now that they are
        # stable.  If older stable bytes are not indexed yet (a manager
        # opened over a pre-existing file), index them first so the
        # index stays a contiguous prefix.
        if self._indexed_upto != flush_offset:
            self._ensure_index(upto=flush_offset)
        if self._indexed_upto == flush_offset:
            self._index_lsns.extend(lsn for lsn, __ in self._pending_entries)
            self._index_lengths.extend(
                length for __, length in self._pending_entries
            )
            self._indexed_upto = flush_offset + nbytes
        # Same promotion for the per-component chains: they only ever
        # reference stable LSNs, so buffered entries join their chains
        # when (and only when) the chain window reaches this flush.
        if self._comp_upto_lsn == self._base_lsn + flush_offset:
            for cid, lsn in self._comp_pending:
                self._comp_lsns.setdefault(cid, []).append(lsn)
            self._comp_upto_lsn += nbytes
        self._comp_pending.clear()
        self._pending_entries.clear()
        self._buffer.clear()
        self._buffer_start_lsn = self._base_lsn + self._stable.size
        self.stats.bytes_written += nbytes
        if count_as_force:
            self.stats.forces_performed += 1
        else:
            self.stats.buffer_flushes += 1

    def append_and_force(self, record: LogRecord) -> int:
        """Convenience for the baseline algorithm: log then force."""
        lsn = self.append(record)
        self.force()
        return lsn

    # ------------------------------------------------------------------
    # crash behaviour
    # ------------------------------------------------------------------
    def stable_bytes(self) -> bytes:
        """The durable log content, verbatim.

        Determinism fingerprint for the concurrent scheduler tests: two
        runs with the same seed must produce byte-identical stable logs.
        """
        return self._stable.read()

    def wipe_volatile(self) -> int:
        """Simulate a process crash: the buffer is lost.

        Returns the number of buffered bytes that were discarded."""
        lost = len(self._buffer)
        self._buffer.clear()
        self._pending_entries.clear()
        self._buffer_start_lsn = self._base_lsn + self._stable.size
        # The per-component chains reference only *stable* LSNs, so the
        # crash cannot invalidate them; only the buffered entries (whose
        # records just evaporated) are dropped.  Keeping the chains is
        # what lets recovery after a clean-buffer crash serve
        # component_chains() as an index hit instead of a full-tail
        # rebuild.
        self._comp_pending.clear()
        return lost

    # ------------------------------------------------------------------
    # the LSN index
    # ------------------------------------------------------------------
    def _read_range(self, offset: int, length: int) -> bytes:
        chunk = self._stable.read_range(offset, length)
        self.stats.reads += 1
        self.stats.bytes_read += length
        return chunk

    def _clamp_index(self, size: int) -> None:
        """Drop index entries past the stable file's end (the file may
        have shrunk under us: torn-tail injection in tests, repair)."""
        if self._indexed_upto <= size:
            return
        while self._index_lsns:
            end = (
                self._index_lsns[-1]
                - self._base_lsn
                + self._index_lengths[-1]
            )
            if end <= size:
                break
            self._index_lsns.pop()
            self._index_lengths.pop()
        self._indexed_upto = (
            self._index_lsns[-1] - self._base_lsn + self._index_lengths[-1]
            if self._index_lsns
            else 0
        )
        self._index_stale_block = None

    def _ensure_index(self, upto: int | None = None) -> None:
        """Extend the index over stable bytes appended or discovered
        since the last call.  O(1) when nothing changed (the common
        case: append/flush keep the index current without any read)."""
        size = self._stable.size if upto is None else upto
        self._clamp_index(self._stable.size)
        if self._indexed_upto >= size:
            return
        if self._index_stale_block == (self._indexed_upto, size):
            return  # already known undecodable; repair_tail resets this
        start = self._indexed_upto
        suffix = self._read_range(start, size - start)
        offset = 0
        while True:
            try:
                result = read_frame(suffix, offset)
            except LogCorruptionError:
                # Unindexable bytes: a torn tail awaiting repair_tail,
                # or interior corruption a read will surface.
                self._indexed_upto = start + offset
                self._index_stale_block = (self._indexed_upto, size)
                return
            if result is None:
                break
            __, next_offset = result
            self._index_lsns.append(self._base_lsn + start + offset)
            self._index_lengths.append(next_offset - offset)
            offset = next_offset
        self._indexed_upto = start + offset
        self._index_stale_block = None

    def _index_lookup(self, lsn: int) -> int | None:
        """Frame length of the record at ``lsn``, if indexed."""
        i = bisect_left(self._index_lsns, lsn)
        if i < len(self._index_lsns) and self._index_lsns[i] == lsn:
            return self._index_lengths[i]
        return None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def repair_tail(self) -> int:
        """Truncate a torn tail left by a crash mid-write.

        Scans frames from the beginning and truncates the stable file at
        the first torn frame.  Interior corruption (a bad frame followed
        by good data) raises :class:`LogCorruptionError` instead of being
        silently dropped.  The walk revalidates every surviving frame, so
        the LSN index is rebuilt from it as a side effect.  Returns the
        repaired stable end LSN.
        """
        data = self._stable.read()
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        offset = 0
        last_good = 0
        entries: list[tuple[int, int]] = []
        torn = False
        while True:
            try:
                result = read_frame(data, offset)
            except LogCorruptionError:
                # Torn tail only if nothing decodable follows.
                if self._any_frame_after(data, offset):
                    raise
                self._stable.truncate(last_good)
                torn = True
                break
            if result is None:
                break
            __, next_offset = result
            entries.append(
                (self._base_lsn + offset, next_offset - offset)
            )
            offset = next_offset
            last_good = offset
        self._index_lsns = [lsn for lsn, __ in entries]
        self._index_lengths = [length for __, length in entries]
        self._indexed_upto = last_good
        self._index_stale_block = None
        if torn:
            self._buffer_start_lsn = self._base_lsn + last_good
        # A torn tail invalidates only the chains that reference it:
        # prune each chain at the repaired boundary instead of wiping
        # the whole index, so components untouched by the torn frame
        # keep their chains and the next component_chains call is an
        # index hit, not a full-tail rebuild.
        end_lsn = self._base_lsn + last_good
        for cid in list(self._comp_lsns):
            chain = self._comp_lsns[cid]
            cut = bisect_left(chain, end_lsn)
            if cut < len(chain):
                del chain[cut:]
            if not chain:
                del self._comp_lsns[cid]
        self._comp_pending.clear()
        self._comp_from_lsn = min(self._comp_from_lsn, end_lsn)
        self._comp_upto_lsn = min(self._comp_upto_lsn, end_lsn)
        return end_lsn

    def scan(self, from_lsn: int = 0) -> Iterator[tuple[int, LogRecord]]:
        """Yield ``(lsn, record)`` for every stable record from
        ``from_lsn`` (clamped to the truncation base) to the end of the
        stable log.

        Reads only the byte suffix from ``from_lsn`` — a tail scan of a
        long log no longer pays for the log's full history.
        """
        self._ensure_index()
        size = self._stable.size
        start = max(from_lsn, self._base_lsn)
        physical = start - self._base_lsn
        if physical >= size:
            if physical == size:
                return
            raise LogCorruptionError(
                f"torn frame header at offset {physical}"
            )
        if self._index_lookup(start) is not None:
            self.stats.index_hits += 1
        suffix = self._read_range(physical, size - physical)
        offset = 0
        while True:
            result = read_frame(suffix, offset)
            if result is None:
                return
            payload, next_offset = result
            yield (
                self._base_lsn + physical + offset,
                decode_record(payload),
            )
            offset = next_offset

    def read_record(self, lsn: int) -> LogRecord:
        """Read the single record whose frame starts at ``lsn``.

        O(1) via the LSN index: only the record's own frame is fetched
        from the stable store, never the whole log."""
        if lsn < self._base_lsn:
            raise InvariantViolationError(
                f"LSN {lsn} was garbage-collected (base {self._base_lsn})"
            )
        self._ensure_index()
        size = self._stable.size
        physical = lsn - self._base_lsn
        if physical > size:
            raise InvariantViolationError(
                f"LSN {lsn} outside the stable log (size {size})"
            )
        length = self._index_lookup(lsn)
        if length is not None:
            self.stats.index_hits += 1
            chunk = self._read_range(physical, length)
            result = read_frame(chunk, 0)
        else:
            # Not indexed (corrupt region, or an offset that is not a
            # record boundary): read incrementally — header, then
            # payload — with the same failure modes a full-file read
            # would surface.
            result = read_frame_incremental(self._read_range, physical, size)
        if result is None:
            raise InvariantViolationError(f"no record at LSN {lsn}")
        payload, __ = result
        return decode_record(payload)

    def component_chains(self, from_lsn: int = 0) -> dict[int, list[int]]:
        """Per-component frame chains over the stable log from
        ``from_lsn``: context_id → the ordered LSNs of that component's
        records.

        The chains are maintained on the append path, so in steady state
        this is a pure index hit.  After a restart (or when asked for a
        window older than the maintained one) the chains are re-anchored
        with **one** bounded tail scan from ``from_lsn`` — the
        checkpoint-forward suffix, never the whole log — and stay
        current from there on.
        """
        start = max(from_lsn, self._base_lsn)
        stable_end = self.stable_lsn
        if start < self._comp_from_lsn:
            self._comp_lsns = {}
            self._comp_from_lsn = self._comp_upto_lsn = start
            self.stats.comp_index_rebuilds += 1
        else:
            self.stats.comp_index_hits += 1
        if self._comp_upto_lsn < stable_end:
            for lsn, record in self.scan(self._comp_upto_lsn):
                self._comp_lsns.setdefault(record.context_id, []).append(lsn)
            self._comp_upto_lsn = stable_end
        if start == self._comp_from_lsn:
            return {cid: list(chain) for cid, chain in self._comp_lsns.items()}
        chains: dict[int, list[int]] = {}
        for cid, chain in self._comp_lsns.items():
            suffix = chain[bisect_left(chain, start):]
            if suffix:
                chains[cid] = suffix
        return chains

    def _any_frame_after(self, data: bytes, bad_offset: int) -> bool:
        """Is there a decodable frame anywhere after a corrupt one?

        Bounded by the LSN index: the boundaries recorded at append time
        are the only places a real record can start, so checking them is
        O(frames after the corruption) with no byte-by-byte magic
        search.  Falls back to the magic scan only when the index has no
        knowledge of the region (e.g. a fresh manager over an existing
        file, where lazy indexing stopped at the same corruption).
        """
        bad_lsn = self._base_lsn + bad_offset
        checked = False
        i = bisect_right(self._index_lsns, bad_lsn)
        for j in range(i, len(self._index_lsns)):
            physical = self._index_lsns[j] - self._base_lsn
            if physical <= bad_offset:
                continue
            if physical >= len(data):
                break
            checked = True
            try:
                if read_frame(data, physical) is not None:
                    return True
            except LogCorruptionError:
                continue
        if checked:
            return False
        return any_frame_after(data, bad_offset)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def truncate_prefix(self, keep_from_lsn: int) -> int:
        """Reclaim all records below ``keep_from_lsn``.

        The caller (the process's checkpoint machinery) must guarantee
        that ``keep_from_lsn`` is a record boundary and that nothing
        below it will ever be read again — i.e. it is at or below every
        recovery-start LSN and every referenced reply LSN.  Returns the
        number of bytes reclaimed.
        """
        if keep_from_lsn <= self._base_lsn:
            return 0
        if keep_from_lsn > self.stable_lsn:
            raise InvariantViolationError(
                f"cannot truncate into the volatile buffer "
                f"(keep_from={keep_from_lsn}, stable={self.stable_lsn})"
            )
        nbytes = keep_from_lsn - self._base_lsn
        self._stable.trim_front(nbytes)
        cut = bisect_left(self._index_lsns, keep_from_lsn)
        del self._index_lsns[:cut]
        del self._index_lengths[:cut]
        self._indexed_upto = max(0, self._indexed_upto - nbytes)
        self._index_stale_block = None
        self._base_lsn = keep_from_lsn
        for cid in list(self._comp_lsns):
            chain = self._comp_lsns[cid]
            drop = bisect_left(chain, keep_from_lsn)
            if drop:
                del chain[:drop]
            if not chain:
                del self._comp_lsns[cid]
        self._comp_from_lsn = max(self._comp_from_lsn, keep_from_lsn)
        self._comp_upto_lsn = max(self._comp_upto_lsn, keep_from_lsn)
        self.stats.truncations += 1
        self.stats.bytes_reclaimed += nbytes
        return nbytes

    # ------------------------------------------------------------------
    # well-known file (Section 4.3)
    # ------------------------------------------------------------------
    def write_well_known_lsn(self, lsn: int) -> None:
        """Force the begin-checkpoint LSN into the well-known file."""
        self.disk.write(self._well_known_disk_file, _WELL_KNOWN_STRUCT.size)
        self._well_known.overwrite(_WELL_KNOWN_STRUCT.pack(lsn))
        self.stats.well_known_writes += 1

    def read_well_known_lsn(self) -> int | None:
        """The LSN of the last flushed begin-checkpoint record, if any."""
        data = self._well_known.read()
        if len(data) != _WELL_KNOWN_STRUCT.size:
            return None
        (lsn,) = _WELL_KNOWN_STRUCT.unpack(data)
        return lsn if lsn >= 0 else None

    def __repr__(self) -> str:
        return (
            f"LogManager({self.process_name}, stable={self.stable_lsn}B, "
            f"buffered={len(self._buffer)}B, "
            f"forces={self.stats.forces_performed})"
        )
