"""Every example script must run clean, end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they show"


def test_examples_exist():
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "bookstore_demo",
        "crash_recovery_demo",
        "checkpoint_tuning",
        "stateful_vs_queued",
        "orderflow_demo",
    } <= names


def test_bench_report_generator_runs(tmp_path):
    output = tmp_path / "EXPERIMENTS.md"
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", str(output)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    content = output.read_text()
    assert "Table 4" in content and "Table 8" in content
    assert "paper" in content
