"""Crash-inside-frame-header audit (crash-point sweep satellite).

A torn stable write can leave *any* prefix of a frame on disk — including
slices of the 10-byte frame header itself: a bare magic byte (1), a cut
length prefix (3), or one byte short of a complete header (9).  These are
the ``HEADER_CUTS`` buckets the sweep tears every flush at.  The framing
layer must classify every such prefix as a torn tail (truncate, recover)
rather than decode garbage, and the log manager's LSN index must never
point past what ``repair_tail`` will keep.
"""

import pytest

from repro.common import MessageKind, MethodCallMessage
from repro.errors import (
    InvariantViolationError,
    LogCorruptionError,
    PartialWriteError,
)
from repro.faults.plan import HEADER_CUTS
from repro.log import LogManager, MessageRecord
from repro.log.serialization import (
    frame,
    frame_overhead,
    iter_frames,
    repair_framed_tail,
)
from repro.sim import Cluster
from repro.sim.stable_store import StableFile


def record(n) -> MessageRecord:
    return MessageRecord(
        context_id=1,
        kind=MessageKind.INCOMING_CALL,
        message=MethodCallMessage(
            target_uri="phoenix://alpha/p/1", method="m", args=(n,)
        ),
    )


@pytest.fixture
def log():
    machine = Cluster().machine("alpha")
    return LogManager("p1", machine.disk, machine.stable_store)


def payload_of(rec) -> object:
    return rec.message.args[0]


# ----------------------------------------------------------------------
# framing layer
# ----------------------------------------------------------------------
class TestIterFramesHeaderSlices:
    def test_yields_offsets_and_payloads(self):
        data = frame(b"one") + frame(b"two")
        frames = list(iter_frames(data))
        assert [payload for __, payload, ___ in frames] == [b"one", b"two"]
        assert frames[0][2] == frames[1][0]  # contiguous offsets
        assert frames[1][2] == len(data)

    @pytest.mark.parametrize("cut", HEADER_CUTS)
    def test_header_slice_is_a_torn_frame_not_garbage(self, cut):
        assert cut < frame_overhead()
        good = frame(b"payload")
        data = good + frame(b"torn")[:cut]
        frames = []
        with pytest.raises(LogCorruptionError, match="torn frame header"):
            for item in iter_frames(data):
                frames.append(item)
        # everything before the slice decoded cleanly
        assert [payload for __, payload, ___ in frames] == [b"payload"]


class TestRepairFramedTail:
    @pytest.mark.parametrize("cut", HEADER_CUTS)
    def test_truncates_header_slice(self, cut):
        good = frame(b"keep")
        stable = StableFile("t.log")
        stable.append(good + frame(b"gone")[:cut])
        assert repair_framed_tail(stable) == len(good)
        assert stable.read() == good

    def test_truncates_torn_payload(self):
        good = frame(b"keep")
        torn = frame(b"a-longer-payload-than-the-header")
        stable = StableFile("t.log")
        stable.append(good + torn[: frame_overhead() + 5])
        assert repair_framed_tail(stable) == len(good)
        assert stable.read() == good

    def test_interior_corruption_is_not_silently_dropped(self):
        first = frame(b"first")
        data = bytearray(first + frame(b"second") + frame(b"third"))
        data[len(first) + 2] ^= 0xFF  # corrupt mid-stream, good data after
        stable = StableFile("t.log")
        stable.append(bytes(data))
        with pytest.raises(LogCorruptionError):
            repair_framed_tail(stable)
        assert stable.size == len(data)  # nothing was chopped


# ----------------------------------------------------------------------
# log manager: torn flush -> index boundary -> repair
# ----------------------------------------------------------------------
def tear_next_flush(log, cut: int) -> None:
    """Arm the stable file so the next flush persists only ``cut``
    bytes, exactly like the sweep's ``log.flush`` torn-write points."""
    log.stable_store.open(f"{log.process_name}.log").arm_partial_write(cut)


def index_end(log) -> int:
    """The LSN just past the last indexed frame."""
    if not log._index_lsns:
        return log.base_lsn
    return log._index_lsns[-1] + log._index_lengths[-1]


class TestTornFlushIndexBoundary:
    @pytest.mark.parametrize("cut", HEADER_CUTS)
    def test_index_never_past_repaired_tail(self, log, cut):
        log.append_and_force(record("good"))
        good_end = log.stable_lsn
        log.append(record("torn"))
        tear_next_flush(log, cut)
        with pytest.raises(PartialWriteError):
            log.force()
        # the torn flush promoted nothing: the index stops at the bytes
        # repair will keep, even though the stable file is longer
        assert index_end(log) == good_end
        repaired = log.repair_tail()
        assert repaired == good_end
        assert index_end(log) == repaired
        assert log.stable_lsn == repaired

    @pytest.mark.parametrize("cut", HEADER_CUTS)
    def test_repair_keeps_whole_frames_of_a_torn_multi_record_flush(
        self, log, cut
    ):
        """One flush carrying two frames, torn inside the SECOND frame's
        header: the first frame is complete on disk and must survive."""
        log.append_and_force(record("stable"))
        first_lsn = log.append(record("whole"))
        second_lsn = log.append(record("sliced"))
        first_len = second_lsn - first_lsn
        tear_next_flush(log, first_len + cut)
        with pytest.raises(PartialWriteError):
            log.force()
        repaired = log.repair_tail()
        assert repaired == first_lsn + first_len
        assert payload_of(log.read_record(first_lsn)) == "whole"
        assert [payload_of(r) for __, r in log.scan()] == ["stable", "whole"]
        with pytest.raises(InvariantViolationError, match="no record"):
            log.read_record(second_lsn)

    @pytest.mark.parametrize("cut", HEADER_CUTS)
    def test_appends_after_repair_reuse_the_torn_lsn(self, log, cut):
        log.append_and_force(record("good"))
        torn_lsn = log.append(record("torn"))
        tear_next_flush(log, cut)
        with pytest.raises(PartialWriteError):
            log.force()
        log.wipe_volatile()  # the crash: buffered bytes are gone
        assert log.repair_tail() == torn_lsn
        new_lsn = log.append(record("retry"))
        assert new_lsn == torn_lsn  # LSN reuse over the repaired tail
        log.force()
        assert [payload_of(r) for __, r in log.scan()] == ["good", "retry"]
        assert index_end(log) == log.stable_lsn
