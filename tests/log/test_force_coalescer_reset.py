"""The force coalescer's last-write instant must not survive a crash.

Regression: ``ForceCoalescer._last_write_at`` used to persist across
``crash()``/``begin_restart()``, so an empty force issued at the same
simulated instant as a PRE-crash write was still counted as coalesced —
inflating ``coalesced_forces`` for the recovered incarnation, whose
write history starts empty.
"""

import pytest

from repro.common.messages import MessageKind
from repro.log.records import MessageRecord

from ..conftest import deploy_counter


def _append_and_force(process):
    process.log.append(
        MessageRecord(
            context_id=1,
            kind=MessageKind.INCOMING_CALL,
            message=None,
            short=True,
        )
    )
    assert process.force_coalescer.force() is True


@pytest.mark.no_conformance_check
class TestResetOnCrash:
    def test_same_instant_empty_force_after_crash_is_not_coalesced(
        self, runtime
    ):
        process, __ = deploy_counter(runtime)
        _append_and_force(process)

        # Baseline sanity: pre-crash, a same-instant empty force IS the
        # coalescing case the accounting is for.
        before = process.log.stats.coalesced_forces
        assert process.force_coalescer.force() is False
        assert process.log.stats.coalesced_forces == before + 1

        process.crash()
        # Same simulated instant, but the write belonged to the previous
        # incarnation: the recovered process has not written yet, so
        # nothing was coalesced.
        before = process.log.stats.coalesced_forces
        assert process.force_coalescer.force() is False
        assert process.log.stats.coalesced_forces == before

    def test_restart_also_forgets_the_last_write(self, runtime):
        process, __ = deploy_counter(runtime)
        _append_and_force(process)
        process.crash()
        process.begin_restart()
        before = process.log.stats.coalesced_forces
        assert process.force_coalescer.force() is False
        assert process.log.stats.coalesced_forces == before


@pytest.mark.no_conformance_check
class TestPipelinedStatsReset:
    """Regression: the pipelined batch counters (``pipelined_gated``,
    ``pipelined_write_skips``) used to survive ``crash()`` and
    ``begin_restart()`` even though they count gating decisions taken
    against watermarks the crash wiped — the recovered incarnation's
    history starts empty, exactly like ``_last_write_at``."""

    def _inflate(self, process):
        coalescer = process.force_coalescer
        coalescer.note_gated()
        coalescer.note_write_skip(2)
        stats = process.log.stats
        assert stats.pipelined_gated == 3
        assert stats.pipelined_write_skips == 1

    def test_crash_zeroes_pipelined_batch_counters(self, runtime):
        process, __ = deploy_counter(runtime)
        _append_and_force(process)
        self._inflate(process)
        process.crash()
        stats = process.log.stats
        assert stats.pipelined_gated == 0
        assert stats.pipelined_write_skips == 0

    def test_restart_zeroes_pipelined_batch_counters(self, runtime):
        process, __ = deploy_counter(runtime)
        _append_and_force(process)
        process.crash()
        self._inflate(process)
        process.begin_restart()
        stats = process.log.stats
        assert stats.pipelined_gated == 0
        assert stats.pipelined_write_skips == 0
