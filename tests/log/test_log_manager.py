"""Log manager: buffering, force semantics, crash loss, torn tails."""

import pytest

from repro.common import MessageKind, MethodCallMessage
from repro.errors import InvariantViolationError, LogCorruptionError
from repro.log import LogManager, MessageRecord
from repro.sim import Cluster


def record(n: int) -> MessageRecord:
    return MessageRecord(
        context_id=1,
        kind=MessageKind.INCOMING_CALL,
        message=MethodCallMessage(
            target_uri="phoenix://alpha/p/1", method="m", args=(n,)
        ),
    )


@pytest.fixture
def log():
    machine = Cluster().machine("alpha")
    return LogManager("p1", machine.disk, machine.stable_store)


class TestAppendForce:
    def test_append_assigns_monotonic_lsns(self, log):
        lsns = [log.append(record(i)) for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_append_does_not_touch_disk(self, log):
        log.append(record(0))
        assert log.disk.stats.writes == 0
        assert log.stable_lsn == 0

    def test_force_makes_records_stable(self, log):
        lsn = log.append(record(0))
        assert log.force() is True
        assert log.stable_lsn > lsn
        assert log.disk.stats.writes == 1

    def test_empty_force_is_free(self, log):
        log.append(record(0))
        log.force()
        assert log.force() is False  # nothing new
        assert log.stats.forces_performed == 1
        assert log.stats.forces_requested == 2

    def test_one_force_flushes_many_records(self, log):
        for i in range(10):
            log.append(record(i))
        log.force()
        assert log.disk.stats.writes == 1
        assert log.stats.forces_performed == 1

    def test_append_and_force(self, log):
        lsn = log.append_and_force(record(0))
        assert log.stable_lsn > lsn

    def test_buffer_full_triggers_flush(self):
        machine = Cluster().machine("alpha")
        log = LogManager(
            "p1", machine.disk, machine.stable_store, buffer_capacity=64
        )
        log.append(record(0))
        log.append(record(1))
        assert log.stats.buffer_flushes >= 1
        assert log.stats.forces_performed == 0


class TestScan:
    def test_scan_returns_records_in_order(self, log):
        records = [record(i) for i in range(4)]
        lsns = [log.append(r) for r in records]
        log.force()
        got = list(log.scan())
        assert [lsn for lsn, _ in got] == lsns
        assert [r for _, r in got] == records

    def test_scan_from_lsn(self, log):
        log.append(record(0))
        mid = log.append(record(1))
        log.append(record(2))
        log.force()
        got = [r.message.args[0] for _, r in log.scan(mid)]
        assert got == [1, 2]

    def test_scan_excludes_unforced_buffer(self, log):
        log.append(record(0))
        log.force()
        log.append(record(1))
        assert len(list(log.scan())) == 1

    def test_read_record(self, log):
        lsn = log.append(record(7))
        log.force()
        assert log.read_record(lsn).message.args == (7,)

    def test_read_record_bad_lsn(self, log):
        log.append_and_force(record(0))
        with pytest.raises(InvariantViolationError):
            log.read_record(10_000)


class TestCrashSemantics:
    def test_wipe_discards_buffer(self, log):
        log.append(record(0))
        log.force()
        log.append(record(1))
        lost = log.wipe_volatile()
        assert lost > 0
        assert [r.message.args[0] for _, r in log.scan()] == [0]

    def test_append_after_wipe_continues_from_stable(self, log):
        log.append_and_force(record(0))
        log.append(record(1))  # will be lost
        log.wipe_volatile()
        log.append_and_force(record(2))
        assert [r.message.args[0] for _, r in log.scan()] == [0, 2]


class TestTornTail:
    def test_repair_truncates_torn_tail(self, log):
        log.append_and_force(record(0))
        good_size = log.stable_lsn
        log.append(record(1))
        log.force()
        # chop bytes off the stable file: a write torn by the crash
        stable = log.stable_store.open("p1.log")
        stable.truncate(stable.size - 3)
        assert log.repair_tail() == good_size
        assert [r.message.args[0] for _, r in log.scan()] == [0]

    def test_repair_clean_log_is_noop(self, log):
        log.append_and_force(record(0))
        size = log.stable_lsn
        assert log.repair_tail() == size

    def test_interior_corruption_raises(self, log):
        lsn0 = log.append_and_force(record(0))
        log.append_and_force(record(1))
        stable = log.stable_store.open("p1.log")
        data = bytearray(stable.read())
        data[lsn0 + 12] ^= 0xFF  # flip a payload byte of the FIRST record
        stable.overwrite(bytes(data))
        with pytest.raises(LogCorruptionError):
            log.repair_tail()


class TestWellKnownFile:
    def test_roundtrip(self, log):
        assert log.read_well_known_lsn() is None
        log.write_well_known_lsn(1234)
        assert log.read_well_known_lsn() == 1234

    def test_overwrite(self, log):
        log.write_well_known_lsn(10)
        log.write_well_known_lsn(20)
        assert log.read_well_known_lsn() == 20

    def test_write_charges_disk(self, log):
        before = log.disk.stats.writes
        log.write_well_known_lsn(1)
        assert log.disk.stats.writes == before + 1
