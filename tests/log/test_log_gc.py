"""Log garbage collection (extension): prefix truncation with logical
LSNs, and recovery correctness from a truncated log."""

import pytest

from repro import (
    CheckpointConfig,
    InvariantViolationError,
    PhoenixRuntime,
    RuntimeConfig,
)
from repro.common import MessageKind, MethodCallMessage
from repro.log import LogManager, MessageRecord
from repro.sim import Cluster
from tests.conftest import Counter, KvStore, Relay, TallyOwner


def record(n: int) -> MessageRecord:
    return MessageRecord(
        context_id=1,
        kind=MessageKind.INCOMING_CALL,
        message=MethodCallMessage(
            target_uri="phoenix://alpha/p/1", method="m", args=(n,)
        ),
    )


@pytest.fixture
def log():
    machine = Cluster().machine("alpha")
    return LogManager("p1", machine.disk, machine.stable_store)


class TestLogicalLsns:
    def test_truncation_preserves_lsns(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(5)]
        log.truncate_prefix(lsns[2])
        assert log.base_lsn == lsns[2]
        got = list(log.scan())
        assert [lsn for lsn, __ in got] == lsns[2:]
        assert log.read_record(lsns[3]).message.args == (3,)

    def test_reading_reclaimed_lsn_rejected(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(3)]
        log.truncate_prefix(lsns[2])
        with pytest.raises(InvariantViolationError, match="garbage"):
            log.read_record(lsns[0])

    def test_scan_clamps_to_base(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(3)]
        log.truncate_prefix(lsns[1])
        assert [lsn for lsn, __ in log.scan(0)] == lsns[1:]

    def test_appends_continue_after_truncation(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(3)]
        log.truncate_prefix(lsns[2])
        new_lsn = log.append_and_force(record(99))
        assert new_lsn > lsns[2]
        assert log.read_record(new_lsn).message.args == (99,)

    def test_truncation_into_buffer_rejected(self, log):
        log.append_and_force(record(0))
        log.append(record(1))  # buffered
        with pytest.raises(InvariantViolationError):
            log.truncate_prefix(log.end_lsn)

    def test_noop_truncation(self, log):
        lsn = log.append_and_force(record(0))
        assert log.truncate_prefix(0) == 0
        assert log.truncate_prefix(log.base_lsn) == 0

    def test_stats_track_reclaimed_bytes(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(4)]
        reclaimed = log.truncate_prefix(lsns[3])
        assert reclaimed == lsns[3] - lsns[0]
        assert log.stats.bytes_reclaimed == reclaimed
        assert log.stats.truncations == 1

    def test_repair_tail_after_truncation(self, log):
        lsns = [log.append_and_force(record(i)) for i in range(3)]
        log.truncate_prefix(lsns[1])
        stable = log.stable_store.open("p1.log")
        stable.truncate(stable.size - 2)  # tear the last record
        assert log.repair_tail() == lsns[2]
        assert [lsn for lsn, __ in log.scan()] == [lsns[1]]


def gc_runtime():
    config = RuntimeConfig.optimized(
        checkpoint=CheckpointConfig(
            context_state_every_n_calls=5,
            process_checkpoint_every_n_saves=1,
            truncate_log=True,
        )
    )
    return PhoenixRuntime(config=config)


class TestProcessGarbageCollection:
    def test_gc_reclaims_bytes(self):
        runtime = gc_runtime()
        process = runtime.spawn_process("p", machine="alpha")
        counter = process.create_component(Counter)
        for __ in range(40):
            counter.increment()
        assert process.log.stats.bytes_reclaimed > 0
        assert process.log.base_lsn > 0

    def test_recovery_after_gc(self):
        runtime = gc_runtime()
        process = runtime.spawn_process("p", machine="alpha")
        counter = process.create_component(Counter)
        for __ in range(43):
            counter.increment()
        assert process.log.base_lsn > 0  # GC happened
        runtime.crash_process(process)
        assert counter.increment() == 44

    def test_recovery_after_gc_with_subordinates(self):
        runtime = gc_runtime()
        process = runtime.spawn_process("p", machine="alpha")
        owner = process.create_component(TallyOwner)
        for i in range(23):
            owner.add(i)
        assert process.log.base_lsn > 0
        runtime.crash_process(process)
        assert owner.total() == 23
        assert owner.add("post") == 24

    def test_dedup_survives_gc(self):
        """Reply LSNs in the last-call table pin records against GC; a
        persistent client's retry after the server GCs and crashes must
        still find its reply."""
        runtime = gc_runtime()
        store_process = runtime.spawn_process("sp", machine="beta")
        store = store_process.create_component(KvStore)
        relay_process = runtime.spawn_process("rp", machine="alpha")
        relay = relay_process.create_component(Relay, args=(store,))
        for i in range(17):
            relay.put(f"k{i}", i)
        runtime.crash_process(store_process)
        relay.put("after", 99)
        instance = store_process.component_table[1].instance
        assert instance.executions == 18
        assert len(instance.data) == 18

    def test_truncation_point_respects_reply_lsns(self):
        runtime = gc_runtime()
        store_process = runtime.spawn_process("sp", machine="beta")
        store = store_process.create_component(KvStore)
        relay_process = runtime.spawn_process("rp", machine="alpha")
        relay = relay_process.create_component(Relay, args=(store,))
        for i in range(11):
            relay.put(f"k{i}", i)
        point = store_process.log_truncation_point()
        for __, entry in store_process.last_calls.all_entries():
            if entry.reply_lsn != -1:
                assert point <= entry.reply_lsn

    def test_gc_off_by_default(self, checkpointing_runtime):
        runtime = checkpointing_runtime
        process = runtime.spawn_process("p", machine="alpha")
        counter = process.create_component(Counter)
        for __ in range(40):
            counter.increment()
        assert process.log.base_lsn == 0
        assert process.log.stats.truncations == 0
