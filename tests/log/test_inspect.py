"""Log inspection tooling — and, through it, assertions about exactly
what each algorithm writes to the log."""

import pytest

from repro import CheckpointConfig, PhoenixRuntime, RuntimeConfig
from repro.log.inspect import format_summary, summarize_log
from tests.conftest import Counter, KvStore, Relay


def optimized_world():
    runtime = PhoenixRuntime()
    store_process = runtime.spawn_process("sp", machine="beta")
    store = store_process.create_component(KvStore)
    relay_process = runtime.spawn_process("rp", machine="alpha")
    relay = relay_process.create_component(Relay, args=(store,))
    return runtime, store_process, relay_process, relay


class TestSummaries:
    def test_empty_log(self, runtime):
        process = runtime.spawn_process("p", machine="alpha")
        summary = summarize_log(process.log)
        assert summary.record_count == 0
        assert summary.contexts == {}

    def test_creation_records_counted(self, runtime):
        process = runtime.spawn_process("p", machine="alpha")
        process.create_component(Counter)
        process.create_component(Counter)
        summary = summarize_log(process.log)
        assert summary.records_by_kind["CreationRecord"] == 2
        assert summary.context(1).creations == 1

    def test_optimized_server_log_shape(self):
        """Algorithm 2 at the server: one INCOMING_CALL record per call,
        no reply records, no outgoing records."""
        __, store_process, __, relay = optimized_world()
        for i in range(5):
            relay.put(f"k{i}", i)
        summary = summarize_log(store_process.log)
        assert summary.messages_by_kind == {"INCOMING_CALL": 5}
        assert summary.short_records == 0

    def test_optimized_client_log_shape(self):
        """Algorithm 2 at the client: REPLY_FROM_OUTGOING records only
        (message 3 is never written)."""
        __, __, relay_process, relay = optimized_world()
        for i in range(4):
            relay.put(f"k{i}", i)
        summary = summarize_log(relay_process.log)
        # the external wrapper around each relay.put writes INCOMING +
        # short REPLY_TO_INCOMING; the inner call writes one msg4
        assert summary.messages_by_kind["REPLY_FROM_OUTGOING"] == 4
        assert "OUTGOING_CALL" not in summary.messages_by_kind
        assert summary.short_records == 4  # Algorithm 3 short replies

    def test_baseline_logs_all_four_kinds(self):
        runtime = PhoenixRuntime(config=RuntimeConfig.baseline())
        store_process = runtime.spawn_process("sp", machine="beta")
        store = store_process.create_component(KvStore)
        relay_process = runtime.spawn_process("rp", machine="alpha")
        relay = relay_process.create_component(Relay, args=(store,))
        for i in range(3):
            relay.put(f"k{i}", i)
        summary = summarize_log(relay_process.log)
        for kind in (
            "INCOMING_CALL",
            "REPLY_TO_INCOMING",
            "OUTGOING_CALL",
            "REPLY_FROM_OUTGOING",
        ):
            assert summary.messages_by_kind[kind] == 3, kind
        assert summary.short_records == 0  # baseline: full records only

    def test_checkpoint_chain_detected(self):
        config = RuntimeConfig.optimized(
            checkpoint=CheckpointConfig(
                context_state_every_n_calls=3,
                process_checkpoint_every_n_saves=1,
            )
        )
        runtime = PhoenixRuntime(config=config)
        process = runtime.spawn_process("p", machine="alpha")
        counter = process.create_component(Counter)
        for __ in range(7):
            counter.increment()
        summary = summarize_log(process.log)
        assert summary.checkpoints
        assert all(chain.complete for chain in summary.checkpoints)
        assert summary.checkpoints[0].context_entries >= 1
        assert summary.published_checkpoint_lsn is not None
        assert summary.context(1).state_records >= 2

    def test_format_is_readable(self):
        __, store_process, __, relay = optimized_world()
        relay.put("k", 1)
        text = format_summary(summarize_log(store_process.log))
        assert "INCOMING_CALL" in text
        assert "contexts:" in text
        assert "sp" in text or "beta-sp" in text
