"""Binary codec: round trips, framing, corruption detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    ComponentRef,
    GlobalCallId,
    MethodCallMessage,
    ReplyMessage,
    SenderInfo,
)
from repro.common.ids import LocalRef
from repro.common.types import ComponentType
from repro.errors import LogCorruptionError, SerializationError
from repro.log import (
    decode_value,
    encode_value,
    frame,
    read_frame,
    serialized_size,
)


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**70, -(2**70), 0.0, -1.5, 3.14,
         "", "hello", "ünïcodé ≠", b"", b"\x00\xff", [], [1, [2, [3]]],
         (), (1, "two", 3.0), {}, {"k": [1, 2]}, {1: {2: {3: None}}},
         set(), {1, 2, 3}, frozenset({"a", "b"})],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_list_distinguished(self):
        assert type(decode_value(encode_value((1, 2)))) is tuple
        assert type(decode_value(encode_value([1, 2]))) is list

    def test_set_frozenset_distinguished(self):
        assert type(decode_value(encode_value({1}))) is set
        assert type(decode_value(encode_value(frozenset({1})))) is frozenset

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_nested_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value({"ok": [1, 2, object()]})

    def test_serialized_size_matches_encoding(self):
        value = {"a": [1, 2, 3], "b": "text"}
        assert serialized_size(value) == len(encode_value(value))


class TestWireTypes:
    def test_call_id_roundtrip(self):
        call_id = GlobalCallId("alpha", 3, 7, 42)
        assert decode_value(encode_value(call_id)) == call_id

    def test_component_ref_roundtrip(self):
        ref = ComponentRef("phoenix://alpha/p1/3")
        assert decode_value(encode_value(ref)) == ref

    def test_local_ref_roundtrip(self):
        assert decode_value(encode_value(LocalRef(300001))) == LocalRef(300001)

    def test_component_type_roundtrip(self):
        for kind in ComponentType:
            assert decode_value(encode_value(kind)) is kind

    def test_sender_info_roundtrip(self):
        info = SenderInfo(
            ComponentType.READ_ONLY, "phoenix://a/p/1", knows_receiver=True
        )
        assert decode_value(encode_value(info)) == info

    def test_method_call_roundtrip(self):
        message = MethodCallMessage(
            target_uri="phoenix://beta/srv/1",
            method="put",
            args=("key", [1, 2], {"nested": (3,)}),
            call_id=GlobalCallId("alpha", 1, 2, 3),
            sender=SenderInfo(ComponentType.PERSISTENT, "phoenix://a/c/1"),
            method_read_only=True,
        )
        assert decode_value(encode_value(message)) == message

    def test_external_method_call_roundtrip(self):
        message = MethodCallMessage(
            target_uri="phoenix://beta/srv/1", method="ping", args=(1,)
        )
        decoded = decode_value(encode_value(message))
        assert decoded == message
        assert decoded.call_id is None

    def test_reply_roundtrip(self):
        reply = ReplyMessage(
            call_id=GlobalCallId("alpha", 1, 2, 3),
            value={"result": [1.5, None]},
            method_read_only=True,
        )
        assert decode_value(encode_value(reply)) == reply

    def test_exception_reply_roundtrip(self):
        reply = ReplyMessage(
            call_id=None,
            is_exception=True,
            exception_message="ValueError: boom",
        )
        decoded = decode_value(encode_value(reply))
        assert decoded.is_exception
        assert decoded.exception_message == "ValueError: boom"


# A recursive strategy over everything the codec supports.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**100), max_value=2**100),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.builds(GlobalCallId, st.text(max_size=8), st.integers(0, 99),
              st.integers(0, 99), st.integers(0, 999)),
    st.builds(ComponentRef, st.just("phoenix://a/p/1")),
    st.sampled_from(list(ComponentType)),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers(-100, 100)),
            children,
            max_size=4,
        ),
        st.lists(st.integers(-50, 50), max_size=4, unique=True).map(set),
        st.lists(st.integers(-50, 50), max_size=4, unique=True).map(
            frozenset
        ),
    ),
    max_leaves=20,
)


class TestPropertyRoundtrip:
    @given(_values)
    @settings(max_examples=200, deadline=None)
    def test_any_supported_value_roundtrips(self, value):
        assert decode_value(encode_value(value)) == value

    @given(_values)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_deterministic(self, value):
        assert encode_value(value) == encode_value(value)


class TestFraming:
    def test_frame_roundtrip(self):
        payload = b"hello record"
        data = frame(payload)
        got, next_offset = read_frame(data, 0)
        assert got == payload
        assert next_offset == len(data)

    def test_multiple_frames(self):
        data = frame(b"one") + frame(b"two") + frame(b"three")
        payloads = []
        offset = 0
        while True:
            result = read_frame(data, offset)
            if result is None:
                break
            payload, offset = result
            payloads.append(payload)
        assert payloads == [b"one", b"two", b"three"]

    def test_clean_end_returns_none(self):
        data = frame(b"x")
        assert read_frame(data, len(data)) is None

    def test_torn_header_detected(self):
        data = frame(b"payload")[:4]
        with pytest.raises(LogCorruptionError):
            read_frame(data, 0)

    def test_torn_payload_detected(self):
        data = frame(b"payload")[:-2]
        with pytest.raises(LogCorruptionError):
            read_frame(data, 0)

    def test_flipped_bit_detected(self):
        data = bytearray(frame(b"payload"))
        data[-1] ^= 0x01
        with pytest.raises(LogCorruptionError):
            read_frame(bytes(data), 0)

    def test_bad_magic_detected(self):
        data = bytearray(frame(b"payload"))
        data[0] ^= 0xFF
        with pytest.raises(LogCorruptionError):
            read_frame(bytes(data), 0)
