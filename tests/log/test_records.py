"""Log record encode/decode round trips."""

import pytest

from repro.common import (
    GlobalCallId,
    MessageKind,
    MethodCallMessage,
    ReplyMessage,
)
from repro.common.types import ComponentType
from repro.log import (
    BeginCheckpointRecord,
    CheckpointContextEntry,
    CheckpointContextTableRecord,
    CheckpointLastCallRecord,
    CheckpointRemoteTypeRecord,
    ComponentStateSnapshot,
    ContextStateRecord,
    CreationRecord,
    EndCheckpointRecord,
    LastCallEntrySnapshot,
    LastCallReplyRecord,
    MessageRecord,
    decode_record,
    encode_record,
)

CALL_ID = GlobalCallId("alpha", 1, 2, 3)
CALL = MethodCallMessage(
    target_uri="phoenix://beta/p/1", method="put", args=("k", 1),
    call_id=CALL_ID,
)
REPLY = ReplyMessage(call_id=CALL_ID, value=42)


def roundtrip(record):
    return decode_record(encode_record(record))


class TestMessageRecords:
    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_kinds_roundtrip(self, kind):
        message = CALL if kind.value in (1, 3) else REPLY
        record = MessageRecord(context_id=7, kind=kind, message=message)
        assert roundtrip(record) == record

    def test_short_record_carries_no_content(self):
        record = MessageRecord(
            context_id=7,
            kind=MessageKind.REPLY_TO_INCOMING,
            message=None,
            short=True,
        )
        decoded = roundtrip(record)
        assert decoded.short
        assert decoded.message is None

    def test_short_record_is_smaller_than_long(self):
        long_record = MessageRecord(
            context_id=7, kind=MessageKind.REPLY_TO_INCOMING, message=REPLY
        )
        short_record = MessageRecord(
            context_id=7,
            kind=MessageKind.REPLY_TO_INCOMING,
            message=None,
            short=True,
        )
        assert len(encode_record(short_record)) < len(
            encode_record(long_record)
        )


class TestCreationRecords:
    def test_roundtrip(self):
        record = CreationRecord(
            context_id=4,
            component_lid=4,
            class_name="app.Store",
            args=({"inventory": [1, 2]},),
            uri="phoenix://beta/p/4",
            component_type=ComponentType.PERSISTENT,
            registered_name="app.Store",
        )
        assert roundtrip(record) == record


class TestStateRecords:
    def test_roundtrip_with_subordinates_and_last_calls(self):
        record = ContextStateRecord(
            context_id=4,
            uri="phoenix://beta/p/4",
            incoming_calls_handled=17,
            snapshots=(
                ComponentStateSnapshot(
                    component_lid=4,
                    class_name="app.Seller",
                    component_type=ComponentType.PERSISTENT,
                    fields={"n": 3, "names": ["a"]},
                    next_outgoing_seq=9,
                ),
                ComponentStateSnapshot(
                    component_lid=400001,
                    class_name="app.Basket",
                    component_type=ComponentType.SUBORDINATE,
                    fields={"items": []},
                    next_outgoing_seq=0,
                ),
            ),
            last_calls=(
                LastCallEntrySnapshot(
                    caller_key=("alpha", 1, 2),
                    call_id=CALL_ID,
                    reply_lsn=123,
                ),
            ),
        )
        assert roundtrip(record) == record


class TestLastCallReplyRecords:
    def test_roundtrip(self):
        record = LastCallReplyRecord(
            context_id=4,
            caller_key=CALL_ID.caller_key,
            call_id=CALL_ID,
            reply=REPLY,
        )
        assert roundtrip(record) == record


class TestCheckpointRecords:
    def test_begin_end(self):
        begin = BeginCheckpointRecord(context_id=-1)
        assert roundtrip(begin) == begin
        end = EndCheckpointRecord(context_id=-1, begin_lsn=456)
        assert roundtrip(end) == end

    def test_context_table_record(self):
        record = CheckpointContextTableRecord(
            context_id=-1,
            entries=(
                CheckpointContextEntry(
                    context_id=1,
                    uri="phoenix://a/p/1",
                    state_record_lsn=99,
                    creation_lsn=0,
                ),
                CheckpointContextEntry(
                    context_id=2,
                    uri="phoenix://a/p/2",
                    state_record_lsn=-1,
                    creation_lsn=50,
                ),
            ),
        )
        assert roundtrip(record) == record

    def test_remote_type_record(self):
        record = CheckpointRemoteTypeRecord(
            context_id=-1,
            entries=(
                ("phoenix://b/p/1", ComponentType.FUNCTIONAL),
                ("phoenix://b/p/2", ComponentType.READ_ONLY),
            ),
        )
        assert roundtrip(record) == record

    def test_last_call_record(self):
        record = CheckpointLastCallRecord(
            context_id=-1,
            entries=(
                LastCallEntrySnapshot(
                    caller_key=("alpha", 1, 2),
                    call_id=CALL_ID,
                    reply_lsn=-1,
                ),
            ),
        )
        assert roundtrip(record) == record
