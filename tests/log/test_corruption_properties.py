"""Adversarial corruption properties of the framed log.

A flipped byte anywhere in a framed record must never silently decode to
different data: either the frame fails its integrity checks or (for
flips that cancel out, which CRC32 makes astronomically unlikely at this
scale) the payload is unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogCorruptionError
from repro.log import frame, read_frame


class TestCorruptionDetection:
    @given(
        payload=st.binary(min_size=1, max_size=200),
        flip_position=st.integers(0, 10_000),
        flip_mask=st.integers(1, 255),
    )
    @settings(max_examples=300, deadline=None)
    def test_bit_flips_never_silently_alter_data(
        self, payload, flip_position, flip_mask
    ):
        data = bytearray(frame(payload))
        data[flip_position % len(data)] ^= flip_mask
        try:
            result = read_frame(bytes(data), 0)
        except LogCorruptionError:
            return  # detected — the required outcome
        if result is not None:
            decoded, __ = result
            assert decoded == payload  # only a no-op flip may pass

    @given(
        payloads=st.lists(
            st.binary(min_size=1, max_size=60), min_size=1, max_size=6
        ),
        cut=st.integers(1, 50),
    )
    @settings(max_examples=150, deadline=None)
    def test_truncation_loses_only_a_suffix(self, payloads, cut):
        """Chopping bytes off the end (a torn write) must yield a clean
        prefix of the original record sequence, never reordered or
        altered records."""
        data = b"".join(frame(p) for p in payloads)
        torn = data[: max(0, len(data) - cut)]
        recovered = []
        offset = 0
        while True:
            try:
                result = read_frame(torn, offset)
            except LogCorruptionError:
                break
            if result is None:
                break
            payload, offset = result
            recovered.append(payload)
        assert recovered == payloads[: len(recovered)]

    @given(payload=st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_frame_roundtrip_property(self, payload):
        data = frame(payload)
        decoded, next_offset = read_frame(data, 0)
        assert decoded == payload
        assert next_offset == len(data)


class TestRandomBytesNeverLeakRawErrors:
    @given(noise=st.binary(min_size=1, max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_decode_value_fails_cleanly(self, noise):
        from repro.errors import SerializationError
        from repro.log import decode_value

        try:
            decode_value(noise)
        except (LogCorruptionError, SerializationError):
            pass  # the only acceptable failures

    @given(noise=st.binary(min_size=1, max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_decode_record_fails_cleanly(self, noise):
        from repro.log import decode_record

        try:
            decode_record(noise)
        except LogCorruptionError:
            pass
